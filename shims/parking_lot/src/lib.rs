//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's panic-free API: `lock()`
//! returns the guard directly and `into_inner()` returns the value directly.
//! Poisoning is translated to a panic, which matches how the workspace uses
//! locks (worker panics already abort the surrounding scope).

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

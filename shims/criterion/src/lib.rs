//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `Bencher::iter` and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! timed per sample and reported with real statistics ([`SampleStats`]:
//! median, min, max, mean and standard deviation) instead of criterion's
//! full bootstrap machinery. `cargo bench` therefore produces robust
//! per-benchmark numbers, and `cargo bench --no-run` exercises exactly the
//! same bench code paths.

use std::time::Instant;

/// Samples per measurement.
const DEFAULT_SAMPLES: usize = 10;

/// Summary statistics over the per-sample times of one benchmark.
///
/// The median is the headline number: unlike the mean it is robust to the
/// occasional scheduler hiccup inflating one sample. All values are in
/// nanoseconds per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of samples summarised.
    pub samples: usize,
    /// Median sample (midpoint average for even counts).
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Population standard deviation.
    pub std_dev_ns: f64,
}

/// Summarises raw per-sample nanosecond times. Returns `None` for an
/// empty sample set.
pub fn summarize(samples_ns: &[u128]) -> Option<SampleStats> {
    if samples_ns.is_empty() {
        return None;
    }
    let n = samples_ns.len();
    let mut sorted = samples_ns.to_vec();
    sorted.sort_unstable();
    let median_ns = if n % 2 == 1 {
        sorted[n / 2] as f64
    } else {
        (sorted[n / 2 - 1] as f64 + sorted[n / 2] as f64) / 2.0
    };
    let mean_ns = sorted.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
    let variance = sorted
        .iter()
        .map(|&x| {
            let d = x as f64 - mean_ns;
            d * d
        })
        .sum::<f64>()
        / n as f64;
    Some(SampleStats {
        samples: n,
        median_ns,
        min_ns: sorted[0],
        max_ns: sorted[n - 1],
        mean_ns,
        std_dev_ns: variance.sqrt(),
    })
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_SAMPLES, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.samples,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        sample_ns: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    match summarize(&bencher.sample_ns) {
        Some(stats) => println!(
            "bench: {label:<48} median {:>10.0} ns/iter \
             (min {}, max {}, mean {:.1}, sd {:.1}, {} samples)",
            stats.median_ns,
            stats.min_ns,
            stats.max_ns,
            stats.mean_ns,
            stats.std_dev_ns,
            stats.samples
        ),
        None => println!("bench: {label:<48} no samples (Bencher::iter never called)"),
    }
}

pub struct Bencher {
    samples: usize,
    /// Nanoseconds **per iteration** for each sample.
    sample_ns: Vec<u128>,
}

/// One timer read must amortize over at least this much work, or clock
/// quantization and `Instant` overhead dominate the sample.
const SAMPLE_FLOOR_NS: u128 = 10_000;

/// Calibration cap so ultra-fast closures cannot spin forever.
const MAX_BATCH: u128 = 1 << 22;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, then calibrate a batch size: double until one timed
        // batch reaches the sample floor. Sub-floor closures get their
        // timer overhead amortized over the whole batch; closures slower
        // than the floor keep batch = 1 (one timer read per call).
        black_box(f());
        let mut batch: u128 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            if start.elapsed().as_nanos() >= SAMPLE_FLOOR_NS || batch >= MAX_BATCH {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.sample_ns.push(start.elapsed().as_nanos() / batch);
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Identity function that hides a value from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_sample_count_has_exact_median() {
        let s = summarize(&[5, 1, 3, 2, 4]).unwrap();
        assert_eq!(s.samples, 5);
        assert_eq!(s.median_ns, 3.0);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 5);
        assert_eq!(s.mean_ns, 3.0);
        // Population variance of 1..=5 is 2.
        assert!((s.std_dev_ns - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn even_sample_count_averages_the_midpoints() {
        let s = summarize(&[10, 20, 30, 40]).unwrap();
        assert_eq!(s.median_ns, 25.0);
        assert_eq!(s.mean_ns, 25.0);
        assert_eq!((s.min_ns, s.max_ns), (10, 40));
    }

    #[test]
    fn constant_samples_have_zero_spread() {
        let s = summarize(&[7, 7, 7]).unwrap();
        assert_eq!(s.std_dev_ns, 0.0);
        assert_eq!(s.median_ns, 7.0);
        assert_eq!((s.min_ns, s.max_ns), (7, 7));
    }

    #[test]
    fn median_resists_an_outlier_the_mean_does_not() {
        let s = summarize(&[10, 10, 10, 10, 1_000_000]).unwrap();
        assert_eq!(s.median_ns, 10.0);
        assert!(s.mean_ns > 100_000.0);
        assert!(s.std_dev_ns > 100_000.0);
    }

    #[test]
    fn empty_samples_are_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn bencher_collects_one_value_per_sample() {
        let mut b = Bencher {
            samples: 6,
            sample_ns: Vec::new(),
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(b.sample_ns.len(), 6);
        assert!(calls > 6, "warm-up + calibration + batched samples");
    }

    #[test]
    fn slow_closures_keep_batch_size_one() {
        let mut b = Bencher {
            samples: 3,
            sample_ns: Vec::new(),
        };
        let mut calls = 0u64;
        b.iter(|| {
            calls += 1;
            std::thread::sleep(std::time::Duration::from_micros(50));
        });
        // Warm-up + one calibration batch + one call per sample.
        assert_eq!(calls, 5);
        assert!(b.sample_ns.iter().all(|&ns| ns >= 50_000));
    }
}

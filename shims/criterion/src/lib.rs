//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `Bencher::iter` and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! mean-of-N timing loop instead of criterion's statistical machinery.
//! `cargo bench` therefore still produces comparable per-benchmark numbers,
//! and `cargo bench --no-run` exercises exactly the same bench code paths.

use std::time::Instant;

/// Iterations per measurement; kept small because the shim reports a plain
/// mean rather than a distribution.
const DEFAULT_SAMPLES: usize = 10;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_SAMPLES, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.samples,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        total_nanos: 0,
        iterations: 0,
    };
    f(&mut bencher);
    let mean = bencher
        .total_nanos
        .checked_div(bencher.iterations)
        .unwrap_or(0);
    println!(
        "bench: {label:<48} {mean:>12} ns/iter ({} iters)",
        bencher.iterations
    );
}

pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iterations: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the timed loop.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.iterations += self.samples as u128;
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Identity function that hides a value from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! `crossbeam::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since 1.63, which post-dates crossbeam's
//! scoped threads). The crossbeam API differences that matter to callers are
//! preserved: the spawn closure receives the scope as an argument, and
//! `scope` returns a `Result` (always `Ok` here — std's scope propagates
//! panics from unjoined threads by panicking instead).
//!
//! [`utils::CachePadded`] is also provided for the work-stealing batch
//! scheduler, which keeps one atomic cursor per shard and must not let
//! neighbouring cursors share a cache line.

use std::any::Any;

pub mod utils {
    //! Subset of `crossbeam-utils` re-exported at the façade path.

    /// Pads and aligns a value to (at least) the size of a cache line so
    /// two `CachePadded` neighbours in an array never false-share.
    ///
    /// 128 bytes covers the common cases upstream special-cases per
    /// architecture (x86-64 prefetches line pairs; Apple arm64 lines are
    /// 128 bytes).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in the padded cell.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn cache_padded_is_line_aligned_and_transparent() {
        use super::utils::CachePadded;
        let mut cell = CachePadded::new(7u64);
        assert_eq!(*cell, 7);
        *cell += 1;
        assert_eq!(cell.into_inner(), 8);
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(std::mem::size_of::<[CachePadded<u8>; 2]>() >= 256);
    }

    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let n = super::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}

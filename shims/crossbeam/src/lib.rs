//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since 1.63, which post-dates crossbeam's
//! scoped threads). The crossbeam API differences that matter to callers are
//! preserved: the spawn closure receives the scope as an argument, and
//! `scope` returns a `Result` (always `Ok` here — std's scope propagates
//! panics from unjoined threads by panicking instead).

use std::any::Any;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let n = super::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}

//! Sequence helpers; only the `shuffle` half of `SliceRandom` is provided.

use crate::RngCore;

pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}

//! Named generators; only [`StdRng`] is provided.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator, seeded through SplitMix64.
///
/// Not the upstream `StdRng` stream (that is ChaCha12); consumers in this
/// workspace rely only on "same seed ⇒ same stream".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! subset of the `rand 0.8` API the workspace actually uses — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`] — backed by a
//! deterministic xoshiro256++ generator. Stream values differ from upstream
//! `rand`, but every consumer in this workspace only relies on seeded
//! determinism, never on specific stream contents.

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Values that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u32, u64, usize);

impl SampleRange<i32> for std::ops::Range<i32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

/// High-level convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`any`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: no shrinking (a failing case is reported with
//! its case number and the test's deterministic seed, which is enough to
//! replay it under a debugger), and the number of cases defaults to 64
//! (override with the `PROPTEST_CASES` environment variable).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Strategy producing arbitrary values of `T` (only the types the workspace
/// needs).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64()
    }
}

pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Runs each `#[test]` body against freshly generated strategy values.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                let mut __pt_rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __pt_case in 0..cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);
                    )*
                    let run = move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(msg) = run() {
                        panic!("proptest case {}/{} failed: {}", __pt_case + 1, cases, msg);
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing proptest case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

//! Collection strategies; only `vec` is provided.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of sizes for a generated collection.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for a `Vec` whose elements come from `element` and whose length
/// is drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

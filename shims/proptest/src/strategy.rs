//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking machinery:
/// `generate` produces a finished value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot generate from empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

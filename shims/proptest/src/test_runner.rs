//! The deterministic RNG driving generation, and the case-count knob.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Number of cases each `proptest!` test runs (default 64, overridable with
/// `PROPTEST_CASES`).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// The workspace's deterministic generator (the `rand` shim's xoshiro256++),
/// seeded from a hash of the test name so every test gets an independent but
/// fully reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

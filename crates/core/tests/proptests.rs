//! Property-based tests of the paper's algorithms themselves: Algorithm 1
//! split rules, the eqn (6) volume identity for arbitrary splits, the
//! monotonicity of Algorithm 2, and the eqn (1) compliance of every
//! method.

use mg_core::split::split_with_preference;
use mg_core::{
    initial_split, iterative_refinement, GlobalPreference, MediumGrainModel, Method, RefineOptions,
    Split,
};
use mg_hypergraph::VertexBipartition;
use mg_partitioner::PartitionerConfig;
use mg_sparse::{communication_volume, Coo, Idx, NonzeroPartition};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_coo() -> impl Strategy<Value = Coo> {
    mg_test_support::strategies::arb_coo(14, 1, 47)
}

proptest! {
    /// Algorithm 1 invariants: every nonzero assigned; singleton columns in
    /// Ar; singleton rows (of non-singleton columns) in Ac; the score rule
    /// for the rest.
    #[test]
    fn algorithm1_branch_rules_hold(a in arb_coo(), pref in any::<bool>()) {
        let pref = if pref { GlobalPreference::Rows } else { GlobalPreference::Columns };
        let split = split_with_preference(&a, pref);
        prop_assert_eq!(split.assignment().len(), a.nnz());
        let nzr = a.row_counts();
        let nzc = a.col_counts();
        for (k, (i, j)) in a.iter().enumerate() {
            let (r, c) = (nzr[i as usize], nzc[j as usize]);
            let in_row = split.in_row(k);
            if c == 1 {
                prop_assert!(in_row, "singleton column must go to Ar");
            } else if r == 1 {
                prop_assert!(!in_row, "singleton row must go to Ac");
            } else if r < c {
                prop_assert!(in_row);
            } else if r > c {
                prop_assert!(!in_row);
            } else {
                prop_assert_eq!(in_row, pref == GlobalPreference::Rows);
            }
        }
    }

    /// eqn (6): the medium-grain hypergraph cut equals the communication
    /// volume of the mapped partition, for random splits and assignments —
    /// not just the heuristic split.
    #[test]
    fn volume_identity_for_arbitrary_splits(
        a in arb_coo(),
        split_seed in 0u64..1000,
        side_seed in 0u64..1000,
    ) {
        let in_row: Vec<bool> = (0..a.nnz())
            .map(|k| (k as u64 * 37 + split_seed).is_multiple_of(3))
            .collect();
        let split = Split::from_assignment(in_row);
        let model = MediumGrainModel::build(&a, &split);
        let nv = model.hypergraph.num_vertices() as usize;
        let sides: Vec<u8> = (0..nv).map(|v| ((v as u64 * 11 + side_seed) % 2) as u8).collect();
        let cut = VertexBipartition::new(&model.hypergraph, sides.clone()).cut_weight();
        let np = model.to_nonzero_partition(&a, &sides);
        prop_assert_eq!(cut, communication_volume(&a, &np));
    }

    /// The medium-grain hypergraph never exceeds m + n vertices and its
    /// weight always equals the nonzero count.
    #[test]
    fn model_size_bounds(a in arb_coo(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let split = initial_split(&a, &mut rng);
        let model = MediumGrainModel::build(&a, &split);
        prop_assert!(model.hypergraph.num_vertices() <= a.rows() + a.cols());
        prop_assert!(model.hypergraph.num_nets() <= a.rows() + a.cols());
        prop_assert_eq!(model.hypergraph.total_vertex_weight(), a.nnz() as u64);
    }

    /// Algorithm 2 is monotone non-increasing from any feasible start.
    #[test]
    fn iterative_refinement_is_monotone(a in arb_coo(), seed in 0u64..200) {
        let parts: Vec<Idx> = (0..a.nnz()).map(|k| ((k as u64 + seed) % 2) as Idx).collect();
        let p = NonzeroPartition::new(2, parts).expect("bipartition");
        let before = communication_volume(&a, &p);
        // A generous epsilon keeps arbitrary alternating starts feasible.
        let refined = iterative_refinement(&a, &p, 0.5, &RefineOptions::default());
        prop_assert!(refined.volume <= before);
        prop_assert_eq!(
            refined.volume,
            communication_volume(&a, &refined.partition)
        );
    }

    /// Every method respects eqn (1) and reports its true volume.
    #[test]
    fn methods_respect_the_balance_constraint(a in arb_coo(), seed in 0u64..50) {
        let cfg = PartitionerConfig::mondriaan_like();
        for method in [
            Method::LocalBest { refine: false },
            Method::MediumGrain { refine: false },
            Method::MediumGrain { refine: true },
            Method::FineGrain { refine: false },
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = method.bipartition(&a, 0.03, &cfg, &mut rng);
            prop_assert_eq!(r.partition.parts().len(), a.nnz());
            prop_assert_eq!(r.volume, communication_volume(&a, &r.partition));
            // With few nonzeros the integral even-split bound dominates
            // ε·N/2; part_budget's max(⌈N/2⌉, …) makes that explicit.
            // LB and MG move whole rows/columns atomically, so their
            // guaranteed bound is target + (max atom − 1): greedy initial
            // placement can overshoot by at most one atom and FM never
            // worsens the violation. FG atoms are single nonzeros, so it
            // must meet the strict budget.
            let budget = mg_sparse::part_budget(a.nnz(), 2, 0.03);
            let largest_line = a
                .row_counts()
                .into_iter()
                .chain(a.col_counts())
                .max()
                .unwrap_or(0) as u64;
            let target = (a.nnz() as u64).div_ceil(2);
            let limit = match method {
                Method::FineGrain { .. } => budget,
                _ => budget.max(target + largest_line.saturating_sub(1)),
            };
            let sizes = r.partition.part_sizes();
            prop_assert!(
                sizes.iter().all(|&s| s <= limit),
                "{}: sizes {:?} exceed limit {}", method.label(), sizes, limit
            );
        }
    }

    /// Degenerate splits reproduce the 1D models exactly (the paper's
    /// reduction argument): all-Ac ⇒ row-net (no column ever cut is false —
    /// rather, volume equals the row-net cut); here we check the model
    /// shape claim on sizes.
    #[test]
    fn degenerate_splits_have_1d_shape(a in arb_coo()) {
        let all_c = MediumGrainModel::build(&a, &Split::all_columns(a.nnz()));
        let nonempty_cols = a.col_counts().iter().filter(|&&c| c > 0).count();
        prop_assert_eq!(all_c.hypergraph.num_vertices() as usize, nonempty_cols);
        let all_r = MediumGrainModel::build(&a, &Split::all_rows(a.nnz()));
        let nonempty_rows = a.row_counts().iter().filter(|&&c| c > 0).count();
        prop_assert_eq!(all_r.hypergraph.num_vertices() as usize, nonempty_rows);
    }
}

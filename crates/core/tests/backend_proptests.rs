//! Property tests of the backend registry contract: for *every*
//! registered backend, on random COO matrices, the returned partition is
//! valid (each nonzero assigned exactly once, parts in range), the
//! reported volume is true, the ε balance bound of eqn (1) holds up to
//! the backend's atomic granularity, and the result is a pure function of
//! the seed.

use mg_core::{all_backends, Method};
use mg_partitioner::BisectionTargets;
use mg_sparse::{communication_volume, Coo};
use proptest::prelude::*;

fn arb_coo() -> impl Strategy<Value = Coo> {
    // Up to ~120 nonzeros: large enough to cover the odd-nnz regime where
    // the even-split budget exceeds the global part_budget (n >= 67), so
    // the balance assertion is exercised against the real contract.
    mg_test_support::strategies::arb_coo(20, 1, 120)
}

proptest! {
    /// Validity and balance for every backend. The balance limit is the
    /// per-side budget of the even bisection targets the backend actually
    /// runs under ([`BisectionTargets::budgets`]); backends that move
    /// whole rows/columns (or the medium-grain row/column *groups*)
    /// atomically may overshoot it by at most one atom, while the purely
    /// pointwise geometric cut meets it exactly.
    #[test]
    fn every_backend_partition_is_valid_and_balanced(a in arb_coo(), seed in 0u64..40) {
        let budgets = BisectionTargets::even(a.nnz() as u64, 0.03).budgets();
        let largest_line = a
            .row_counts()
            .into_iter()
            .chain(a.col_counts())
            .max()
            .unwrap_or(0) as u64;
        for backend in all_backends() {
            for method in [
                Method::MediumGrain { refine: false },
                Method::MediumGrain { refine: true },
            ] {
                let r = backend.bipartition(&a, method, 0.03, seed);
                prop_assert!(
                    r.partition.check_against(&a).is_ok(),
                    "{}: invalid partition", backend.name()
                );
                prop_assert_eq!(
                    r.volume,
                    communication_volume(&a, &r.partition),
                    "{}: stale volume", backend.name()
                );
                let atom_slack = if backend.capabilities().uses_geometry {
                    0
                } else {
                    largest_line.saturating_sub(1)
                };
                let sizes = r.partition.part_sizes();
                prop_assert!(
                    sizes.iter().zip(budgets.iter()).all(|(&s, &b)| s <= b + atom_slack),
                    "{}: sizes {:?} exceed budgets {:?} (+{atom_slack})",
                    backend.name(), sizes, budgets
                );
            }
        }
    }

    /// Determinism: same (matrix, method, ε, seed) → same partition, for
    /// every backend. This is the per-job half of the sweep/service
    /// byte-determinism contract.
    #[test]
    fn every_backend_is_a_pure_function_of_the_seed(a in arb_coo(), seed in 0u64..40) {
        for backend in all_backends() {
            let m = Method::MediumGrain { refine: false };
            let x = backend.bipartition(&a, m, 0.03, seed);
            let y = backend.bipartition(&a, m, 0.03, seed);
            prop_assert_eq!(
                x.partition.parts(),
                y.partition.parts(),
                "{} diverged on identical inputs", backend.name()
            );
            prop_assert_eq!(x.volume, y.volume);
        }
    }
}

//! Ground-truth tests against brute-force optimal bipartitions.
//!
//! For matrices small enough to enumerate every balanced bipartition of the
//! nonzeros, the optimal communication volume is known exactly. The
//! medium-grain method (best of a few seeds, with IR) must land on or very
//! near it — the small-scale analogue of Fig 3, where MG found the proven
//! optimum of gd97_b.

use mg_core::Method;
use mg_partitioner::PartitionerConfig;
use mg_sparse::{communication_volume, part_budget, Coo, Idx, NonzeroPartition};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Brute-force optimal volume over all bipartitions satisfying eqn (1).
fn optimal_volume(a: &Coo, epsilon: f64) -> u64 {
    let n = a.nnz();
    assert!(n <= 16, "brute force is exponential");
    let budget = part_budget(n, 2, epsilon);
    let mut best = u64::MAX;
    for mask in 0..(1u32 << n) {
        let ones = mask.count_ones() as u64;
        if ones > budget || (n as u64 - ones) > budget {
            continue;
        }
        let parts: Vec<Idx> = (0..n).map(|k| (mask >> k) & 1).collect();
        let p = NonzeroPartition::new(2, parts).expect("bipartition");
        best = best.min(communication_volume(a, &p));
    }
    best
}

fn best_of_seeds(a: &Coo, method: Method, seeds: u64) -> u64 {
    let cfg = PartitionerConfig::mondriaan_like();
    (0..seeds)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(s);
            method.bipartition(a, 0.03, &cfg, &mut rng).volume
        })
        .min()
        .expect("at least one seed")
}

#[test]
fn medium_grain_finds_the_optimum_on_a_cross() {
    // A plus-shaped pattern: one dense row and one dense column crossing.
    let mut entries = Vec::new();
    for j in 0..7u32 {
        entries.push((3, j));
    }
    for i in 0..7u32 {
        entries.push((i, 3));
    }
    let a = Coo::new(7, 7, entries).unwrap();
    assert_eq!(a.nnz(), 13);
    let optimal = optimal_volume(&a, 0.03);
    let found = best_of_seeds(&a, Method::MediumGrain { refine: true }, 20);
    assert_eq!(
        found, optimal,
        "MG+IR best-of-20 should reach the brute-force optimum"
    );
}

#[test]
fn medium_grain_matches_optimum_on_small_blocks() {
    // Two 2x2 dense blocks sharing one row: optimal volume is 1.
    let entries = vec![
        (0, 0),
        (0, 1),
        (1, 0),
        (1, 1),
        (1, 2),
        (1, 3),
        (2, 2),
        (2, 3),
    ];
    let a = Coo::new(3, 4, entries).unwrap();
    let optimal = optimal_volume(&a, 0.03);
    assert_eq!(optimal, 1);
    let found = best_of_seeds(&a, Method::MediumGrain { refine: true }, 20);
    assert_eq!(found, optimal);
}

#[test]
fn fine_grain_also_reaches_optimum_on_tiny_instances() {
    let entries = vec![
        (0, 0),
        (0, 1),
        (1, 1),
        (1, 2),
        (2, 2),
        (2, 3),
        (3, 3),
        (3, 0),
        (0, 2),
        (2, 0),
    ];
    let a = Coo::new(4, 4, entries).unwrap();
    let optimal = optimal_volume(&a, 0.03);
    let fg = best_of_seeds(&a, Method::FineGrain { refine: true }, 20);
    assert_eq!(fg, optimal);
    let mg = best_of_seeds(&a, Method::MediumGrain { refine: true }, 20);
    assert!(mg <= optimal + 1, "MG {} vs optimal {}", mg, optimal);
}

#[test]
fn methods_never_beat_the_brute_force_optimum() {
    // Sanity for the oracle itself: no method may report a volume below
    // the enumerated optimum (that would mean a metric bug).
    let mut rng = StdRng::seed_from_u64(12);
    let a = mg_sparse::gen::erdos_renyi(6, 6, 14, &mut rng);
    let optimal = optimal_volume(&a, 0.03);
    for method in [
        Method::LocalBest { refine: true },
        Method::FineGrain { refine: true },
        Method::MediumGrain { refine: true },
    ] {
        let found = best_of_seeds(&a, method, 10);
        assert!(
            found >= optimal,
            "{method} reported {found} below the optimum {optimal}"
        );
    }
}

//! Transport-agnostic request/response types of the partition service.
//!
//! The serving front end (`mg-server`) accepts JSON-lines requests and
//! streams JSON-lines responses; this module holds the *plain data* halves
//! of that protocol so they can be built, executed and tested without any
//! wire format or socket in sight. The wire codec lives next to the
//! transports in `mg-server`; the method spelling goes through the single
//! [`Method`] name codec so the CLI, the sweep records and the service can
//! never drift apart.

use crate::methods::Method;
use mg_sparse::{io, Coo, Idx};

/// Where a request's matrix comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixPayload {
    /// Inline COO triplets (0-based coordinates).
    Inline {
        /// Number of rows.
        rows: Idx,
        /// Number of columns.
        cols: Idx,
        /// `(row, col)` coordinates; arbitrary order, duplicates collapse.
        entries: Vec<(Idx, Idx)>,
    },
    /// A named matrix of the server's deterministic evaluation collection.
    Collection(String),
    /// A full Matrix Market document shipped as a string payload.
    MatrixMarket(String),
}

/// What a request asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOp {
    /// Bipartition a matrix (the default when no `op` field is present).
    Partition,
    /// Liveness probe; answered immediately in stream order.
    Ping,
    /// Session counters (received / cache hits / errors so far).
    Stats,
    /// Stop accepting new work, drain in-flight jobs, then exit.
    Shutdown,
    /// Negotiate the wire codec of this connection (JSON lines or binary
    /// frames); answered in stream order, the switch applies to every
    /// subsequent unit on both directions of the stream.
    Hello,
}

/// One partition request, decoded but not yet executed.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// Matrix source.
    pub matrix: MatrixPayload,
    /// Bipartitioning method.
    pub method: Method,
    /// Requested engine: the canonical name of a registered
    /// [`crate::backend`] backend, resolved at decode time (so an unknown
    /// name fails the request with `unknown_backend` before anything is
    /// queued). `None` uses the server's default backend.
    pub backend: Option<&'static str>,
    /// Load-imbalance parameter ε of eqn (1).
    pub epsilon: f64,
    /// Optional client seed folded into the job-key hash; `None` uses the
    /// server's master seed.
    pub seed: Option<u64>,
    /// Include the full per-nonzero part vector in the response.
    pub include_partition: bool,
}

/// The deterministic result of executing one [`PartitionSpec`].
///
/// Everything here is a pure function of (matrix content, method, ε,
/// effective seed) — no wall-clock fields — so a response built from an
/// outcome is byte-identical however and whenever the job ran.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionOutcome {
    /// Number of rows of the partitioned matrix.
    pub rows: Idx,
    /// Number of columns.
    pub cols: Idx,
    /// Number of (deduplicated) nonzeros.
    pub nnz: usize,
    /// Content fingerprint of the matrix ([`matrix_fingerprint`]).
    pub fingerprint: u64,
    /// Canonical backend name the job ran on (`mondriaan`, …).
    pub backend: &'static str,
    /// Canonical method name (`mg-ir`, …).
    pub method: &'static str,
    /// Load-imbalance parameter the job ran with.
    pub epsilon: f64,
    /// The effective RNG seed (derived via the job-key hash).
    pub seed: u64,
    /// Communication volume of the result (eqn (3)).
    pub volume: u64,
    /// Achieved load imbalance (eqn (1) left-hand side).
    pub imbalance: f64,
    /// Iterations of Algorithm 2 performed (0 without IR).
    pub ir_iterations: u32,
    /// Nonzeros assigned to parts 0 and 1.
    pub part_nnz: [u64; 2],
    /// Part id per nonzero, aligned with the canonical (row-major sorted,
    /// deduplicated) entry order of the matrix.
    pub partition: Vec<Idx>,
}

/// Machine-readable error classes of the service protocol.
///
/// The wire spelling ([`ErrorCode::as_str`]) is part of the public
/// protocol; see `crates/server/PROTOCOL.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line is not valid JSON.
    BadJson,
    /// The request is valid JSON but structurally wrong (missing or
    /// ill-typed fields).
    BadRequest,
    /// The `method` field is not a known method name.
    BadMethod,
    /// The matrix payload does not decode (bad COO bounds, malformed
    /// Matrix Market text, …).
    BadMatrix,
    /// The `backend` field names no registered partition backend.
    UnknownBackend,
    /// The named collection matrix does not exist.
    UnknownCollection,
    /// The server is draining and no longer accepts new work.
    ShuttingDown,
    /// A syntactically valid `op` the server does not support.
    Unsupported,
    /// A client-side failure to reach the endpoint at all (emitted by
    /// `mgpart request` when the TCP connect fails; no server was
    /// involved).
    ConnectionRefused,
    /// The router lost a downstream shard and exhausted its
    /// reconnect-and-replay attempts for this request.
    ShardUnavailable,
    /// The request addressed a shard id that is not part of the router's
    /// topology.
    UnknownShard,
    /// A client-side read deadline expired (`mgpart request --timeout`):
    /// the endpoint accepted the connection but never answered.
    RequestTimeout,
    /// An internal worker failed (e.g. panicked) while the request was in
    /// flight; the request was lost but the session keeps draining.
    Internal,
}

impl ErrorCode {
    /// The wire spelling of this error class.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::BadMethod => "bad_method",
            ErrorCode::BadMatrix => "bad_matrix",
            ErrorCode::UnknownBackend => "unknown_backend",
            ErrorCode::UnknownCollection => "unknown_collection",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::ConnectionRefused => "connection_refused",
            ErrorCode::ShardUnavailable => "shard_unavailable",
            ErrorCode::UnknownShard => "unknown_shard",
            ErrorCode::RequestTimeout => "request_timeout",
            ErrorCode::Internal => "internal",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The shared 64-bit bit mixer (the SplitMix64 finaliser) behind every
/// service-level hash: fingerprints, placement keys and the router's
/// rendezvous scores all funnel through it, so a single well-mixed
/// function backs every key-derived decision.
pub fn mix64(h: u64) -> u64 {
    let mut x = h;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A stable 64-bit content fingerprint of a matrix: FNV-1a over the
/// dimensions and the canonical entry list, finalised with [`mix64`].
///
/// Two matrices fingerprint equal iff they have the same shape and nonzero
/// pattern, whatever source they were decoded from — so an inline-COO
/// request and a Matrix Market request for the same matrix share cache
/// entries and derived seeds.
pub fn matrix_fingerprint(a: &Coo) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    };
    eat(u64::from(a.rows()));
    eat(u64::from(a.cols()));
    eat(a.nnz() as u64);
    for (i, j) in a.iter() {
        eat((u64::from(i) << 32) | u64::from(j));
    }
    mix64(h)
}

/// A stable 64-bit fingerprint of a *name* (FNV-1a over the bytes,
/// finalised with [`mix64`]): the placement key of collection-matrix
/// requests, whose content only the shard knows.
pub fn name_fingerprint(name: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in name.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
    }
    mix64(h)
}

/// Decodes the matrix carried *inside* a payload: inline COO triplets and
/// Matrix Market text resolve to a [`Coo`] (with the library's typed
/// validation errors), collection names resolve to `None` — only the
/// serving side holds a collection.
///
/// This is the single decode path shared by the `mg-server` engine and
/// the `mg-router` front end, so a malformed payload produces the exact
/// same `(code, message)` pair whether a shard or the router rejects it.
pub fn payload_matrix(payload: &MatrixPayload) -> Result<Option<Coo>, (ErrorCode, String)> {
    match payload {
        MatrixPayload::Inline {
            rows,
            cols,
            entries,
        } => Coo::new(*rows, *cols, entries.clone())
            .map(Some)
            .map_err(|e| (ErrorCode::BadMatrix, e.to_string())),
        MatrixPayload::Collection(_) => Ok(None),
        MatrixPayload::MatrixMarket(text) => io::read_matrix_market(text.as_bytes())
            .map(Some)
            .map_err(|e| (ErrorCode::BadMatrix, e.to_string())),
    }
}

/// A request's placement identity: the key a router hashes to pick a
/// shard (and the request half of its cache identity), plus the decoded
/// matrix when the payload shipped one (available for cost estimation).
#[derive(Debug)]
pub struct Placement {
    /// Content fingerprint for inline / Matrix Market payloads,
    /// [`name_fingerprint`] for collection names.
    pub key: u64,
    /// The decoded matrix; `None` for collection payloads.
    pub matrix: Option<Coo>,
}

/// Extracts the placement identity of a payload — [`matrix_fingerprint`]
/// when the content travels with the request, [`name_fingerprint`] when
/// only a collection name does. Fails with the same typed error the
/// serving engine would produce for an undecodable payload.
pub fn placement_key(payload: &MatrixPayload) -> Result<Placement, (ErrorCode, String)> {
    let matrix = payload_matrix(payload)?;
    let key = match (&matrix, payload) {
        (Some(a), _) => matrix_fingerprint(a),
        (None, MatrixPayload::Collection(name)) => name_fingerprint(name),
        (None, _) => unreachable!("payload_matrix returns None only for collections"),
    };
    Ok(Placement { key, matrix })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_content_addressed() {
        // Same pattern via different constructions → same fingerprint.
        let a = Coo::new(3, 4, vec![(0, 1), (2, 3), (1, 1)]).unwrap();
        let b = Coo::new(3, 4, vec![(1, 1), (0, 1), (2, 3), (2, 3)]).unwrap();
        assert_eq!(matrix_fingerprint(&a), matrix_fingerprint(&b));
    }

    #[test]
    fn fingerprint_separates_shape_and_pattern() {
        let a = Coo::new(3, 4, vec![(0, 1)]).unwrap();
        let taller = Coo::new(4, 4, vec![(0, 1)]).unwrap();
        let moved = Coo::new(3, 4, vec![(0, 2)]).unwrap();
        let empty = Coo::empty(3, 4);
        let fps = [&a, &taller, &moved, &empty].map(matrix_fingerprint);
        for x in 0..fps.len() {
            for y in x + 1..fps.len() {
                assert_ne!(fps[x], fps[y], "{x} vs {y}");
            }
        }
    }

    #[test]
    fn error_codes_have_stable_wire_spellings() {
        assert_eq!(ErrorCode::BadJson.as_str(), "bad_json");
        assert_eq!(ErrorCode::UnknownBackend.as_str(), "unknown_backend");
        assert_eq!(ErrorCode::ShuttingDown.to_string(), "shutting_down");
        assert_eq!(ErrorCode::ConnectionRefused.as_str(), "connection_refused");
        assert_eq!(ErrorCode::ShardUnavailable.as_str(), "shard_unavailable");
        assert_eq!(ErrorCode::UnknownShard.as_str(), "unknown_shard");
        assert_eq!(ErrorCode::RequestTimeout.as_str(), "request_timeout");
        assert_eq!(ErrorCode::Internal.as_str(), "internal");
    }

    #[test]
    fn placement_keys_match_fingerprints_for_content_payloads() {
        let inline = MatrixPayload::Inline {
            rows: 3,
            cols: 4,
            entries: vec![(0, 1), (2, 3), (1, 1)],
        };
        let mtx = MatrixPayload::MatrixMarket(
            "%%MatrixMarket matrix coordinate pattern general\n3 4 3\n1 2\n3 4\n2 2\n".into(),
        );
        let a = Coo::new(3, 4, vec![(0, 1), (2, 3), (1, 1)]).unwrap();
        for payload in [&inline, &mtx] {
            let p = placement_key(payload).unwrap();
            assert_eq!(p.key, matrix_fingerprint(&a));
            assert_eq!(p.matrix.as_ref().map(Coo::nnz), Some(3));
        }
    }

    #[test]
    fn placement_keys_hash_collection_names_without_content() {
        let p = placement_key(&MatrixPayload::Collection("laplace2d_00_k10".into())).unwrap();
        assert_eq!(p.key, name_fingerprint("laplace2d_00_k10"));
        assert!(p.matrix.is_none());
        assert_ne!(
            name_fingerprint("laplace2d_00_k10"),
            name_fingerprint("laplace2d_00_k20")
        );
    }

    #[test]
    fn bad_payloads_fail_placement_with_the_engine_error_class() {
        let bad = MatrixPayload::Inline {
            rows: 2,
            cols: 2,
            entries: vec![(5, 0)],
        };
        let (code, message) = placement_key(&bad).unwrap_err();
        assert_eq!(code, ErrorCode::BadMatrix);
        assert!(!message.is_empty());
        let bad_mtx = MatrixPayload::MatrixMarket("not a matrix market header".into());
        assert_eq!(placement_key(&bad_mtx).unwrap_err().0, ErrorCode::BadMatrix);
    }

    #[test]
    fn mix64_separates_adjacent_inputs() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..1000u64 {
            assert!(seen.insert(mix64(x)));
        }
    }
}

//! The full medium-grain bipartitioner:
//! split → B-hypergraph → multilevel bisection → map back (§III-A/B).

use crate::bmatrix::MediumGrainModel;
use crate::methods::BipartitionResult;
use crate::split::initial_split;
use mg_partitioner::{bipartition_hypergraph, BisectionTargets, PartitionerConfig};
use mg_sparse::{Coo, NonzeroPartition};
use rand::Rng;

/// Medium-grain bipartitioning with an even nonzero split and slack
/// `epsilon` (eqn (1) with p = 2).
pub fn medium_grain_bipartition<R: Rng>(
    a: &Coo,
    epsilon: f64,
    config: &PartitionerConfig,
    rng: &mut R,
) -> BipartitionResult {
    let targets = BisectionTargets::even(a.nnz() as u64, epsilon);
    medium_grain_bipartition_with_targets(a, &targets, config, rng)
}

/// Medium-grain bipartitioning with explicit targets (recursive bisection
/// uses uneven ones).
///
/// The hypergraph's total vertex weight equals the nonzero count of `A`
/// (group weights exclude the dummy diagonal of `B`), so hypergraph balance
/// *is* nonzero balance.
pub fn medium_grain_bipartition_with_targets<R: Rng>(
    a: &Coo,
    targets: &BisectionTargets,
    config: &PartitionerConfig,
    rng: &mut R,
) -> BipartitionResult {
    if a.nnz() == 0 {
        return BipartitionResult::from_partition(
            a,
            NonzeroPartition::new(2, Vec::new()).expect("empty partition"),
        );
    }
    let build_timer = mg_obs::phase("medium_grain_build");
    let split = initial_split(a, rng);
    drop(build_timer);
    medium_grain_bipartition_with_split(a, &split, targets, config, rng)
}

/// Medium-grain bipartitioning from a caller-provided split — the ablation
/// hook for alternative splitters (§V: "might be further improved by using
/// a different initial split algorithm").
pub fn medium_grain_bipartition_with_split<R: Rng>(
    a: &Coo,
    split: &crate::split::Split,
    targets: &BisectionTargets,
    config: &PartitionerConfig,
    rng: &mut R,
) -> BipartitionResult {
    if a.nnz() == 0 {
        return BipartitionResult::from_partition(
            a,
            NonzeroPartition::new(2, Vec::new()).expect("empty partition"),
        );
    }
    let build_timer = mg_obs::phase("medium_grain_build");
    let model = MediumGrainModel::build(a, split);
    drop(build_timer);
    debug_assert_eq!(model.hypergraph.total_vertex_weight(), a.nnz() as u64);
    let outcome = bipartition_hypergraph(&model.hypergraph, targets, config, rng);
    let partition = model.to_nonzero_partition(a, &outcome.sides);
    let result = BipartitionResult::from_partition(a, partition);
    // eqn (6): hypergraph cut == communication volume of the mapping.
    debug_assert_eq!(result.volume, outcome.cut);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sparse::{communication_volume, load_imbalance, max_part_size};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn partitions_grid_laplacian_within_constraint() {
        let a = mg_sparse::gen::laplacian_2d(20, 20);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(1);
        let r = medium_grain_bipartition(&a, 0.03, &cfg, &mut rng);
        assert!(load_imbalance(&r.partition) <= 0.03 + 1e-9);
        // A 20x20 grid Laplacian has a clean geometric bisection; the
        // medium-grain volume should be well under the 1D worst case.
        assert!(r.volume <= 80, "volume {}", r.volume);
        assert!(r.volume >= 10, "suspiciously low volume {}", r.volume);
    }

    #[test]
    fn volume_matches_partition() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = mg_sparse::gen::erdos_renyi(60, 60, 600, &mut rng);
        let cfg = PartitionerConfig::mondriaan_like();
        let r = medium_grain_bipartition(&a, 0.03, &cfg, &mut rng);
        assert_eq!(r.volume, communication_volume(&a, &r.partition));
    }

    #[test]
    fn uneven_targets_shift_the_split() {
        let a = mg_sparse::gen::laplacian_2d(16, 16);
        let n = a.nnz() as u64;
        let cfg = PartitionerConfig::mondriaan_like();
        let targets = BisectionTargets {
            target: [(n * 3) / 4, n - (n * 3) / 4],
            epsilon: 0.05,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let r = medium_grain_bipartition_with_targets(&a, &targets, &cfg, &mut rng);
        let sizes = r.partition.part_sizes();
        let budgets = targets.budgets();
        assert!(sizes[0] <= budgets[0]);
        assert!(sizes[1] <= budgets[1]);
        // The large side must actually be large.
        assert!(sizes[0] > sizes[1]);
    }

    #[test]
    fn rectangular_matrices_work_both_ways() {
        let mut rng = StdRng::seed_from_u64(4);
        for (m, n) in [(100u32, 20u32), (20, 100)] {
            let a = mg_sparse::gen::erdos_renyi(m, n, 800, &mut rng);
            let cfg = PartitionerConfig::mondriaan_like();
            let r = medium_grain_bipartition(&a, 0.03, &cfg, &mut rng);
            assert!(load_imbalance(&r.partition) <= 0.03 + 1e-9);
            assert!(max_part_size(&r.partition) >= 400);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = mg_sparse::gen::laplacian_2d(10, 10);
        let cfg = PartitionerConfig::mondriaan_like();
        let r1 = medium_grain_bipartition(&a, 0.03, &cfg, &mut StdRng::seed_from_u64(9));
        let r2 = medium_grain_bipartition(&a, 0.03, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(r1.partition, r2.partition);
        assert_eq!(r1.volume, r2.volume);
    }
}

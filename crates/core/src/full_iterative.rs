//! The paper's future-work extension (§V): the *full iterative*
//! medium-grain method.
//!
//! Instead of refining with a single KL run per iteration (Algorithm 2),
//! each iteration re-encodes the best partition found so far as a split
//! `A = Ar + Ac` and runs a **complete multilevel partitioning** on the
//! resulting hypergraph of `B`. This trades computation time for solution
//! quality: every iteration explores a different encoding of the search
//! space (the paper: "one could trade computation time for solution
//! quality, by using more or less iterations").
//!
//! The best partition seen is kept, so the procedure is monotone
//! non-increasing by construction; directions alternate like Algorithm 2.

use crate::bmatrix::MediumGrainModel;
use crate::medium_grain::medium_grain_bipartition_with_targets;
use crate::methods::BipartitionResult;
use crate::split::Split;
use mg_partitioner::{bipartition_hypergraph, BisectionTargets, PartitionerConfig};
use mg_sparse::{communication_volume, Coo};
use rand::Rng;

/// Options for the full iterative method.
#[derive(Debug, Clone)]
pub struct FullIterativeOptions {
    /// Multilevel partitioning rounds after the initial one (the paper
    /// leaves the count open; each round costs a full partitioning).
    pub iterations: u32,
    /// Stop early after this many consecutive non-improving rounds.
    pub patience: u32,
}

impl Default for FullIterativeOptions {
    fn default() -> Self {
        FullIterativeOptions {
            iterations: 8,
            patience: 4,
        }
    }
}

/// Runs the full iterative medium-grain method.
pub fn medium_grain_full_iterative<R: Rng>(
    a: &Coo,
    epsilon: f64,
    config: &PartitionerConfig,
    options: &FullIterativeOptions,
    rng: &mut R,
) -> BipartitionResult {
    let targets = BisectionTargets::even(a.nnz() as u64, epsilon);
    let mut best = medium_grain_bipartition_with_targets(a, &targets, config, rng);
    if a.nnz() == 0 {
        return best;
    }
    let mut direction = 0u8;
    let mut stale = 0u32;
    let mut rounds = 0u32;
    for _ in 0..options.iterations {
        rounds += 1;
        // Re-encode the current best as a split (like Algorithm 2, but the
        // subsequent partitioning is a full multilevel run from scratch).
        let in_row: Vec<bool> = (0..a.nnz())
            .map(|k| (best.partition.part_of(k) == 0) == (direction == 0))
            .collect();
        let split = Split::from_assignment(in_row);
        let model = MediumGrainModel::build(a, &split);
        let outcome = bipartition_hypergraph(&model.hypergraph, &targets, config, rng);
        let partition = model.to_nonzero_partition(a, &outcome.sides);
        let volume = communication_volume(a, &partition);
        if volume < best.volume {
            best = BipartitionResult {
                partition,
                volume,
                ir_iterations: rounds,
            };
            stale = 0;
        } else {
            stale += 1;
            direction = 1 - direction;
            if stale >= options.patience {
                break;
            }
        }
    }
    best.ir_iterations = rounds;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium_grain::medium_grain_bipartition;
    use mg_sparse::load_imbalance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn never_worse_than_plain_medium_grain() {
        let mut gen_rng = StdRng::seed_from_u64(70);
        let a = mg_sparse::gen::chung_lu_symmetric(300, 3000, 0.9, &mut gen_rng);
        let cfg = PartitionerConfig::mondriaan_like();
        let plain = medium_grain_bipartition(&a, 0.03, &cfg, &mut StdRng::seed_from_u64(1));
        let full = medium_grain_full_iterative(
            &a,
            0.03,
            &cfg,
            &FullIterativeOptions::default(),
            &mut StdRng::seed_from_u64(1),
        );
        // Same RNG stream start → the first round reproduces `plain`; the
        // iterations can only keep or improve it.
        assert!(
            full.volume <= plain.volume,
            "{} > {}",
            full.volume,
            plain.volume
        );
        assert!(load_imbalance(&full.partition) <= 0.03 + 1e-9);
    }

    #[test]
    fn respects_iteration_budget() {
        let a = mg_sparse::gen::laplacian_2d(12, 12);
        let cfg = PartitionerConfig::mondriaan_like();
        let opts = FullIterativeOptions {
            iterations: 2,
            patience: 10,
        };
        let r = medium_grain_full_iterative(&a, 0.03, &cfg, &opts, &mut StdRng::seed_from_u64(2));
        assert!(r.ir_iterations <= 2);
    }

    #[test]
    fn empty_matrix_short_circuits() {
        let a = Coo::empty(4, 4);
        let cfg = PartitionerConfig::mondriaan_like();
        let r = medium_grain_full_iterative(
            &a,
            0.03,
            &cfg,
            &FullIterativeOptions::default(),
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(r.volume, 0);
    }
}

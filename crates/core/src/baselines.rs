//! The comparison methods of §IV: 1D row-net / column-net bipartitioners,
//! their best-of-two combination ("localbest", Mondriaan ≤ 3.11's default)
//! and the 2D fine-grain method.

use crate::methods::BipartitionResult;
use mg_hypergraph::{column_net_model, fine_grain_model, row_net_model, ModelKind};
use mg_partitioner::{bipartition_hypergraph, BisectionTargets, PartitionerConfig};
use mg_sparse::{Coo, NonzeroPartition};
use rand::Rng;

/// Bipartitions `a` through one of the classical hypergraph models.
pub fn model_bipartition<R: Rng>(
    a: &Coo,
    kind: ModelKind,
    targets: &BisectionTargets,
    config: &PartitionerConfig,
    rng: &mut R,
) -> BipartitionResult {
    if a.nnz() == 0 {
        return BipartitionResult::from_partition(
            a,
            NonzeroPartition::new(2, Vec::new()).expect("empty partition"),
        );
    }
    let model = match kind {
        ModelKind::RowNet => row_net_model(a),
        ModelKind::ColumnNet => column_net_model(a),
        ModelKind::FineGrain => fine_grain_model(a),
    };
    debug_assert_eq!(model.hypergraph.total_vertex_weight(), a.nnz() as u64);
    let outcome = bipartition_hypergraph(&model.hypergraph, targets, config, rng);
    let partition = model.to_nonzero_partition(a, &outcome.sides);
    let result = BipartitionResult::from_partition(a, partition);
    debug_assert_eq!(result.volume, outcome.cut);
    result
}

/// The localbest method: bipartition with both the row-net and the
/// column-net model, keep whichever yields the lower communication volume
/// (ties favour row-net, matching Mondriaan's order of evaluation).
///
/// Feasibility trumps volume: a 1D model can be structurally unable to
/// balance (a single column heavier than the budget is atomic for the
/// row-net model), and its volume-0 "solution" must not beat a feasible
/// one from the other direction.
pub fn localbest_bipartition<R: Rng>(
    a: &Coo,
    targets: &BisectionTargets,
    config: &PartitionerConfig,
    rng: &mut R,
) -> BipartitionResult {
    let by_rows = model_bipartition(a, ModelKind::RowNet, targets, config, rng);
    let by_cols = model_bipartition(a, ModelKind::ColumnNet, targets, config, rng);
    let budgets = targets.budgets();
    let violation = |r: &BipartitionResult| -> u64 {
        r.partition
            .part_sizes()
            .iter()
            .zip(budgets.iter())
            .map(|(&s, &b)| s.saturating_sub(b))
            .sum()
    };
    if (violation(&by_rows), by_rows.volume) <= (violation(&by_cols), by_cols.volume) {
        by_rows
    } else {
        by_cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sparse::{load_imbalance, row_lambdas};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn even(a: &Coo) -> BisectionTargets {
        BisectionTargets::even(a.nnz() as u64, 0.03)
    }

    #[test]
    fn row_net_produces_column_partitioning() {
        let a = mg_sparse::gen::laplacian_2d(12, 12);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(1);
        let r = model_bipartition(&a, ModelKind::RowNet, &even(&a), &cfg, &mut rng);
        // Column partitioning: every column's nonzeros share one part, so
        // columns contribute no volume.
        let cl = mg_sparse::col_lambdas(&a, &r.partition);
        assert!(cl.iter().all(|&l| l <= 1));
        assert!(load_imbalance(&r.partition) <= 0.03 + 1e-9);
    }

    #[test]
    fn column_net_produces_row_partitioning() {
        let a = mg_sparse::gen::laplacian_2d(12, 12);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(2);
        let r = model_bipartition(&a, ModelKind::ColumnNet, &even(&a), &cfg, &mut rng);
        let rl = row_lambdas(&a, &r.partition);
        assert!(rl.iter().all(|&l| l <= 1));
    }

    #[test]
    fn localbest_is_no_worse_than_either_model() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = mg_sparse::gen::erdos_renyi(80, 40, 700, &mut rng);
        let cfg = PartitionerConfig::mondriaan_like();
        // Same seeds for comparability.
        let lb = localbest_bipartition(&a, &even(&a), &cfg, &mut StdRng::seed_from_u64(4));
        let rn = model_bipartition(
            &a,
            ModelKind::RowNet,
            &even(&a),
            &cfg,
            &mut StdRng::seed_from_u64(4),
        );
        assert!(lb.volume <= rn.volume);
    }

    #[test]
    fn fine_grain_respects_balance() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = mg_sparse::gen::erdos_renyi(50, 50, 500, &mut rng);
        let cfg = PartitionerConfig::mondriaan_like();
        let r = model_bipartition(&a, ModelKind::FineGrain, &even(&a), &cfg, &mut rng);
        assert!(load_imbalance(&r.partition) <= 0.03 + 1e-9);
    }

    #[test]
    fn fine_grain_beats_1d_on_checkerboardable_matrix() {
        // The arrow matrix: dense border rows/columns make any 1D
        // partitioning expensive, while 2D methods split the border.
        let a = mg_sparse::gen::arrow(60, 3);
        let cfg = PartitionerConfig::mondriaan_like();
        let fg = model_bipartition(
            &a,
            ModelKind::FineGrain,
            &even(&a),
            &cfg,
            &mut StdRng::seed_from_u64(6),
        );
        let lb = localbest_bipartition(&a, &even(&a), &cfg, &mut StdRng::seed_from_u64(6));
        assert!(
            fg.volume <= lb.volume + 2,
            "fine-grain {} should not lose badly to 1D {}",
            fg.volume,
            lb.volume
        );
    }
}

//! Recursive bisection to `p` parts (§IV, Table II).
//!
//! Like Mondriaan, the matrix is split into two nonzero sets with targets
//! proportional to `⌈p/2⌉ : ⌊p/2⌋`, and each side is partitioned
//! recursively *as a sub-matrix with the original coordinates*, so rows and
//! columns stay globally meaningful and the final p-way volume is computed
//! on the whole matrix.
//!
//! The imbalance budget is spread over the `⌈log₂ p⌉` levels:
//! `ε_level = (1+ε)^(1/⌈log₂ p⌉) − 1`, which keeps the final eqn (1)
//! constraint satisfied up to the integer rounding inherent in splitting
//! odd nonzero counts.

use crate::backend::PartitionBackend;
use crate::methods::{BipartitionResult, Method};
use mg_partitioner::{BisectionTargets, PartitionerConfig};
use mg_sparse::{communication_volume, Coo, Idx, NonzeroPartition};
use rand::Rng;

/// Outcome of a p-way recursive bisection.
#[derive(Debug, Clone)]
pub struct MultiwayResult {
    /// The p-way nonzero partition.
    pub partition: NonzeroPartition,
    /// Its total communication volume over all rows and columns.
    pub volume: u64,
}

/// Partitions `a` into `p` parts with method `method` under the global
/// eqn (1) constraint with parameter `epsilon`.
pub fn recursive_bisection<R: Rng>(
    a: &Coo,
    p: Idx,
    epsilon: f64,
    method: Method,
    config: &PartitionerConfig,
    rng: &mut R,
) -> MultiwayResult {
    run_recursion(
        a,
        p,
        epsilon,
        &mut |sub, targets, _first_part, _num_parts| {
            method.bipartition_with_targets(sub, targets, config, rng)
        },
    )
}

/// Partitions `a` into `p` parts through a [`PartitionBackend`], the
/// seam every backend of the registry supports (the direct backends take
/// uneven targets natively; the multilevel ones route through
/// [`Method::bipartition_with_targets`]).
///
/// Backends are seeded per bisection node — a stable mix of `seed` with
/// the node's `(first_part, num_parts)` identity — so the p-way result is
/// a pure function of `(a, p, ε, method, backend, seed)`, independent of
/// recursion order.
pub fn recursive_bisection_backend(
    a: &Coo,
    p: Idx,
    epsilon: f64,
    method: Method,
    backend: &dyn PartitionBackend,
    seed: u64,
) -> MultiwayResult {
    run_recursion(a, p, epsilon, &mut |sub, targets, first_part, num_parts| {
        backend.bipartition_with_targets(
            sub,
            method,
            targets,
            node_seed(seed, first_part, num_parts),
        )
    })
}

/// Derives one bisection node's seed from the master seed and the node
/// identity.
fn node_seed(seed: u64, first_part: Idx, num_parts: Idx) -> u64 {
    crate::backend::splitmix(seed ^ (u64::from(first_part) << 32) ^ u64::from(num_parts))
}

/// The shared recursion driver: `bipartition(sub, targets, first_part,
/// num_parts)` supplies one bisection of a sub-matrix, everything else —
/// per-level ε budget, uneven child part counts, sub-matrix extraction,
/// side splitting — is common to the RNG-threaded and the node-seeded
/// backend entry points.
fn run_recursion(
    a: &Coo,
    p: Idx,
    epsilon: f64,
    bipartition: &mut dyn FnMut(&Coo, &BisectionTargets, Idx, Idx) -> BipartitionResult,
) -> MultiwayResult {
    assert!(p >= 1, "need at least one part");
    let levels = (p as f64).log2().ceil().max(1.0);
    let epsilon_level = (1.0 + epsilon).powf(1.0 / levels) - 1.0;

    let mut parts = vec![0 as Idx; a.nnz()];
    let all_ids: Vec<Idx> = (0..a.nnz() as Idx).collect();
    bisect_rec(a, &all_ids, 0, p, epsilon_level, bipartition, &mut parts);
    let partition = NonzeroPartition::new(p, parts).expect("parts stay in range");
    let volume = communication_volume(a, &partition);
    MultiwayResult { partition, volume }
}

/// Recursively assigns part ids `first_part .. first_part + num_parts` to
/// the nonzeros `ids` (canonical ids into `a`).
fn bisect_rec(
    a: &Coo,
    ids: &[Idx],
    first_part: Idx,
    num_parts: Idx,
    epsilon_level: f64,
    bipartition: &mut dyn FnMut(&Coo, &BisectionTargets, Idx, Idx) -> BipartitionResult,
    parts: &mut [Idx],
) {
    if num_parts == 1 || ids.is_empty() {
        for &k in ids {
            parts[k as usize] = first_part;
        }
        return;
    }
    // Uneven child part counts for non-powers of two.
    let p0 = num_parts.div_ceil(2);
    let p1 = num_parts - p0;

    // Sub-matrix: the selected nonzeros with their global coordinates.
    // `ids` is kept sorted, so entry r of `sub` is nonzero ids[r] of `a`.
    debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    let entries: Vec<(Idx, Idx)> = ids.iter().map(|&k| a.entry(k as usize)).collect();
    let sub = Coo::from_sorted_unchecked(a.rows(), a.cols(), entries);

    let nnz = sub.nnz() as u64;
    let target0 = (nnz * p0 as u64).div_ceil(num_parts as u64);
    let targets = BisectionTargets {
        target: [target0, nnz - target0],
        epsilon: epsilon_level,
    };
    let BipartitionResult { partition, .. } = bipartition(&sub, &targets, first_part, num_parts);

    let mut side0: Vec<Idx> = Vec::with_capacity(target0 as usize);
    let mut side1: Vec<Idx> = Vec::new();
    for (r, &k) in ids.iter().enumerate() {
        if partition.part_of(r) == 0 {
            side0.push(k);
        } else {
            side1.push(k);
        }
    }
    bisect_rec(a, &side0, first_part, p0, epsilon_level, bipartition, parts);
    bisect_rec(
        a,
        &side1,
        first_part + p0,
        p1,
        epsilon_level,
        bipartition,
        parts,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sparse::load_imbalance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn four_way_split_respects_global_balance() {
        let a = mg_sparse::gen::laplacian_2d(20, 20);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(1);
        let r = recursive_bisection(
            &a,
            4,
            0.03,
            Method::MediumGrain { refine: true },
            &cfg,
            &mut rng,
        );
        assert_eq!(r.partition.num_parts(), 4);
        let sizes = r.partition.part_sizes();
        assert!(sizes.iter().all(|&s| s > 0), "empty part: {sizes:?}");
        // Integer rounding across levels can exceed ε slightly on small
        // matrices; allow a small tolerance.
        assert!(
            load_imbalance(&r.partition) <= 0.03 + 0.02,
            "imbalance {}",
            load_imbalance(&r.partition)
        );
        assert_eq!(r.volume, communication_volume(&a, &r.partition));
    }

    #[test]
    fn p_equals_one_is_trivial() {
        let a = mg_sparse::gen::laplacian_2d(8, 8);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(2);
        let r = recursive_bisection(
            &a,
            1,
            0.03,
            Method::MediumGrain { refine: false },
            &cfg,
            &mut rng,
        );
        assert_eq!(r.volume, 0);
        assert!(r.partition.parts().iter().all(|&q| q == 0));
    }

    #[test]
    fn p_equals_two_matches_plain_bipartition_quality() {
        let a = mg_sparse::gen::laplacian_2d(16, 16);
        let cfg = PartitionerConfig::mondriaan_like();
        let rec = recursive_bisection(
            &a,
            2,
            0.03,
            Method::MediumGrain { refine: false },
            &cfg,
            &mut StdRng::seed_from_u64(3),
        );
        let flat = Method::MediumGrain { refine: false }.bipartition(
            &a,
            0.03,
            &cfg,
            &mut StdRng::seed_from_u64(3),
        );
        // Same computation path, modulo the per-level epsilon (identical
        // for p = 2: one level); volumes must match exactly.
        assert_eq!(rec.volume, flat.volume);
    }

    #[test]
    fn odd_part_counts_are_supported() {
        let a = mg_sparse::gen::laplacian_2d(18, 18);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(4);
        let r = recursive_bisection(
            &a,
            3,
            0.1,
            Method::LocalBest { refine: false },
            &cfg,
            &mut rng,
        );
        assert_eq!(r.partition.num_parts(), 3);
        let sizes = r.partition.part_sizes();
        assert!(sizes.iter().all(|&s| s > 0));
        let budget = ((1.0 + 0.1) * a.nnz() as f64 / 3.0).floor() as u64;
        // Generous slack for rounding: each part within ~1.1x budget.
        assert!(sizes.iter().all(|&s| s <= budget + budget / 8));
    }

    #[test]
    fn every_backend_supports_recursive_bisection() {
        let a = mg_sparse::gen::laplacian_2d(16, 16);
        for backend in crate::backend::all_backends() {
            for p in [3 as Idx, 4] {
                let r = recursive_bisection_backend(
                    &a,
                    p,
                    0.1,
                    Method::MediumGrain { refine: false },
                    backend,
                    9,
                );
                assert_eq!(r.partition.num_parts(), p, "{}", backend.name());
                r.partition.check_against(&a).unwrap();
                let sizes = r.partition.part_sizes();
                assert!(
                    sizes.iter().all(|&s| s > 0),
                    "{} p={p}: empty part {sizes:?}",
                    backend.name()
                );
                assert_eq!(r.volume, communication_volume(&a, &r.partition));
            }
        }
    }

    #[test]
    fn backend_recursion_is_deterministic_in_its_seed() {
        let a = mg_sparse::gen::laplacian_2d(12, 12);
        let backend = crate::backend::parse_backend("patoh").unwrap();
        let m = Method::MediumGrain { refine: true };
        let x = recursive_bisection_backend(&a, 4, 0.03, m, backend, 77);
        let y = recursive_bisection_backend(&a, 4, 0.03, m, backend, 77);
        assert_eq!(x.partition.parts(), y.partition.parts());
        assert_eq!(x.volume, y.volume);
    }

    #[test]
    fn volume_grows_with_part_count() {
        let a = mg_sparse::gen::laplacian_2d(24, 24);
        let cfg = PartitionerConfig::mondriaan_like();
        let v2 = recursive_bisection(
            &a,
            2,
            0.03,
            Method::MediumGrain { refine: true },
            &cfg,
            &mut StdRng::seed_from_u64(5),
        )
        .volume;
        let v8 = recursive_bisection(
            &a,
            8,
            0.03,
            Method::MediumGrain { refine: true },
            &cfg,
            &mut StdRng::seed_from_u64(5),
        )
        .volume;
        assert!(v8 > v2, "v8 {v8} should exceed v2 {v2}");
    }
}

//! One enum for every bipartitioning method the paper compares.
//!
//! §IV evaluates six configurations: localbest (LB), fine-grain (FG) and
//! medium-grain (MG), each with and without iterative refinement (IR). The
//! row-net and column-net models are also exposed individually (LB is their
//! best-of-two).

use crate::baselines::{localbest_bipartition, model_bipartition};
use crate::medium_grain::medium_grain_bipartition_with_targets;
use crate::refine::{iterative_refinement_with_budgets, RefineOptions};
use mg_hypergraph::ModelKind;
use mg_partitioner::{BisectionTargets, PartitionerConfig};
use mg_sparse::{communication_volume, Coo, NonzeroPartition};
use rand::Rng;

/// Outcome of a bipartitioning method on a matrix.
#[derive(Debug, Clone)]
pub struct BipartitionResult {
    /// The 2-way nonzero partition.
    pub partition: NonzeroPartition,
    /// Its communication volume (eqn (3)).
    pub volume: u64,
    /// Iterations of Algorithm 2 performed (0 without IR).
    pub ir_iterations: u32,
}

impl BipartitionResult {
    pub(crate) fn from_partition(a: &Coo, partition: NonzeroPartition) -> Self {
        let volume_timer = mg_obs::phase("volume_count");
        let volume = communication_volume(a, &partition);
        drop(volume_timer);
        BipartitionResult {
            partition,
            volume,
            ir_iterations: 0,
        }
    }
}

/// A sparse matrix bipartitioning method of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// 1D row-net model (column partitioning).
    RowNet {
        /// Apply Algorithm 2 afterwards.
        refine: bool,
    },
    /// 1D column-net model (row partitioning).
    ColumnNet {
        /// Apply Algorithm 2 afterwards.
        refine: bool,
    },
    /// Best of row-net and column-net — Mondriaan ≤ 3.11's default.
    LocalBest {
        /// Apply Algorithm 2 afterwards.
        refine: bool,
    },
    /// 2D fine-grain model (one vertex per nonzero).
    FineGrain {
        /// Apply Algorithm 2 afterwards.
        refine: bool,
    },
    /// The paper's 2D medium-grain method — Mondriaan 4.0's default.
    MediumGrain {
        /// Apply Algorithm 2 afterwards.
        refine: bool,
    },
}

impl Method {
    /// Every refine×model configuration, in label order: RN, RN+IR, CN,
    /// CN+IR, LB, LB+IR, FG, FG+IR, MG, MG+IR. This is the exhaustive
    /// domain of the name codec ([`Method::name`] / [`Method::parse_name`]).
    pub fn all() -> [Method; 10] {
        [
            Method::RowNet { refine: false },
            Method::RowNet { refine: true },
            Method::ColumnNet { refine: false },
            Method::ColumnNet { refine: true },
            Method::LocalBest { refine: false },
            Method::LocalBest { refine: true },
            Method::FineGrain { refine: false },
            Method::FineGrain { refine: true },
            Method::MediumGrain { refine: false },
            Method::MediumGrain { refine: true },
        ]
    }

    /// The six configurations of Fig 4/5/6 and Tables I/II, in the paper's
    /// column order: LB, LB+IR, MG, MG+IR, FG, FG+IR.
    pub fn paper_set() -> [Method; 6] {
        [
            Method::LocalBest { refine: false },
            Method::LocalBest { refine: true },
            Method::MediumGrain { refine: false },
            Method::MediumGrain { refine: true },
            Method::FineGrain { refine: false },
            Method::FineGrain { refine: true },
        ]
    }

    /// The paper's abbreviation for this configuration.
    pub fn label(&self) -> &'static str {
        match self {
            Method::RowNet { refine: false } => "RN",
            Method::RowNet { refine: true } => "RN+IR",
            Method::ColumnNet { refine: false } => "CN",
            Method::ColumnNet { refine: true } => "CN+IR",
            Method::LocalBest { refine: false } => "LB",
            Method::LocalBest { refine: true } => "LB+IR",
            Method::FineGrain { refine: false } => "FG",
            Method::FineGrain { refine: true } => "FG+IR",
            Method::MediumGrain { refine: false } => "MG",
            Method::MediumGrain { refine: true } => "MG+IR",
        }
    }

    /// The canonical lowercase name of this configuration, as accepted by
    /// CLI `-m` lists and the service protocol: `rn`, `rn-ir`, `cn`,
    /// `cn-ir`, `lb`, `lb-ir`, `fg`, `fg-ir`, `mg`, `mg-ir`.
    pub fn name(&self) -> &'static str {
        match self {
            Method::RowNet { refine: false } => "rn",
            Method::RowNet { refine: true } => "rn-ir",
            Method::ColumnNet { refine: false } => "cn",
            Method::ColumnNet { refine: true } => "cn-ir",
            Method::LocalBest { refine: false } => "lb",
            Method::LocalBest { refine: true } => "lb-ir",
            Method::FineGrain { refine: false } => "fg",
            Method::FineGrain { refine: true } => "fg-ir",
            Method::MediumGrain { refine: false } => "mg",
            Method::MediumGrain { refine: true } => "mg-ir",
        }
    }

    /// Parses a method from either the canonical lowercase name
    /// ([`Method::name`], e.g. `mg-ir`) or the paper abbreviation
    /// ([`Method::label`], e.g. `MG+IR`), case-insensitively. The single
    /// codec every layer (CLI args, sweep records, service protocol) goes
    /// through, so the spellings can never drift apart.
    pub fn parse_name(raw: &str) -> Result<Method, String> {
        let normalized: String = raw
            .trim()
            .chars()
            .map(|c| match c {
                '+' | '_' => '-',
                c => c.to_ascii_lowercase(),
            })
            .collect();
        Method::all()
            .into_iter()
            .find(|m| m.name() == normalized)
            .ok_or_else(|| {
                let names: Vec<&str> = Method::all().iter().map(|m| m.name()).collect();
                format!(
                    "unknown method {raw:?} (expected one of {})",
                    names.join(", ")
                )
            })
    }

    /// Whether iterative refinement is enabled.
    pub fn refines(&self) -> bool {
        match *self {
            Method::RowNet { refine }
            | Method::ColumnNet { refine }
            | Method::LocalBest { refine }
            | Method::FineGrain { refine }
            | Method::MediumGrain { refine } => refine,
        }
    }

    /// Bipartitions `a` under the load-imbalance constraint of eqn (1)
    /// with parameter `epsilon` (the paper uses ε = 0.03 throughout).
    pub fn bipartition<R: Rng>(
        &self,
        a: &Coo,
        epsilon: f64,
        config: &PartitionerConfig,
        rng: &mut R,
    ) -> BipartitionResult {
        let targets = BisectionTargets::even(a.nnz() as u64, epsilon);
        self.bipartition_with_targets(a, &targets, config, rng)
    }

    /// Bipartitions with explicit (possibly uneven) nonzero targets, the
    /// primitive recursive bisection builds on.
    pub fn bipartition_with_targets<R: Rng>(
        &self,
        a: &Coo,
        targets: &BisectionTargets,
        config: &PartitionerConfig,
        rng: &mut R,
    ) -> BipartitionResult {
        let mut result = match *self {
            Method::RowNet { .. } => model_bipartition(a, ModelKind::RowNet, targets, config, rng),
            Method::ColumnNet { .. } => {
                model_bipartition(a, ModelKind::ColumnNet, targets, config, rng)
            }
            Method::LocalBest { .. } => localbest_bipartition(a, targets, config, rng),
            Method::FineGrain { .. } => {
                model_bipartition(a, ModelKind::FineGrain, targets, config, rng)
            }
            Method::MediumGrain { .. } => {
                medium_grain_bipartition_with_targets(a, targets, config, rng)
            }
        };
        if self.refines() {
            let opts = RefineOptions::default();
            let budgets = targets.budgets();
            let refined = iterative_refinement_with_budgets(a, &result.partition, budgets, &opts);
            // Monotone whenever the input was feasible; from an infeasible
            // start (an atomic row/column group heavier than the budget)
            // the FM inside IR repairs balance first, possibly at a volume
            // cost — the desired behaviour.
            debug_assert!(
                refined.volume <= result.volume
                    || result
                        .partition
                        .part_sizes()
                        .iter()
                        .zip(budgets.iter())
                        .any(|(&s, &b)| s > b)
            );
            result = BipartitionResult {
                partition: refined.partition,
                volume: refined.volume,
                ir_iterations: refined.iterations,
            };
        }
        result
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sparse::load_imbalance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_set_labels() {
        let labels: Vec<&str> = Method::paper_set().iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["LB", "LB+IR", "MG", "MG+IR", "FG", "FG+IR"]);
    }

    #[test]
    fn name_codec_round_trips_all_ten_configurations() {
        let all = Method::all();
        assert_eq!(all.len(), 10);
        let mut seen = std::collections::HashSet::new();
        for method in all {
            // name → method.
            assert_eq!(Method::parse_name(method.name()).unwrap(), method);
            // Display (= paper label) → method.
            assert_eq!(Method::parse_name(&method.to_string()).unwrap(), method);
            assert_eq!(Method::parse_name(method.label()).unwrap(), method);
            // Case- and separator-insensitive.
            assert_eq!(
                Method::parse_name(&method.name().to_ascii_uppercase()).unwrap(),
                method
            );
            assert_eq!(
                Method::parse_name(&method.name().replace('-', "_")).unwrap(),
                method
            );
            assert!(seen.insert(method.name()), "duplicate name");
            assert!(seen.insert(method.label()), "name/label collision");
        }
    }

    #[test]
    fn parse_name_rejects_unknown_spellings() {
        for bad in ["", "medium", "mg+", "mgir", "mg ir", "ir-mg"] {
            let err = Method::parse_name(bad).unwrap_err();
            assert!(
                err.contains("mg-ir"),
                "error should list valid names: {err}"
            );
        }
    }

    #[test]
    fn every_method_partitions_a_laplacian_within_budget() {
        let a = mg_sparse::gen::laplacian_2d(12, 12);
        let cfg = PartitionerConfig::mondriaan_like();
        for method in [
            Method::RowNet { refine: false },
            Method::ColumnNet { refine: false },
            Method::LocalBest { refine: false },
            Method::FineGrain { refine: false },
            Method::MediumGrain { refine: false },
            Method::MediumGrain { refine: true },
        ] {
            let mut rng = StdRng::seed_from_u64(7);
            let result = method.bipartition(&a, 0.03, &cfg, &mut rng);
            result.partition.check_against(&a).unwrap();
            assert!(
                load_imbalance(&result.partition) <= 0.03 + 1e-9,
                "{method} violated balance: {}",
                load_imbalance(&result.partition)
            );
            assert_eq!(
                result.volume,
                communication_volume(&a, &result.partition),
                "{method} reported a stale volume"
            );
            assert!(
                result.volume > 0,
                "{method}: a connected Laplacian must cut"
            );
        }
    }

    #[test]
    fn refinement_never_hurts() {
        let a = mg_sparse::gen::laplacian_2d(16, 8);
        let cfg = PartitionerConfig::mondriaan_like();
        for (plain, refined) in [
            (
                Method::LocalBest { refine: false },
                Method::LocalBest { refine: true },
            ),
            (
                Method::FineGrain { refine: false },
                Method::FineGrain { refine: true },
            ),
            (
                Method::MediumGrain { refine: false },
                Method::MediumGrain { refine: true },
            ),
        ] {
            let a_res = plain.bipartition(&a, 0.03, &cfg, &mut StdRng::seed_from_u64(3));
            let b_res = refined.bipartition(&a, 0.03, &cfg, &mut StdRng::seed_from_u64(3));
            assert!(
                b_res.volume <= a_res.volume,
                "{refined}: {} > {}",
                b_res.volume,
                a_res.volume
            );
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let a = Coo::empty(5, 5);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(1);
        let r = Method::MediumGrain { refine: true }.bipartition(&a, 0.03, &cfg, &mut rng);
        assert_eq!(r.volume, 0);
        assert_eq!(r.partition.parts().len(), 0);
    }

    #[test]
    fn single_nonzero_matrix() {
        let a = Coo::new(3, 3, vec![(1, 1)]).unwrap();
        let cfg = PartitionerConfig::mondriaan_like();
        for method in Method::paper_set() {
            let mut rng = StdRng::seed_from_u64(2);
            let r = method.bipartition(&a, 0.03, &cfg, &mut rng);
            assert_eq!(r.volume, 0, "{method}");
        }
    }
}

//! Algorithm 2: medium-grain iterative refinement (§III-C).
//!
//! Any bipartition `A = A0 ∪ A1` can be re-encoded as a medium-grain split
//! by declaring one side the row groups and the other the column groups
//! (`Ar ← A0, Ac ← A1`, "direction 0", or the reverse, "direction 1").
//! The resulting hypergraph of `B`, seeded with the current assignment, has
//! cut weight exactly the current volume; a single Kernighan–Lin/FM run can
//! then only keep or lower it. Re-encoding after every run changes which
//! nonzero groups move *atomically*, which is what lets successive runs
//! escape each other's local minima.
//!
//! The loop alternates directions exactly as in the paper: switch when a
//! run stops improving, stop when both directions are exhausted
//! (`V_k = V_{k−2}`).
//!
//! This is a *cheap* post-processing step — one level, no coarsening — and
//! is applicable to the output of any bipartitioning method.

use crate::bmatrix::MediumGrainModel;
use crate::split::Split;
use mg_hypergraph::VertexBipartition;
use mg_partitioner::{fm_refine_with_scratch, FmLimits, FmScratch};
use mg_sparse::{communication_volume, part_budget, Coo, NonzeroPartition};

/// Effort limits for each "single KL run" of Algorithm 2.
#[derive(Debug, Clone)]
pub struct RefineOptions {
    /// FM passes per run. The paper's "single run of Kernighan–Lin" is one
    /// refinement to convergence; a small cap keeps runs cheap while
    /// converging in practice.
    pub fm_passes: u32,
    /// Stall limit within a pass (see [`FmLimits`]).
    pub stall_limit: u32,
    /// Safety cap on Algorithm 2 iterations (the loop otherwise terminates
    /// by the `V_k = V_{k−2}` rule).
    pub max_iterations: u32,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            fm_passes: 4,
            stall_limit: 2000,
            max_iterations: 64,
        }
    }
}

/// Outcome of iterative refinement.
#[derive(Debug, Clone)]
pub struct RefinedResult {
    /// The refined bipartition (volume ≤ the input's).
    pub partition: NonzeroPartition,
    /// Its communication volume.
    pub volume: u64,
    /// Number of KL runs performed.
    pub iterations: u32,
}

/// Iterative refinement under the standard eqn (1) budget
/// `⌊(1+ε)·N/2⌋` per side.
pub fn iterative_refinement(
    a: &Coo,
    partition: &NonzeroPartition,
    epsilon: f64,
    options: &RefineOptions,
) -> RefinedResult {
    let b = part_budget(a.nnz(), 2, epsilon);
    iterative_refinement_with_budgets(a, partition, [b, b], options)
}

/// Iterative refinement with explicit per-side budgets (recursive bisection
/// passes uneven ones).
pub fn iterative_refinement_with_budgets(
    a: &Coo,
    partition: &NonzeroPartition,
    budget: [u64; 2],
    options: &RefineOptions,
) -> RefinedResult {
    assert_eq!(partition.num_parts(), 2, "Algorithm 2 refines bipartitions");
    partition
        .check_against(a)
        .expect("partition does not match matrix");

    let limits = FmLimits {
        budget,
        max_passes: options.fm_passes,
        stall_limit: options.stall_limit,
        scan_cap: 128,
        boundary_only: false,
    };

    let mut current = partition.clone();
    let mut volumes = vec![communication_volume(a, &current)];
    let mut direction = 0u8;
    let mut iterations = 0u32;
    // One FM scratch serves every KL run of the loop.
    let mut scratch = FmScratch::new();

    while iterations < options.max_iterations {
        iterations += 1;

        // Re-encode the current bipartition as a split. Direction 0 puts
        // A0 in Ar (row groups); direction 1 puts A0 in Ac.
        let in_row: Vec<bool> = (0..a.nnz())
            .map(|k| (current.part_of(k) == 0) == (direction == 0))
            .collect();
        let split = Split::from_assignment(in_row);
        let model = MediumGrainModel::build(a, &split);

        // Seed the hypergraph with the current assignment (groups are pure
        // by construction) and run a single KL/FM refinement.
        let sides = model.sides_from_partition(a, &current);
        let mut bp = VertexBipartition::new(&model.hypergraph, sides);
        fm_refine_with_scratch(&model.hypergraph, &mut bp, &limits, &mut scratch);
        let refined = model.to_nonzero_partition(a, &bp.into_sides());
        let volume = communication_volume(a, &refined);

        // FM's best-prefix rule guarantees (violation, cut) never worsens,
        // so accepting unconditionally keeps the procedure monotone.
        current = refined;
        let k = volumes.len();
        volumes.push(volume);
        if volume >= volumes[k - 1] {
            direction = 1 - direction;
        }
        if k >= 2 && volume >= volumes[k - 2] {
            break; // both directions exhausted (Algorithm 2, line 21)
        }
    }

    RefinedResult {
        volume: *volumes.last().expect("at least the initial volume"),
        partition: current,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sparse::load_imbalance;
    use mg_sparse::Idx;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn refinement_is_monotone_non_increasing() {
        let a = mg_sparse::gen::laplacian_2d(14, 14);
        let parts: Vec<Idx> = (0..a.nnz()).map(|k| (k % 2) as Idx).collect();
        let p = NonzeroPartition::new(2, parts).unwrap();
        let before = communication_volume(&a, &p);
        let refined = iterative_refinement(&a, &p, 0.03, &RefineOptions::default());
        assert!(refined.volume <= before);
        assert_eq!(refined.volume, communication_volume(&a, &refined.partition));
        // A fully interleaved start is terrible; IR must bite hard.
        assert!(
            refined.volume <= before / 2,
            "IR barely improved: {} -> {}",
            before,
            refined.volume
        );
    }

    #[test]
    fn refinement_respects_budget() {
        let a = mg_sparse::gen::laplacian_2d(12, 12);
        let parts: Vec<Idx> = (0..a.nnz()).map(|k| (k % 2) as Idx).collect();
        let p = NonzeroPartition::new(2, parts).unwrap();
        let refined = iterative_refinement(&a, &p, 0.03, &RefineOptions::default());
        assert!(load_imbalance(&refined.partition) <= 0.03 + 1e-9);
    }

    #[test]
    fn already_optimal_partition_is_stable() {
        // Two disconnected dense blocks, split along the blocks: volume 0.
        let mut entries = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                entries.push((i, j));
                entries.push((4 + i, 4 + j));
            }
        }
        let a = Coo::new(8, 8, entries).unwrap();
        let parts: Vec<Idx> = a.iter().map(|(i, _)| (i >= 4) as Idx).collect();
        let p = NonzeroPartition::new(2, parts).unwrap();
        assert_eq!(communication_volume(&a, &p), 0);
        let refined = iterative_refinement(&a, &p, 0.03, &RefineOptions::default());
        assert_eq!(refined.volume, 0);
        // Terminates quickly: two non-improving runs.
        assert!(refined.iterations <= 3);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let a = mg_sparse::gen::laplacian_2d(10, 10);
        let parts: Vec<Idx> = (0..a.nnz()).map(|k| (k % 2) as Idx).collect();
        let p = NonzeroPartition::new(2, parts).unwrap();
        let opts = RefineOptions {
            max_iterations: 1,
            ..RefineOptions::default()
        };
        let refined = iterative_refinement(&a, &p, 0.03, &opts);
        assert_eq!(refined.iterations, 1);
    }

    #[test]
    fn refines_output_of_other_methods() {
        use crate::methods::Method;
        use mg_partitioner::PartitionerConfig;
        let a = mg_sparse::gen::laplacian_2d(16, 16);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(21);
        let rn = Method::RowNet { refine: false }.bipartition(&a, 0.03, &cfg, &mut rng);
        let refined = iterative_refinement(&a, &rn.partition, 0.03, &RefineOptions::default());
        assert!(refined.volume <= rn.volume);
    }
}

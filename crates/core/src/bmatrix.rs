//! The composite medium-grain model (§III-A).
//!
//! Given a split `A = Ar + Ac`, the paper forms the
//! `(m+n) × (m+n)` matrix of eqn (4)
//!
//! ```text
//!       B = [ Iₙ    (Ar)ᵀ ]
//!           [ Ac    Iₘ    ]
//! ```
//!
//! and applies the row-net model to `B`. Column `j < n` of `B` represents
//! *the group of nonzeros of column `j` of `A` assigned to `Ac`*; column
//! `n + i` represents *the group of nonzeros of row `i` assigned to `Ar`*.
//! The identity diagonals are dummy nonzeros that glue the two groups of
//! one row/column together so the hypergraph cut counts exactly the
//! communication volume of the mapped 2D partition of `A` (eqn (6)).
//!
//! Per the paper we drop rows/columns of `B` containing only their dummy
//! diagonal: empty groups become no vertices, and nets that shrink to a
//! single pin cannot be cut. This is why the medium-grain hypergraph is
//! often *smaller* than `m + n` vertices — the source of its speed
//! advantage over 1D localbest in Fig 5.

use crate::split::Split;
use mg_hypergraph::{Hypergraph, HypergraphBuilder};
use mg_sparse::{Coo, Idx, NonzeroPartition};

/// Sentinel for "this row/column has no group vertex".
const NO_VERTEX: Idx = Idx::MAX;

/// The medium-grain hypergraph of a split matrix, with the bookkeeping to
/// map vertex bipartitions back to nonzero partitions of `A`.
#[derive(Debug, Clone)]
pub struct MediumGrainModel {
    /// The row-net hypergraph of `B` (dummy-only rows/columns removed).
    pub hypergraph: Hypergraph,
    /// `vertex_of_col[j]` — vertex id of column group `j` (`Ac`), or
    /// `Idx::MAX` if column `j` has no `Ac` nonzeros.
    vertex_of_col: Vec<Idx>,
    /// `vertex_of_row[i]` — vertex id of row group `i` (`Ar`), or
    /// `Idx::MAX`.
    vertex_of_row: Vec<Idx>,
    /// The split this model was built from (owned copy of the assignment).
    in_row: Vec<bool>,
}

impl MediumGrainModel {
    /// Builds the model from a matrix and a split.
    ///
    /// Vertex weights are the group sizes (the paper's `nzc(j) − 1` on `B`,
    /// i.e. dummy excluded), so hypergraph balance is nonzero balance on
    /// `A`. Nets carry weight 1; single-pin nets are dropped.
    pub fn build(a: &Coo, split: &Split) -> Self {
        assert_eq!(
            split.assignment().len(),
            a.nnz(),
            "split does not match matrix"
        );
        let m = a.rows() as usize;
        let n = a.cols() as usize;

        // Group sizes.
        let mut col_group = vec![0u64; n];
        let mut row_group = vec![0u64; m];
        for (k, &(i, j)) in a.entries().iter().enumerate() {
            if split.in_row(k) {
                row_group[i as usize] += 1;
            } else {
                col_group[j as usize] += 1;
            }
        }

        // Assign compact vertex ids to non-empty groups: columns first (as
        // in B's column order), then rows.
        let mut vertex_of_col = vec![NO_VERTEX; n];
        let mut vertex_of_row = vec![NO_VERTEX; m];
        let mut weights: Vec<u64> = Vec::new();
        for j in 0..n {
            if col_group[j] > 0 {
                vertex_of_col[j] = weights.len() as Idx;
                weights.push(col_group[j]);
            }
        }
        for i in 0..m {
            if row_group[i] > 0 {
                vertex_of_row[i] = weights.len() as Idx;
                weights.push(row_group[i]);
            }
        }

        // Nets. Row i of A → net over {col-group vertices of its Ac
        // entries} ∪ {its own row-group vertex}; the dummy diagonal of B is
        // what contributes the row-group pin. Symmetrically for columns.
        //
        // No CSR/CSC materialisation: the canonical entry order *is*
        // row-major, and a column-major walk only needs the permutation.
        // Pins are emitted strictly increasing (column-group ids precede
        // row-group ids by construction) so the builder skips its per-net
        // sort entirely.
        let entries = a.entries();
        let mut builder = HypergraphBuilder::new(weights).drop_singleton_nets();
        let mut pins: Vec<Idx> = Vec::new();
        let mut k = 0usize;
        for i in 0..a.rows() {
            pins.clear();
            while k < entries.len() && entries[k].0 == i {
                if !split.in_row(k) {
                    pins.push(vertex_of_col[entries[k].1 as usize]);
                }
                k += 1;
            }
            if vertex_of_row[i as usize] != NO_VERTEX {
                pins.push(vertex_of_row[i as usize]);
            }
            builder.add_net(1, pins.iter().copied());
        }
        let perm = a.column_major_order();
        let mut pos = 0usize;
        for j in 0..a.cols() {
            pins.clear();
            if vertex_of_col[j as usize] != NO_VERTEX {
                pins.push(vertex_of_col[j as usize]);
            }
            while pos < perm.len() && entries[perm[pos] as usize].1 == j {
                let k = perm[pos] as usize;
                if split.in_row(k) {
                    pins.push(vertex_of_row[entries[k].0 as usize]);
                }
                pos += 1;
            }
            builder.add_net(1, pins.iter().copied());
        }

        MediumGrainModel {
            hypergraph: builder.build(),
            vertex_of_col,
            vertex_of_row,
            in_row: split.assignment().to_vec(),
        }
    }

    /// Vertex id of column group `j`, if it exists.
    pub fn col_vertex(&self, j: Idx) -> Option<Idx> {
        let v = self.vertex_of_col[j as usize];
        (v != NO_VERTEX).then_some(v)
    }

    /// Vertex id of row group `i`, if it exists.
    pub fn row_vertex(&self, i: Idx) -> Option<Idx> {
        let v = self.vertex_of_row[i as usize];
        (v != NO_VERTEX).then_some(v)
    }

    /// Translates a vertex bipartition of the model into the 2D nonzero
    /// partition of `A` defined by eqn (5): an `Ac` nonzero follows its
    /// column group, an `Ar` nonzero follows its row group.
    pub fn to_nonzero_partition(&self, a: &Coo, sides: &[u8]) -> NonzeroPartition {
        assert_eq!(sides.len(), self.hypergraph.num_vertices() as usize);
        let parts: Vec<Idx> = a
            .entries()
            .iter()
            .enumerate()
            .map(|(k, &(i, j))| {
                let v = if self.in_row[k] {
                    self.vertex_of_row[i as usize]
                } else {
                    self.vertex_of_col[j as usize]
                };
                debug_assert_ne!(v, NO_VERTEX, "group of an assigned nonzero must exist");
                sides[v as usize] as Idx
            })
            .collect();
        NonzeroPartition::new(2, parts).expect("sides are 0/1")
    }

    /// Builds the vertex assignment encoding an existing bipartition of the
    /// nonzeros, for Algorithm 2: every group is *pure* by construction
    /// there (group side = side of all its nonzeros).
    ///
    /// Panics in debug mode if a group mixes parts — callers must derive
    /// the split from the partition itself (Ar ← A0, Ac ← A1 or vice
    /// versa).
    pub fn sides_from_partition(&self, a: &Coo, partition: &NonzeroPartition) -> Vec<u8> {
        let mut sides = vec![u8::MAX; self.hypergraph.num_vertices() as usize];
        for (k, &(i, j)) in a.entries().iter().enumerate() {
            let v = if self.in_row[k] {
                self.vertex_of_row[i as usize]
            } else {
                self.vertex_of_col[j as usize]
            };
            let side = partition.part_of(k) as u8;
            debug_assert!(
                sides[v as usize] == u8::MAX || sides[v as usize] == side,
                "group {v} mixes parts"
            );
            sides[v as usize] = side;
        }
        // Vertices can only exist for non-empty groups, so every slot is
        // filled; keep a release-mode fallback anyway.
        for s in sides.iter_mut() {
            if *s == u8::MAX {
                *s = 0;
            }
        }
        sides
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::{split_with_preference, GlobalPreference, Split};
    use mg_hypergraph::VertexBipartition;
    use mg_sparse::communication_volume;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample() -> Coo {
        Coo::new(
            3,
            4,
            vec![
                (0, 0),
                (0, 1),
                (0, 3),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 2),
                (2, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn weights_sum_to_nnz() {
        let a = sample();
        let split = split_with_preference(&a, GlobalPreference::Columns);
        let model = MediumGrainModel::build(&a, &split);
        assert_eq!(model.hypergraph.total_vertex_weight(), a.nnz() as u64);
        model.hypergraph.validate().unwrap();
    }

    #[test]
    fn vertex_count_at_most_m_plus_n() {
        let a = sample();
        for split in [
            split_with_preference(&a, GlobalPreference::Columns),
            split_with_preference(&a, GlobalPreference::Rows),
            Split::all_columns(a.nnz()),
            Split::all_rows(a.nnz()),
        ] {
            let model = MediumGrainModel::build(&a, &split);
            assert!(model.hypergraph.num_vertices() <= a.rows() + a.cols());
        }
    }

    #[test]
    fn all_columns_split_degenerates_to_row_net() {
        // With everything in Ac, the model must be exactly the row-net
        // model: n column vertices (weights nzc), row nets.
        let a = sample();
        let model = MediumGrainModel::build(&a, &Split::all_columns(a.nnz()));
        let rn = mg_hypergraph::row_net_model(&a);
        // Same vertex count (every column of `sample` is non-empty) and
        // same weights; nets may be ordered differently but here both are
        // rows-in-order.
        assert_eq!(
            model.hypergraph.num_vertices(),
            rn.hypergraph.num_vertices()
        );
        assert_eq!(
            model.hypergraph.vertex_weights(),
            rn.hypergraph.vertex_weights()
        );
        assert_eq!(model.hypergraph.num_nets(), rn.hypergraph.num_nets());
    }

    /// The volume-equality theorem (eqn (6)): for *any* split and *any*
    /// vertex bipartition, hypergraph cut == communication volume of the
    /// mapped partition of A.
    #[test]
    fn cut_equals_volume_exhaustive_small() {
        let a = Coo::new(2, 3, vec![(0, 0), (0, 1), (1, 1), (1, 2)]).unwrap();
        // All 2^4 splits × all 2^(num vertices) assignments.
        for split_mask in 0..16u32 {
            let split =
                Split::from_assignment((0..4).map(|k| (split_mask >> k) & 1 == 1).collect());
            let model = MediumGrainModel::build(&a, &split);
            let nv = model.hypergraph.num_vertices();
            for side_mask in 0..(1u32 << nv) {
                let sides: Vec<u8> = (0..nv).map(|v| ((side_mask >> v) & 1) as u8).collect();
                let cut = VertexBipartition::new(&model.hypergraph, sides.clone()).cut_weight();
                let np = model.to_nonzero_partition(&a, &sides);
                let vol = communication_volume(&a, &np);
                assert_eq!(
                    cut, vol,
                    "split {split_mask:04b}, sides {side_mask:b}, \
                     cut {cut} != volume {vol}"
                );
            }
        }
    }

    #[test]
    fn cut_equals_volume_random() {
        let mut rng = StdRng::seed_from_u64(99);
        let a = mg_sparse::gen::erdos_renyi(20, 15, 120, &mut rng);
        for _ in 0..20 {
            let split = Split::from_assignment((0..a.nnz()).map(|_| rng.gen::<bool>()).collect());
            let model = MediumGrainModel::build(&a, &split);
            let nv = model.hypergraph.num_vertices() as usize;
            let sides: Vec<u8> = (0..nv).map(|_| rng.gen_range(0..2) as u8).collect();
            let cut = VertexBipartition::new(&model.hypergraph, sides.clone()).cut_weight();
            let np = model.to_nonzero_partition(&a, &sides);
            assert_eq!(cut, communication_volume(&a, &np));
        }
    }

    #[test]
    fn sides_from_partition_round_trips() {
        let a = sample();
        // Partition by "row < 1 → part 0"; encode as split Ar←A0, Ac←A1.
        let parts: Vec<Idx> = a.iter().map(|(i, _)| (i > 0) as Idx).collect();
        let np = NonzeroPartition::new(2, parts).unwrap();
        let split = Split::from_assignment((0..a.nnz()).map(|k| np.part_of(k) == 0).collect());
        let model = MediumGrainModel::build(&a, &split);
        let sides = model.sides_from_partition(&a, &np);
        let round = model.to_nonzero_partition(&a, &sides);
        assert_eq!(round, np);
        // Encoded volume must equal the partition's volume.
        let cut = VertexBipartition::new(&model.hypergraph, sides).cut_weight();
        assert_eq!(cut, communication_volume(&a, &np));
    }

    #[test]
    fn empty_groups_get_no_vertices() {
        let a = sample();
        let model = MediumGrainModel::build(&a, &Split::all_columns(a.nnz()));
        for i in 0..a.rows() {
            assert!(model.row_vertex(i).is_none());
        }
        for j in 0..a.cols() {
            assert!(model.col_vertex(j).is_some());
        }
    }
}

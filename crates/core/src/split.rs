//! Algorithm 1: the heuristic initial split `A = Ar + Ac`.
//!
//! Every nonzero `a_ij` is assigned to either the *row group* of row `i`
//! (matrix `Ar`) or the *column group* of column `j` (matrix `Ac`). The
//! heuristic scores each row and column by its nonzero count — small
//! rows/columns are likely uncut in a good partitioning, so the smaller
//! side "wins" the nonzero:
//!
//! * `nzc(j) = 1` → the nonzero goes to `Ar` (the column is always uncut),
//! * `nzr(i) = 1` → `Ac` (symmetric case),
//! * `nzr(i) < nzc(j)` → `Ar`; `nzr(i) > nzc(j)` → `Ac`,
//! * tie → a *global* preference: rows for tall matrices (`m > n`),
//!   columns for wide ones, random for square ones.
//!
//! After the pass, the paper's post-improvement moves the lone stray
//! nonzero of any row that is otherwise entirely in `Ar` (and of any column
//! that is otherwise entirely in `Ac`) so the whole line is guaranteed
//! uncut.

use mg_sparse::{Coo, Idx};
use rand::Rng;

/// `nzr` and `nzc` in one pass over the entries instead of two — the split
/// heuristic and its post-pass both consume the pair, so Algorithm 1 end to
/// end reads the entry list once for counting rather than four times.
fn row_col_counts(a: &Coo) -> (Vec<Idx>, Vec<Idx>) {
    let mut nzr = vec![0 as Idx; a.rows() as usize];
    let mut nzc = vec![0 as Idx; a.cols() as usize];
    for &(i, j) in a.entries() {
        nzr[i as usize] += 1;
        nzc[j as usize] += 1;
    }
    (nzr, nzc)
}

/// Which side wins score ties globally (Algorithm 1, lines 2–7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalPreference {
    /// Ties go to the row group (`Ar`).
    Rows,
    /// Ties go to the column group (`Ac`).
    Columns,
}

/// The outcome of a split: one bit per nonzero (canonical COO order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// `in_row[k]` — nonzero `k` is in `Ar` (true) or `Ac` (false).
    in_row: Vec<bool>,
}

impl Split {
    /// Wraps a raw assignment (one entry per nonzero of the matrix).
    pub fn from_assignment(in_row: Vec<bool>) -> Self {
        Split { in_row }
    }

    /// `true` if nonzero `k` belongs to `Ar`.
    #[inline]
    pub fn in_row(&self, k: usize) -> bool {
        self.in_row[k]
    }

    /// The raw assignment.
    #[inline]
    pub fn assignment(&self) -> &[bool] {
        &self.in_row
    }

    /// Number of nonzeros in `Ar`.
    pub fn row_count(&self) -> usize {
        self.in_row.iter().filter(|&&r| r).count()
    }

    /// Number of nonzeros in `Ac`.
    pub fn col_count(&self) -> usize {
        self.in_row.len() - self.row_count()
    }

    /// Everything into `Ac` — the medium-grain model then degenerates to
    /// the row-net model (see §III-A of the paper).
    pub fn all_columns(nnz: usize) -> Self {
        Split {
            in_row: vec![false; nnz],
        }
    }

    /// Everything into `Ar` — degenerates to the column-net model.
    pub fn all_rows(nnz: usize) -> Self {
        Split {
            in_row: vec![true; nnz],
        }
    }
}

/// A strategy for the initial split — Algorithm 1 plus the degenerate and
/// random baselines used by the ablation experiments (§V notes that the
/// splitter "may not be the best possible choice"; the ablation quantifies
/// how much the heuristic actually buys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Algorithm 1 with the post-pass (the paper's splitter).
    Algorithm1,
    /// Everything in `Ac` — degenerates to the row-net model.
    AllColumns,
    /// Everything in `Ar` — degenerates to the column-net model.
    AllRows,
    /// Uniformly random assignment per nonzero.
    Random,
}

/// Produces a split with the requested strategy.
pub fn split_with_strategy<R: Rng>(a: &Coo, strategy: SplitStrategy, rng: &mut R) -> Split {
    match strategy {
        SplitStrategy::Algorithm1 => initial_split(a, rng),
        SplitStrategy::AllColumns => Split::all_columns(a.nnz()),
        SplitStrategy::AllRows => Split::all_rows(a.nnz()),
        SplitStrategy::Random => {
            Split::from_assignment((0..a.nnz()).map(|_| rng.gen::<bool>()).collect())
        }
    }
}

/// Algorithm 1 with the tie preference chosen from the matrix shape
/// (random for square matrices, drawn from `rng`), followed by the
/// post-improvement pass.
pub fn initial_split<R: Rng>(a: &Coo, rng: &mut R) -> Split {
    let preference = match a.rows().cmp(&a.cols()) {
        std::cmp::Ordering::Greater => GlobalPreference::Rows,
        std::cmp::Ordering::Less => GlobalPreference::Columns,
        std::cmp::Ordering::Equal => {
            if rng.gen::<bool>() {
                GlobalPreference::Rows
            } else {
                GlobalPreference::Columns
            }
        }
    };
    let (nzr, nzc) = row_col_counts(a);
    let mut split = split_with_counts(a, preference, &nzr, &nzc);
    improve_split_with_counts(a, &mut split, &nzr, &nzc);
    split
}

/// Algorithm 1 proper (lines 8–21) with an explicit tie preference and no
/// post-pass; exposed separately so tests can exercise each piece.
pub fn split_with_preference(a: &Coo, preference: GlobalPreference) -> Split {
    let (nzr, nzc) = row_col_counts(a);
    split_with_counts(a, preference, &nzr, &nzc)
}

/// Algorithm 1 proper over precomputed `nzr`/`nzc` vectors, so callers that
/// already hold the counts (the composed [`initial_split`]) avoid
/// recomputing them.
fn split_with_counts(a: &Coo, preference: GlobalPreference, nzr: &[Idx], nzc: &[Idx]) -> Split {
    let in_row = a
        .iter()
        .map(|(i, j)| {
            let r = nzr[i as usize];
            let c = nzc[j as usize];
            if c == 1 {
                true // lone column entry: the column is uncut in Ar
            } else if r == 1 {
                false // lone row entry: the row is uncut in Ac
            } else if r < c {
                true
            } else if r > c {
                false
            } else {
                preference == GlobalPreference::Rows
            }
        })
        .collect();
    Split { in_row }
}

/// The paper's post-improvement: if every nonzero of row `i` sits in `Ar`
/// except exactly one, pull that one into `Ar` too (the row is then
/// guaranteed uncut); symmetrically for columns into `Ac`. One pass over
/// rows, then one over columns.
pub fn improve_split(a: &Coo, split: &mut Split) {
    let (nzr, nzc) = row_col_counts(a);
    improve_split_with_counts(a, split, &nzr, &nzc)
}

/// The post-improvement over precomputed counts (see [`improve_split`]).
fn improve_split_with_counts(a: &Coo, split: &mut Split, nzr: &[Idx], nzc: &[Idx]) {
    let m = a.rows() as usize;
    let n = a.cols() as usize;

    // Rows: count Ac strays per row; move the stray if it is unique and the
    // row actually has other (Ar) nonzeros — a length-1 row fully in Ac is
    // already uncut and was placed there deliberately by Algorithm 1.
    let mut col_strays = vec![0u32; m];
    let mut stray_id = vec![usize::MAX; m];
    for (k, &(i, _)) in a.entries().iter().enumerate() {
        if !split.in_row[k] {
            col_strays[i as usize] += 1;
            stray_id[i as usize] = k;
        }
    }
    for i in 0..m {
        if col_strays[i] == 1 && nzr[i] >= 2 {
            split.in_row[stray_id[i]] = true;
        }
    }

    // Columns, symmetric: one stray in Ar moves to Ac.
    let mut row_strays = vec![0u32; n];
    let mut stray_col_id = vec![usize::MAX; n];
    for (k, &(_, j)) in a.entries().iter().enumerate() {
        if split.in_row[k] {
            row_strays[j as usize] += 1;
            stray_col_id[j as usize] = k;
        }
    }
    for j in 0..n {
        if row_strays[j] == 1 && nzc[j] >= 2 {
            split.in_row[stray_col_id[j]] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn singleton_column_goes_to_row_group() {
        // Column 1 has a single nonzero at (0,1); row 0 has 3 nonzeros.
        let a = Coo::new(2, 3, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 2)]).unwrap();
        let s = split_with_preference(&a, GlobalPreference::Columns);
        let k = a.find(0, 1).unwrap();
        assert!(s.in_row(k), "nzc = 1 must force Ar");
    }

    #[test]
    fn singleton_row_goes_to_column_group() {
        let a = Coo::new(3, 2, vec![(0, 0), (1, 0), (2, 0), (1, 1)]).unwrap();
        // Row 0 and row 2 have one nonzero each, in column 0 (nzc = 3).
        let s = split_with_preference(&a, GlobalPreference::Rows);
        let k0 = a.find(0, 0).unwrap();
        let k2 = a.find(2, 0).unwrap();
        assert!(!s.in_row(k0));
        assert!(!s.in_row(k2));
    }

    #[test]
    fn smaller_score_wins() {
        // Row 0: 2 nonzeros; column 0: 3 nonzeros -> (0,0) to Ar.
        let a = Coo::new(3, 3, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 2)]).unwrap();
        let s = split_with_preference(&a, GlobalPreference::Columns);
        let k = a.find(0, 0).unwrap();
        assert!(s.in_row(k), "nzr(0)=2 < nzc(0)=3 must go to Ar");
    }

    #[test]
    fn ties_follow_global_preference() {
        // 2x2 dense: all scores 2, no singletons.
        let a = Coo::new(2, 2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let sr = split_with_preference(&a, GlobalPreference::Rows);
        assert_eq!(sr.row_count(), 4);
        let sc = split_with_preference(&a, GlobalPreference::Columns);
        assert_eq!(sc.col_count(), 4);
    }

    #[test]
    fn rectangular_shape_fixes_preference() {
        // Tall matrix (m > n): ties must go to rows. Dense 3x3 would tie;
        // make a tall 4x2 dense matrix: nzr = 2, nzc = 4, so rows win by
        // score anyway; check a genuine tie via a square submatrix pattern.
        let tall = Coo::new(
            4,
            2,
            vec![
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (3, 0),
                (3, 1),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = initial_split(&tall, &mut rng);
        // nzr = 2 < nzc = 4 everywhere: everything in Ar.
        assert_eq!(s.row_count(), 8);
    }

    #[test]
    fn post_pass_pulls_lone_stray_into_row() {
        // Row 0 = 4 nonzeros; columns 0..2 dense-ish so columns win most
        // entries, then check the stray logic directly with a crafted split.
        let a = Coo::new(2, 4, vec![(0, 0), (0, 1), (0, 2), (0, 3), (1, 0)]).unwrap();
        // Hand-build: row 0 mostly Ar with one stray in Ac.
        let mut split = Split::from_assignment(vec![true, true, true, false, false]);
        improve_split(&a, &mut split);
        // (0,3) was the lone Ac entry of row 0: moved to Ar.
        assert!(split.in_row(a.find(0, 3).unwrap()));
        // (1,0): lone Ar... it was Ac already; column 0 now has zero Ar
        // strays, nothing changes.
        assert!(!split.in_row(a.find(1, 0).unwrap()));
    }

    #[test]
    fn post_pass_pulls_lone_stray_into_column() {
        let a = Coo::new(4, 2, vec![(0, 0), (1, 0), (2, 0), (3, 0), (0, 1)]).unwrap();
        // Canonical order: (0,0), (0,1), (1,0), (2,0), (3,0).
        // Column 0 mostly Ac with one stray in Ar: (3,0).
        let mut split = Split::from_assignment(vec![false, false, false, false, true]);
        improve_split(&a, &mut split);
        assert!(!split.in_row(a.find(3, 0).unwrap()));
    }

    #[test]
    fn square_matrix_uses_random_preference_deterministically() {
        let a = Coo::new(2, 2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let s1 = initial_split(&a, &mut StdRng::seed_from_u64(5));
        let s2 = initial_split(&a, &mut StdRng::seed_from_u64(5));
        assert_eq!(s1, s2);
    }

    #[test]
    fn all_rows_all_columns_helpers() {
        let s = Split::all_rows(3);
        assert_eq!(s.row_count(), 3);
        let s = Split::all_columns(3);
        assert_eq!(s.col_count(), 3);
    }

    #[test]
    fn empty_matrix_split() {
        let a = Coo::empty(3, 3);
        let mut rng = StdRng::seed_from_u64(6);
        let s = initial_split(&a, &mut rng);
        assert_eq!(s.assignment().len(), 0);
    }
}

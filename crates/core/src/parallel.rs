//! Parallel building blocks from the paper's §V.
//!
//! The paper sketches how to parallelise the medium-grain pipeline: the
//! initial split only needs each nonzero's owner to know both scores
//! `sr(i)` and `sc(j)`, so it is embarrassingly parallel once the counts
//! are known; the volume metric is a sum over independent rows/columns.
//! This module provides shared-memory versions of both, built on
//! `crossbeam` scoped threads, with *bit-identical* results to the
//! sequential implementations (verified by tests) — determinism is part of
//! the contract, since experiment reproducibility depends on it.

use crate::split::{split_with_preference, GlobalPreference, Split};
use mg_sparse::{communication_volume, Coo, Csc, Idx, NonzeroPartition};

/// Routing policy of the sharded pipeline: how many threads to use, and
/// below which nonzero count parallelism is not worth the fork/join cost.
///
/// The batched sweep engine hands every instance through this policy:
/// large matrices take the parallel split/volume kernels, small ones stay
/// on the sequential code path. Both routes are bit-identical, so the
/// policy only affects wall-clock time, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Threads available for one instance (1 = always sequential).
    pub threads: usize,
    /// Minimum nonzero count before the parallel kernels switch on.
    pub min_parallel_nnz: usize,
}

impl ShardPolicy {
    /// Default parallelism cutoff; below ~64k nonzeros the per-thread
    /// count/scan buffers dominate the work being sharded.
    pub const DEFAULT_MIN_PARALLEL_NNZ: usize = 1 << 16;

    /// Policy with the default cutoff.
    pub fn new(threads: usize) -> Self {
        ShardPolicy {
            threads: threads.max(1),
            min_parallel_nnz: Self::DEFAULT_MIN_PARALLEL_NNZ,
        }
    }

    /// The always-sequential policy.
    pub fn sequential() -> Self {
        ShardPolicy::new(1)
    }

    /// The cross-checking policy: a low threshold (1024 nonzeros) so that
    /// verification passes actually route realistic instances through the
    /// parallel kernels — an independent implementation is a stronger
    /// check than re-running the same sequential scan, and in a verify
    /// pass independence matters more than fork/join overhead.
    pub fn verification() -> Self {
        ShardPolicy {
            threads: 2,
            min_parallel_nnz: 1024,
        }
    }

    /// `Some(threads)` if an instance of `nnz` nonzeros should take the
    /// parallel route, `None` for the sequential one.
    pub fn parallelism_for(&self, nnz: usize) -> Option<usize> {
        (self.threads > 1 && nnz >= self.min_parallel_nnz).then_some(self.threads)
    }
}

/// Sharded pipeline entry point for Algorithm 1: routes through
/// [`parallel_split_with_preference`] or the sequential
/// [`split_with_preference`] according to `policy`. Bit-identical either
/// way.
pub fn sharded_split(a: &Coo, preference: GlobalPreference, policy: &ShardPolicy) -> Split {
    match policy.parallelism_for(a.nnz()) {
        Some(threads) => parallel_split_with_preference(a, preference, threads),
        None => split_with_preference(a, preference),
    }
}

/// Sharded pipeline entry point for the volume metric: routes through
/// [`parallel_communication_volume`] or the sequential
/// [`mg_sparse::communication_volume`] according to `policy`.
/// Bit-identical either way.
pub fn sharded_volume(a: &Coo, partition: &NonzeroPartition, policy: &ShardPolicy) -> u64 {
    match policy.parallelism_for(a.nnz()) {
        Some(threads) => parallel_communication_volume(a, partition, threads),
        None => communication_volume(a, partition),
    }
}

/// Evenly sized chunk ranges covering `0..len`.
fn chunks(len: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    let pieces = pieces.max(1).min(len.max(1));
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for p in 0..pieces {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Parallel Algorithm 1 (without the post-pass): identical output to
/// [`crate::split::split_with_preference`].
///
/// Phase 1 computes `nzr`/`nzc` by per-thread partial counts merged on the
/// main thread ("broadcasting score values" in the paper's distributed
/// formulation); phase 2 classifies each nonzero independently.
pub fn parallel_split_with_preference(
    a: &Coo,
    preference: GlobalPreference,
    threads: usize,
) -> Split {
    let threads = threads.max(1);
    let entries = a.entries();
    let ranges = chunks(entries.len(), threads);

    // Phase 1: sharded counting.
    let mut nzr = vec![0 as Idx; a.rows() as usize];
    let mut nzc = vec![0 as Idx; a.cols() as usize];
    let partials: Vec<(Vec<Idx>, Vec<Idx>)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .cloned()
            .map(|range| {
                scope.spawn(move |_| {
                    let mut r = vec![0 as Idx; a.rows() as usize];
                    let mut c = vec![0 as Idx; a.cols() as usize];
                    for &(i, j) in &entries[range] {
                        r[i as usize] += 1;
                        c[j as usize] += 1;
                    }
                    (r, c)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("count worker"))
            .collect()
    })
    .expect("count scope");
    for (r, c) in &partials {
        for (acc, &v) in nzr.iter_mut().zip(r) {
            *acc += v;
        }
        for (acc, &v) in nzc.iter_mut().zip(c) {
            *acc += v;
        }
    }

    // Phase 2: independent classification.
    let mut in_row = vec![false; entries.len()];
    crossbeam::scope(|scope| {
        // Split the output buffer along the same ranges so each worker
        // owns its slice exclusively.
        let mut rest: &mut [bool] = &mut in_row;
        let nzr = &nzr;
        let nzc = &nzc;
        for range in &ranges {
            let (mine, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let range = range.clone();
            scope.spawn(move |_| {
                for (slot, &(i, j)) in mine.iter_mut().zip(&entries[range]) {
                    let r = nzr[i as usize];
                    let c = nzc[j as usize];
                    *slot = if c == 1 {
                        true
                    } else if r == 1 {
                        false
                    } else if r < c {
                        true
                    } else if r > c {
                        false
                    } else {
                        preference == GlobalPreference::Rows
                    };
                }
            });
        }
    })
    .expect("classify scope");

    Split::from_assignment(in_row)
}

/// Parallel communication volume: rows and columns are independent, so the
/// two λ scans run as parallel shards over disjoint row/column blocks.
/// Identical result to [`mg_sparse::communication_volume`].
pub fn parallel_communication_volume(a: &Coo, partition: &NonzeroPartition, threads: usize) -> u64 {
    partition
        .check_against(a)
        .expect("partition matches matrix");
    let threads = threads.max(1);
    let p = partition.num_parts() as usize;

    // Row side: the canonical order is row-major, but a chunk boundary can
    // split a row; shard by *row ranges* instead, locating the entry span
    // of each row range by binary search.
    let entries = a.entries();
    let row_ranges = chunks(a.rows() as usize, threads);
    let col_ranges = chunks(a.cols() as usize, threads);
    let csc = Csc::from_coo(a);

    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for rows in row_ranges {
            let handle = scope.spawn(move |_| {
                let lo = entries.partition_point(|&(i, _)| (i as usize) < rows.start);
                let hi = entries.partition_point(|&(i, _)| (i as usize) < rows.end);
                let mut stamp = vec![Idx::MAX; p];
                let mut volume = 0u64;
                let mut current = Idx::MAX;
                let mut lambda = 0u64;
                for (k, &(i, _)) in entries.iter().enumerate().take(hi).skip(lo) {
                    if i != current {
                        volume += lambda.saturating_sub(1);
                        lambda = 0;
                        current = i;
                    }
                    let q = partition.part_of(k) as usize;
                    if stamp[q] != i {
                        stamp[q] = i;
                        lambda += 1;
                    }
                }
                volume + lambda.saturating_sub(1)
            });
            handles.push(handle);
        }
        let csc = &csc;
        for cols in col_ranges {
            let handle = scope.spawn(move |_| {
                let mut stamp = vec![Idx::MAX; p];
                let mut volume = 0u64;
                for j in cols {
                    let mut lambda = 0u64;
                    for &k in csc.col_nonzero_ids(j as Idx) {
                        let q = partition.part_of(k as usize) as usize;
                        if stamp[q] != j as Idx {
                            stamp[q] = j as Idx;
                            lambda += 1;
                        }
                    }
                    volume += lambda.saturating_sub(1);
                }
                volume
            });
            handles.push(handle);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("volume worker"))
            .sum()
    })
    .expect("volume scope")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split_with_preference;
    use mg_sparse::communication_volume;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(seed: u64) -> Coo {
        let mut rng = StdRng::seed_from_u64(seed);
        mg_sparse::gen::erdos_renyi(300, 200, 4000, &mut rng)
    }

    #[test]
    fn parallel_split_matches_sequential() {
        let a = random_matrix(1);
        for pref in [GlobalPreference::Rows, GlobalPreference::Columns] {
            let seq = split_with_preference(&a, pref);
            for threads in [1, 2, 3, 8] {
                let par = parallel_split_with_preference(&a, pref, threads);
                assert_eq!(seq, par, "threads = {threads}");
            }
        }
    }

    #[test]
    fn parallel_volume_matches_sequential() {
        let a = random_matrix(2);
        let mut rng = StdRng::seed_from_u64(3);
        for p in [2u32, 5] {
            let parts: Vec<Idx> = (0..a.nnz()).map(|_| rng.gen_range(0..p)).collect();
            let np = NonzeroPartition::new(p, parts).unwrap();
            let seq = communication_volume(&a, &np);
            for threads in [1, 2, 4, 7] {
                assert_eq!(
                    parallel_communication_volume(&a, &np, threads),
                    seq,
                    "p = {p}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 100] {
            for pieces in [1usize, 2, 3, 16] {
                let ranges = chunks(len, pieces);
                let mut covered = 0;
                let mut prev_end = 0;
                for r in &ranges {
                    assert_eq!(r.start, prev_end);
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn chunks_of_nothing_is_one_empty_range() {
        // len == 0 must not panic or divide by zero, whatever the piece
        // count; it collapses to the single range 0..0.
        for pieces in [0usize, 1, 5, 64] {
            assert_eq!(chunks(0, pieces), vec![0..0], "pieces = {pieces}");
        }
    }

    #[test]
    fn more_pieces_than_items_clamps_to_singletons() {
        // pieces > len: one item per range, never an empty range.
        let ranges = chunks(3, 8);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3]);
        assert_eq!(chunks(1, usize::MAX), vec![0..1]);
    }

    #[test]
    fn uneven_remainders_spread_over_the_leading_chunks() {
        assert_eq!(chunks(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(chunks(7, 4), vec![0..2, 2..4, 4..6, 6..7]);
        // Sizes differ by at most one, larger chunks first.
        for (len, pieces) in [(23usize, 5usize), (100, 7), (64, 16)] {
            let sizes: Vec<usize> = chunks(len, pieces).iter().map(|r| r.len()).collect();
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(max - min <= 1, "len {len}, pieces {pieces}: {sizes:?}");
            assert!(
                sizes.windows(2).all(|w| w[0] >= w[1]),
                "len {len}, pieces {pieces}: {sizes:?}"
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn chunk_ranges_exactly_tile_the_index_space(
            len in 0usize..2_000,
            pieces in 0usize..64,
        ) {
            let ranges = chunks(len, pieces);
            proptest::prop_assert!(!ranges.is_empty());
            proptest::prop_assert_eq!(ranges.len(), pieces.max(1).min(len.max(1)));
            let mut next = 0usize;
            for r in &ranges {
                proptest::prop_assert_eq!(r.start, next, "gap or overlap at {}", r.start);
                proptest::prop_assert!(r.end >= r.start);
                next = r.end;
            }
            proptest::prop_assert_eq!(next, len);
        }
    }

    #[test]
    fn sharded_split_routes_both_ways_identically() {
        let a = random_matrix(5);
        let sequential = ShardPolicy::sequential();
        let parallel = ShardPolicy {
            threads: 4,
            min_parallel_nnz: 0,
        };
        assert!(sequential.parallelism_for(a.nnz()).is_none());
        assert_eq!(parallel.parallelism_for(a.nnz()), Some(4));
        for pref in [GlobalPreference::Rows, GlobalPreference::Columns] {
            assert_eq!(
                sharded_split(&a, pref, &sequential),
                sharded_split(&a, pref, &parallel)
            );
        }
    }

    #[test]
    fn sharded_volume_routes_both_ways_identically() {
        let a = random_matrix(6);
        let mut rng = StdRng::seed_from_u64(7);
        let parts: Vec<Idx> = (0..a.nnz()).map(|_| rng.gen_range(0..3)).collect();
        let np = NonzeroPartition::new(3, parts).unwrap();
        let sequential = ShardPolicy::sequential();
        let parallel = ShardPolicy {
            threads: 4,
            min_parallel_nnz: 0,
        };
        assert_eq!(
            sharded_volume(&a, &np, &sequential),
            sharded_volume(&a, &np, &parallel)
        );
    }

    #[test]
    fn policy_threshold_keeps_small_instances_sequential() {
        let policy = ShardPolicy::new(8);
        assert_eq!(
            policy.min_parallel_nnz,
            ShardPolicy::DEFAULT_MIN_PARALLEL_NNZ
        );
        assert!(policy.parallelism_for(100).is_none());
        assert_eq!(
            policy.parallelism_for(ShardPolicy::DEFAULT_MIN_PARALLEL_NNZ),
            Some(8)
        );
        // threads are clamped to at least 1.
        assert_eq!(ShardPolicy::new(0).threads, 1);
    }

    #[test]
    fn empty_matrix_parallel_paths() {
        let a = Coo::empty(5, 5);
        let split = parallel_split_with_preference(&a, GlobalPreference::Rows, 4);
        assert_eq!(split.assignment().len(), 0);
        let np = NonzeroPartition::new(2, vec![]).unwrap();
        assert_eq!(parallel_communication_volume(&a, &np, 4), 0);
    }
}

//! Parallel building blocks from the paper's §V.
//!
//! The paper sketches how to parallelise the medium-grain pipeline: the
//! initial split only needs each nonzero's owner to know both scores
//! `sr(i)` and `sc(j)`, so it is embarrassingly parallel once the counts
//! are known; the volume metric is a sum over independent rows/columns.
//! This module provides shared-memory versions of both, built on
//! `crossbeam` scoped threads, with *bit-identical* results to the
//! sequential implementations (verified by tests) — determinism is part of
//! the contract, since experiment reproducibility depends on it.

use crate::split::{GlobalPreference, Split};
use mg_sparse::{Coo, Csc, Idx, NonzeroPartition};

/// Evenly sized chunk ranges covering `0..len`.
fn chunks(len: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    let pieces = pieces.max(1).min(len.max(1));
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for p in 0..pieces {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Parallel Algorithm 1 (without the post-pass): identical output to
/// [`crate::split::split_with_preference`].
///
/// Phase 1 computes `nzr`/`nzc` by per-thread partial counts merged on the
/// main thread ("broadcasting score values" in the paper's distributed
/// formulation); phase 2 classifies each nonzero independently.
pub fn parallel_split_with_preference(
    a: &Coo,
    preference: GlobalPreference,
    threads: usize,
) -> Split {
    let threads = threads.max(1);
    let entries = a.entries();
    let ranges = chunks(entries.len(), threads);

    // Phase 1: sharded counting.
    let mut nzr = vec![0 as Idx; a.rows() as usize];
    let mut nzc = vec![0 as Idx; a.cols() as usize];
    let partials: Vec<(Vec<Idx>, Vec<Idx>)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .cloned()
            .map(|range| {
                scope.spawn(move |_| {
                    let mut r = vec![0 as Idx; a.rows() as usize];
                    let mut c = vec![0 as Idx; a.cols() as usize];
                    for &(i, j) in &entries[range] {
                        r[i as usize] += 1;
                        c[j as usize] += 1;
                    }
                    (r, c)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("count worker"))
            .collect()
    })
    .expect("count scope");
    for (r, c) in &partials {
        for (acc, &v) in nzr.iter_mut().zip(r) {
            *acc += v;
        }
        for (acc, &v) in nzc.iter_mut().zip(c) {
            *acc += v;
        }
    }

    // Phase 2: independent classification.
    let mut in_row = vec![false; entries.len()];
    crossbeam::scope(|scope| {
        // Split the output buffer along the same ranges so each worker
        // owns its slice exclusively.
        let mut rest: &mut [bool] = &mut in_row;
        let nzr = &nzr;
        let nzc = &nzc;
        for range in &ranges {
            let (mine, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let range = range.clone();
            scope.spawn(move |_| {
                for (slot, &(i, j)) in mine.iter_mut().zip(&entries[range]) {
                    let r = nzr[i as usize];
                    let c = nzc[j as usize];
                    *slot = if c == 1 {
                        true
                    } else if r == 1 {
                        false
                    } else if r < c {
                        true
                    } else if r > c {
                        false
                    } else {
                        preference == GlobalPreference::Rows
                    };
                }
            });
        }
    })
    .expect("classify scope");

    Split::from_assignment(in_row)
}

/// Parallel communication volume: rows and columns are independent, so the
/// two λ scans run as parallel shards over disjoint row/column blocks.
/// Identical result to [`mg_sparse::communication_volume`].
pub fn parallel_communication_volume(a: &Coo, partition: &NonzeroPartition, threads: usize) -> u64 {
    partition
        .check_against(a)
        .expect("partition matches matrix");
    let threads = threads.max(1);
    let p = partition.num_parts() as usize;

    // Row side: the canonical order is row-major, but a chunk boundary can
    // split a row; shard by *row ranges* instead, locating the entry span
    // of each row range by binary search.
    let entries = a.entries();
    let row_ranges = chunks(a.rows() as usize, threads);
    let col_ranges = chunks(a.cols() as usize, threads);
    let csc = Csc::from_coo(a);

    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for rows in row_ranges {
            let handle = scope.spawn(move |_| {
                let lo = entries.partition_point(|&(i, _)| (i as usize) < rows.start);
                let hi = entries.partition_point(|&(i, _)| (i as usize) < rows.end);
                let mut stamp = vec![Idx::MAX; p];
                let mut volume = 0u64;
                let mut current = Idx::MAX;
                let mut lambda = 0u64;
                for (k, &(i, _)) in entries.iter().enumerate().take(hi).skip(lo) {
                    if i != current {
                        volume += lambda.saturating_sub(1);
                        lambda = 0;
                        current = i;
                    }
                    let q = partition.part_of(k) as usize;
                    if stamp[q] != i {
                        stamp[q] = i;
                        lambda += 1;
                    }
                }
                volume + lambda.saturating_sub(1)
            });
            handles.push(handle);
        }
        let csc = &csc;
        for cols in col_ranges {
            let handle = scope.spawn(move |_| {
                let mut stamp = vec![Idx::MAX; p];
                let mut volume = 0u64;
                for j in cols {
                    let mut lambda = 0u64;
                    for &k in csc.col_nonzero_ids(j as Idx) {
                        let q = partition.part_of(k as usize) as usize;
                        if stamp[q] != j as Idx {
                            stamp[q] = j as Idx;
                            lambda += 1;
                        }
                    }
                    volume += lambda.saturating_sub(1);
                }
                volume
            });
            handles.push(handle);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("volume worker"))
            .sum()
    })
    .expect("volume scope")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split_with_preference;
    use mg_sparse::communication_volume;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(seed: u64) -> Coo {
        let mut rng = StdRng::seed_from_u64(seed);
        mg_sparse::gen::erdos_renyi(300, 200, 4000, &mut rng)
    }

    #[test]
    fn parallel_split_matches_sequential() {
        let a = random_matrix(1);
        for pref in [GlobalPreference::Rows, GlobalPreference::Columns] {
            let seq = split_with_preference(&a, pref);
            for threads in [1, 2, 3, 8] {
                let par = parallel_split_with_preference(&a, pref, threads);
                assert_eq!(seq, par, "threads = {threads}");
            }
        }
    }

    #[test]
    fn parallel_volume_matches_sequential() {
        let a = random_matrix(2);
        let mut rng = StdRng::seed_from_u64(3);
        for p in [2u32, 5] {
            let parts: Vec<Idx> = (0..a.nnz()).map(|_| rng.gen_range(0..p)).collect();
            let np = NonzeroPartition::new(p, parts).unwrap();
            let seq = communication_volume(&a, &np);
            for threads in [1, 2, 4, 7] {
                assert_eq!(
                    parallel_communication_volume(&a, &np, threads),
                    seq,
                    "p = {p}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 100] {
            for pieces in [1usize, 2, 3, 16] {
                let ranges = chunks(len, pieces);
                let mut covered = 0;
                let mut prev_end = 0;
                for r in &ranges {
                    assert_eq!(r.start, prev_end);
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn empty_matrix_parallel_paths() {
        let a = Coo::empty(5, 5);
        let split = parallel_split_with_preference(&a, GlobalPreference::Rows, 4);
        assert_eq!(split.assignment().len(), 0);
        let np = NonzeroPartition::new(2, vec![]).unwrap();
        assert_eq!(parallel_communication_volume(&a, &np, 4), 0);
    }
}

//! Direct k-way greedy refinement of multiway nonzero partitions.
//!
//! Recursive bisection (§IV) optimises each split in isolation; once all
//! `p` parts exist, single-nonzero moves *between arbitrary parts* can
//! still reduce `Σ (λ−1)`. This pass — in the spirit of direct k-way
//! refiners like kPaToH/UMPa, and an extension beyond the paper — greedily
//! moves boundary nonzeros to the part with the best positive volume gain,
//! under the eqn (1) budget, until a sweep finds no improving move.
//!
//! The gain of moving nonzero `(i, j)` from part `q` to part `r`
//! decomposes per line:
//! `gain = [rowcnt(i,q)=1] + [colcnt(j,q)=1] − [rowcnt(i,r)=0] − [colcnt(j,r)=0]`,
//! maintained incrementally in two `(m+n)×p` count tables.

use mg_sparse::{communication_volume, Coo, Idx, NonzeroPartition};

/// Outcome of the k-way refinement pass.
#[derive(Debug, Clone)]
pub struct KwayOutcome {
    /// The refined partition (volume ≤ input volume).
    pub partition: NonzeroPartition,
    /// Volume after refinement.
    pub volume: u64,
    /// Number of nonzero moves applied.
    pub moves: u64,
    /// Number of full sweeps performed.
    pub sweeps: u32,
}

/// Greedily refines a p-way partition. `budget` caps every part's nonzero
/// count (pass `mg_sparse::part_budget(a.nnz(), p, eps)`); `max_sweeps`
/// bounds the outer loop (each sweep is `O(N · parts-per-line)`).
pub fn kway_refine(
    a: &Coo,
    partition: &NonzeroPartition,
    budget: u64,
    max_sweeps: u32,
) -> KwayOutcome {
    partition
        .check_against(a)
        .expect("partition does not match matrix");
    let p = partition.num_parts() as usize;
    let m = a.rows() as usize;
    let n = a.cols() as usize;
    let mut parts: Vec<Idx> = partition.parts().to_vec();

    // Count tables and part sizes.
    let mut row_cnt = vec![0u32; m * p];
    let mut col_cnt = vec![0u32; n * p];
    let mut sizes = vec![0u64; p];
    for (k, &(i, j)) in a.entries().iter().enumerate() {
        let q = parts[k] as usize;
        row_cnt[i as usize * p + q] += 1;
        col_cnt[j as usize * p + q] += 1;
        sizes[q] += 1;
    }

    // Candidate target parts per nonzero: the parts already present on its
    // row or column (any other target strictly increases both line λs).
    let mut moves = 0u64;
    let mut sweeps = 0u32;
    let mut scratch: Vec<Idx> = Vec::with_capacity(p);

    while sweeps < max_sweeps {
        sweeps += 1;
        let mut improved = false;
        for (k, &(i, j)) in a.entries().iter().enumerate() {
            let q = parts[k] as usize;
            let row = &row_cnt[i as usize * p..(i as usize + 1) * p];
            let col = &col_cnt[j as usize * p..(j as usize + 1) * p];

            // Loss removed by leaving q (only if (i,j) is q's last nonzero
            // on that line).
            let leave = u32::from(row[q] == 1) + u32::from(col[q] == 1);
            if leave == 0 {
                continue; // interior nonzero: no move can gain
            }
            scratch.clear();
            for (r, (&rc, &cc)) in row.iter().zip(col.iter()).enumerate() {
                if r != q && (rc > 0 || cc > 0) {
                    scratch.push(r as Idx);
                }
            }
            let mut best: Option<(i64, Idx)> = None;
            for &r in &scratch {
                let ru = r as usize;
                if sizes[ru] + 1 > budget {
                    continue;
                }
                let enter = u32::from(row[ru] == 0) + u32::from(col[ru] == 0);
                let gain = leave as i64 - enter as i64;
                if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, r));
                }
            }
            if let Some((_, r)) = best {
                let ru = r as usize;
                row_cnt[i as usize * p + q] -= 1;
                row_cnt[i as usize * p + ru] += 1;
                col_cnt[j as usize * p + q] -= 1;
                col_cnt[j as usize * p + ru] += 1;
                sizes[q] -= 1;
                sizes[ru] += 1;
                parts[k] = r;
                moves += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    let partition =
        NonzeroPartition::new(partition.num_parts(), parts).expect("parts stay within range");
    let volume = communication_volume(a, &partition);
    KwayOutcome {
        partition,
        volume,
        moves,
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::Method;
    use crate::recursive::recursive_bisection;
    use mg_partitioner::PartitionerConfig;
    use mg_sparse::part_budget;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn never_increases_volume_or_breaks_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = mg_sparse::gen::erdos_renyi(80, 80, 900, &mut rng);
        for p in [3u32, 8] {
            let parts: Vec<Idx> = (0..a.nnz()).map(|_| rng.gen_range(0..p)).collect();
            let np = NonzeroPartition::new(p, parts).unwrap();
            let before = communication_volume(&a, &np);
            let budget = part_budget(a.nnz(), p, 0.2);
            let out = kway_refine(&a, &np, budget, 16);
            assert!(out.volume <= before, "p={p}: {} > {}", out.volume, before);
            assert_eq!(out.volume, communication_volume(&a, &out.partition));
            assert!(out.partition.part_sizes().iter().all(|&s| s <= budget));
        }
    }

    #[test]
    fn random_partition_improves_substantially() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = mg_sparse::gen::laplacian_2d(20, 20);
        let parts: Vec<Idx> = (0..a.nnz()).map(|_| rng.gen_range(0..4)).collect();
        let np = NonzeroPartition::new(4, parts).unwrap();
        let before = communication_volume(&a, &np);
        let out = kway_refine(&a, &np, part_budget(a.nnz(), 4, 0.1), 32);
        assert!(
            out.volume * 2 < before,
            "random start {} barely improved to {}",
            before,
            out.volume
        );
        assert!(out.moves > 0);
    }

    #[test]
    fn improves_or_preserves_recursive_bisection_output() {
        let a = mg_sparse::gen::laplacian_3d(8, 8, 8);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(3);
        let rb = recursive_bisection(
            &a,
            8,
            0.03,
            Method::MediumGrain { refine: true },
            &cfg,
            &mut rng,
        );
        let out = kway_refine(&a, &rb.partition, part_budget(a.nnz(), 8, 0.03), 8);
        assert!(out.volume <= rb.volume);
    }

    #[test]
    fn zero_volume_partition_is_fixed_point() {
        // Block-diagonal split along blocks: nothing to improve.
        let mut entries = Vec::new();
        for b in 0..3u32 {
            for i in 0..3 {
                for j in 0..3 {
                    entries.push((3 * b + i, 3 * b + j));
                }
            }
        }
        let a = Coo::new(9, 9, entries).unwrap();
        let parts: Vec<Idx> = a.iter().map(|(i, _)| i / 3).collect();
        let np = NonzeroPartition::new(3, parts).unwrap();
        let out = kway_refine(&a, &np, part_budget(a.nnz(), 3, 0.03), 8);
        assert_eq!(out.volume, 0);
        assert_eq!(out.moves, 0);
        assert_eq!(out.partition, np);
    }

    #[test]
    fn bipartition_case_agrees_with_metric() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = mg_sparse::gen::chung_lu_symmetric(100, 900, 0.9, &mut rng);
        let parts: Vec<Idx> = (0..a.nnz()).map(|k| (k % 2) as Idx).collect();
        let np = NonzeroPartition::new(2, parts).unwrap();
        let out = kway_refine(&a, &np, part_budget(a.nnz(), 2, 0.03), 8);
        assert_eq!(out.volume, communication_volume(&a, &out.partition));
    }
}

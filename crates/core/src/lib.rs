//! # mg-core — the medium-grain method
//!
//! The paper's contribution, implemented on top of the substrates:
//!
//! * [`split`] — Algorithm 1: the heuristic initial split `A = Ar + Ac`
//!   (every nonzero joins a row group or a column group) plus the
//!   "all-but-one" post-pass;
//! * [`bmatrix`] — the composite medium-grain model: the hypergraph of the
//!   `(m+n)×(m+n)` matrix `B = [[Iₙ, (Ar)ᵀ], [Ac, Iₘ]]` of eqn (4), with
//!   dummy-only rows/columns removed, and the exact volume-preserving
//!   mapping back to nonzero partitions of `A` (eqns (5)–(6));
//! * [`medium_grain`] — the full medium-grain bipartitioner
//!   (split → hypergraph → multilevel bisection → map back);
//! * [`baselines`] — the comparison methods of §IV: row-net, column-net,
//!   localbest and fine-grain bipartitioners;
//! * [`refine`] — Algorithm 2: medium-grain iterative refinement, a cheap
//!   post-processing step applicable to *any* bipartitioning;
//! * [`methods`] — a single [`Method`] enum tying all of the above into one
//!   API (what the experiment harness sweeps over);
//! * [`backend`] — the pluggable engine seam: a [`PartitionBackend`] trait
//!   with a registry of named engines (the two multilevel presets plus a
//!   coarse-grain 1D baseline and a geometric coordinate-bisection
//!   backend), which every layer above selects by canonical name;
//! * [`recursive`] — recursive bisection to `p` parts with a per-level
//!   imbalance budget (Table II's p = 64 experiments);
//! * [`service`] — transport-agnostic request/response types of the
//!   streaming partition service (`mgpart serve`, crate `mg-server`).

pub mod backend;
pub mod baselines;
pub mod bmatrix;
pub mod full_iterative;
pub mod kway;
pub mod medium_grain;
pub mod methods;
pub mod parallel;
pub mod recursive;
pub mod refine;
pub mod service;
pub mod split;

pub use backend::{
    all_backends, backend_names, parse_backend, BackendCapabilities, Granularity, PartitionBackend,
    DEFAULT_BACKEND,
};
pub use bmatrix::MediumGrainModel;
pub use full_iterative::{medium_grain_full_iterative, FullIterativeOptions};
pub use kway::{kway_refine, KwayOutcome};
pub use medium_grain::{medium_grain_bipartition, medium_grain_bipartition_with_split};
pub use methods::{BipartitionResult, Method};
pub use parallel::{
    parallel_communication_volume, parallel_split_with_preference, sharded_split, sharded_volume,
    ShardPolicy,
};
pub use recursive::{recursive_bisection, recursive_bisection_backend, MultiwayResult};
pub use refine::{iterative_refinement, RefineOptions};
pub use service::{
    matrix_fingerprint, ErrorCode, MatrixPayload, PartitionOutcome, PartitionSpec, RequestOp,
};
pub use split::{initial_split, split_with_strategy, GlobalPreference, Split, SplitStrategy};

pub use mg_sparse::Idx;

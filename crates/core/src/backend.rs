//! Pluggable partitioner backends behind one engine seam.
//!
//! The paper's evaluation runs every [`Method`] on two multilevel engines
//! (Mondriaan's internal partitioner and PaToH). This module turns that
//! hard-coded pair into an extensible registry: a [`PartitionBackend`] is
//! any deterministic bipartitioning engine — seeded by a plain `u64`, so
//! results are a pure function of (matrix, method, targets, seed) — and
//! the registry maps canonical lowercase names onto `&'static` instances,
//! mirroring the [`Method`] name codec ([`parse_backend`] accepts the
//! same spelling liberties as [`Method::parse_name`]).
//!
//! Four backends are registered:
//!
//! * `mondriaan` / `patoh` — the existing multilevel presets
//!   ([`PartitionerConfig::preset`]), which honor the full hypergraph
//!   model of the method they are given;
//! * `coarse-grain` — a direct 1D baseline that keeps whole rows (or
//!   whole columns, whichever direction cuts less) atomic, in the spirit
//!   of Mondriaan's coarse-grain scheme: LPT-greedy assignment plus a
//!   balance repair pass, no multilevel machinery at all;
//! * `geometric` — recursive-coordinate-bisection in the style of
//!   Fagginger Auer & Bisseling's many-core partitioner (arXiv:1105.4490):
//!   nonzeros are points `(i, j)`, split by a single coordinate cut along
//!   the axis with the larger spread, snapped to a grid line when the
//!   balance budget allows.
//!
//! The non-multilevel backends interpret only the method's refine flag
//! (Algorithm 2 applies to *any* bipartitioning); their
//! [`BackendCapabilities::honors_model`] is `false`.

use crate::methods::{BipartitionResult, Method};
use crate::refine::{iterative_refinement_with_budgets, RefineOptions};
use mg_partitioner::{BisectionTargets, PartitionerConfig};
use mg_sparse::{Coo, Idx, NonzeroPartition};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The atomic unit a backend moves between parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Individual nonzeros (2D methods).
    Nonzero,
    /// Whole rows or whole columns (1D methods); balance is only
    /// achievable down to the heaviest row/column.
    RowOrColumn,
}

/// What a backend can and cannot do — consulted by callers that pick a
/// backend per request (the service) or per instance (the sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendCapabilities {
    /// Interprets the hypergraph model of the [`Method`] it is given
    /// (rn/cn/lb/fg/mg). Backends with `false` run their own algorithm
    /// and honor only the method's refine flag.
    pub honors_model: bool,
    /// Results vary with the seed. Seed-invariant backends still satisfy
    /// the determinism contract trivially.
    pub seed_sensitive: bool,
    /// Relies on the nonzero coordinates as geometry (requires an
    /// inferable embedding; for matrices, `(row, col)` always is one).
    pub uses_geometry: bool,
    /// Smallest unit assigned atomically.
    pub granularity: Granularity,
}

/// A deterministic 2-way partitioning engine.
///
/// The contract every implementation must satisfy: the returned partition
/// assigns every nonzero of `a` to exactly one of two parts, and the
/// result is a **pure function** of `(a, method, targets, seed)` — no
/// global state, no thread-count dependence, no wall clock. That is what
/// lets sweeps and the service stay byte-deterministic whatever backend a
/// cell or request selects.
pub trait PartitionBackend: Send + Sync {
    /// Canonical lowercase registry name (`mondriaan`, `coarse-grain`, …).
    fn name(&self) -> &'static str;

    /// One-line human description.
    fn description(&self) -> &'static str;

    /// What this backend can do.
    fn capabilities(&self) -> BackendCapabilities;

    /// Cost-model hook: a rough, relative estimate of the work units to
    /// bipartition `a`. Comparable *across backends* for one matrix, so a
    /// scheduler (or a future shard router) can place or order jobs by
    /// expected cost without running them.
    fn estimated_cost(&self, a: &Coo) -> u64;

    /// The multilevel engine preset backing this backend, if it is one —
    /// the seam recursive bisection and ablation benches use to reach the
    /// underlying [`PartitionerConfig`].
    fn engine_config(&self) -> Option<PartitionerConfig> {
        None
    }

    /// Bipartitions `a` with explicit (possibly uneven) nonzero targets,
    /// the primitive recursive bisection builds on. `targets.target`
    /// should sum to `a.nnz()`; implementations must not panic on
    /// inconsistent targets, but may then miss both budgets.
    fn bipartition_with_targets(
        &self,
        a: &Coo,
        method: Method,
        targets: &BisectionTargets,
        seed: u64,
    ) -> BipartitionResult;

    /// Bipartitions `a` under the standard eqn (1) constraint with
    /// parameter `epsilon`.
    fn bipartition(&self, a: &Coo, method: Method, epsilon: f64, seed: u64) -> BipartitionResult {
        let targets = BisectionTargets::even(a.nnz() as u64, epsilon);
        self.bipartition_with_targets(a, method, &targets, seed)
    }
}

impl std::fmt::Debug for dyn PartitionBackend + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionBackend")
            .field("name", &self.name())
            .finish()
    }
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

static MONDRIAAN: MultilevelBackend = MultilevelBackend {
    preset: "mondriaan",
};
static PATOH: MultilevelBackend = MultilevelBackend { preset: "patoh" };
static COARSE_GRAIN: CoarseGrainBackend = CoarseGrainBackend;
static GEOMETRIC: GeometricBackend = GeometricBackend;

/// Name of the backend used when none is requested (the paper's primary
/// engine).
pub const DEFAULT_BACKEND: &str = "mondriaan";

/// Every registered backend, in canonical registry order.
pub fn all_backends() -> [&'static dyn PartitionBackend; 4] {
    [&MONDRIAAN, &PATOH, &COARSE_GRAIN, &GEOMETRIC]
}

/// The canonical names of every registered backend, in registry order.
pub fn backend_names() -> [&'static str; 4] {
    [
        MONDRIAAN.name(),
        PATOH.name(),
        COARSE_GRAIN.name(),
        GEOMETRIC.name(),
    ]
}

/// Resolves a backend by name. Accepts the same spelling liberties as the
/// [`Method`] codec (case-insensitive; `+`/`_` normalise to `-`), and the
/// error message lists every valid name — the single lookup every layer
/// (CLI `--backend`, sweep configs, the service protocol) goes through.
pub fn parse_backend(raw: &str) -> Result<&'static dyn PartitionBackend, String> {
    let normalized: String = raw
        .trim()
        .chars()
        .map(|c| match c {
            '+' | '_' => '-',
            c => c.to_ascii_lowercase(),
        })
        .collect();
    all_backends()
        .into_iter()
        .find(|b| b.name() == normalized)
        .ok_or_else(|| {
            format!(
                "unknown backend {raw:?} (expected one of {})",
                backend_names().join(", ")
            )
        })
}

// --------------------------------------------------------------------------
// Multilevel backends (the two original engine presets)
// --------------------------------------------------------------------------

/// A backend wrapping the multilevel hypergraph bipartitioner with one of
/// the named [`PartitionerConfig`] presets.
struct MultilevelBackend {
    preset: &'static str,
}

impl PartitionBackend for MultilevelBackend {
    fn name(&self) -> &'static str {
        self.preset
    }

    fn description(&self) -> &'static str {
        match self.preset {
            "mondriaan" => "multilevel FM, Mondriaan-like preset",
            _ => "multilevel FM, PaToH-like preset",
        }
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities {
            honors_model: true,
            seed_sensitive: true,
            uses_geometry: false,
            granularity: Granularity::Nonzero,
        }
    }

    fn estimated_cost(&self, a: &Coo) -> u64 {
        // Multilevel work is roughly nnz × (candidate polish + FM passes)
        // per level; the level count is logarithmic and folded into the
        // constant.
        let config = self.engine_config().expect("registered preset");
        (a.nnz() as u64) * u64::from(config.initial_candidates + config.fm_max_passes)
    }

    fn engine_config(&self) -> Option<PartitionerConfig> {
        PartitionerConfig::preset(self.preset)
    }

    fn bipartition_with_targets(
        &self,
        a: &Coo,
        method: Method,
        targets: &BisectionTargets,
        seed: u64,
    ) -> BipartitionResult {
        let config = self.engine_config().expect("registered preset");
        let mut rng = StdRng::seed_from_u64(seed);
        method.bipartition_with_targets(a, targets, &config, &mut rng)
    }
}

// --------------------------------------------------------------------------
// Shared helpers for the direct (non-multilevel) backends
// --------------------------------------------------------------------------

/// SplitMix64 finaliser (tie-break hashing and derived-seed mixing; also
/// used by [`crate::recursive`] for per-node backend seeds).
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn empty_result(a: &Coo) -> BipartitionResult {
    BipartitionResult::from_partition(
        a,
        NonzeroPartition::new(2, Vec::new()).expect("empty partition"),
    )
}

/// Applies Algorithm 2 when the method asks for it — the half of
/// [`Method`] every backend honors, since iterative refinement applies to
/// the output of *any* bipartitioning.
fn maybe_refine(
    a: &Coo,
    result: BipartitionResult,
    method: Method,
    targets: &BisectionTargets,
) -> BipartitionResult {
    if !method.refines() {
        return result;
    }
    let refined = iterative_refinement_with_budgets(
        a,
        &result.partition,
        targets.budgets(),
        &RefineOptions::default(),
    );
    BipartitionResult {
        partition: refined.partition,
        volume: refined.volume,
        ir_iterations: refined.iterations,
    }
}

// --------------------------------------------------------------------------
// coarse-grain: direct 1D row/column baseline
// --------------------------------------------------------------------------

/// The 1D coarse-grain baseline: whole rows (or whole columns) are atomic.
///
/// For each direction the atoms are LPT-assigned toward the targets
/// (heaviest first, seeded tie-breaks) and a repair pass walks atoms from
/// an over-budget side while that strictly reduces the total violation.
/// The direction with the smaller `(violation, volume)` wins, ties going
/// to rows — the same preference order as localbest.
struct CoarseGrainBackend;

/// Assigns `weights` atoms to two sides aiming at `targets`. Returns the
/// side per atom. Deterministic in `seed` (used only for tie-breaking
/// among equal-weight atoms).
fn assign_atoms(weights: &[u64], targets: &BisectionTargets, seed: u64) -> Vec<u8> {
    let mut order: Vec<usize> = (0..weights.len()).filter(|&i| weights[i] > 0).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), splitmix(seed ^ i as u64)));

    // Normalised-load greedy: put the next atom where it leaves the
    // relative loads most even. Targets of zero (degenerate uneven splits)
    // count as one unit to keep the cross-multiplication meaningful.
    let t = [targets.target[0].max(1), targets.target[1].max(1)];
    let mut size = [0u64; 2];
    let mut side = vec![0u8; weights.len()];
    for &i in &order {
        let w = weights[i];
        let load0 = u128::from(size[0] + w) * u128::from(t[1]);
        let load1 = u128::from(size[1] + w) * u128::from(t[0]);
        let s = usize::from(load1 < load0);
        side[i] = s as u8;
        size[s] += w;
    }

    // Repair: move the lightest atoms off an over-budget side while that
    // strictly reduces the total violation.
    let budgets = targets.budgets();
    let violation = |size: &[u64; 2]| -> u64 {
        size[0].saturating_sub(budgets[0]) + size[1].saturating_sub(budgets[1])
    };
    let mut by_weight = order;
    by_weight.reverse(); // lightest first
    for _ in 0..weights.len() {
        let current = violation(&size);
        if current == 0 {
            break;
        }
        let heavy =
            usize::from(size[1].saturating_sub(budgets[1]) > size[0].saturating_sub(budgets[0]));
        let Some(&atom) = by_weight.iter().find(|&&i| side[i] as usize == heavy) else {
            break;
        };
        let w = weights[atom];
        let mut moved = size;
        moved[heavy] -= w;
        moved[1 - heavy] += w;
        if violation(&moved) >= current {
            break;
        }
        side[atom] = (1 - heavy) as u8;
        size = moved;
    }
    side
}

impl PartitionBackend for CoarseGrainBackend {
    fn name(&self) -> &'static str {
        "coarse-grain"
    }

    fn description(&self) -> &'static str {
        "direct 1D baseline, whole rows/columns atomic"
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities {
            honors_model: false,
            seed_sensitive: true,
            uses_geometry: false,
            granularity: Granularity::RowOrColumn,
        }
    }

    fn estimated_cost(&self, a: &Coo) -> u64 {
        // One counting pass, one sort over rows + cols, one scan.
        a.nnz() as u64 + u64::from(a.rows()) + u64::from(a.cols())
    }

    fn bipartition_with_targets(
        &self,
        a: &Coo,
        method: Method,
        targets: &BisectionTargets,
        seed: u64,
    ) -> BipartitionResult {
        if a.nnz() == 0 {
            return empty_result(a);
        }
        let row_weights: Vec<u64> = a.row_counts().iter().map(|&c| c as u64).collect();
        let col_weights: Vec<u64> = a.col_counts().iter().map(|&c| c as u64).collect();
        let by_rows = assign_atoms(&row_weights, targets, seed);
        let by_cols = assign_atoms(&col_weights, targets, splitmix(seed ^ 0xC01));

        let project = |sides: &[u8], use_rows: bool| -> BipartitionResult {
            let parts: Vec<Idx> = a
                .iter()
                .map(|(i, j)| Idx::from(sides[if use_rows { i } else { j } as usize]))
                .collect();
            BipartitionResult::from_partition(
                a,
                NonzeroPartition::new(2, parts).expect("sides are 0/1"),
            )
        };
        let rows = project(&by_rows, true);
        let cols = project(&by_cols, false);

        let budgets = targets.budgets();
        let violation = |r: &BipartitionResult| -> u64 {
            r.partition
                .part_sizes()
                .iter()
                .zip(budgets.iter())
                .map(|(&s, &b)| s.saturating_sub(b))
                .sum()
        };
        let best = if (violation(&rows), rows.volume) <= (violation(&cols), cols.volume) {
            rows
        } else {
            cols
        };
        maybe_refine(a, best, method, targets)
    }
}

// --------------------------------------------------------------------------
// geometric: recursive coordinate bisection
// --------------------------------------------------------------------------

/// Coordinate bisection on the nonzero positions, per arXiv:1105.4490:
/// each nonzero is the point `(i, j)`; one cut along the axis with the
/// larger coordinate spread splits the sorted point list at the balance
/// target, snapped to the nearest grid-line boundary the budget allows
/// (cutting *between* distinct coordinates keeps that line's row or
/// column whole, which is exactly what kills volume).
struct GeometricBackend;

impl PartitionBackend for GeometricBackend {
    fn name(&self) -> &'static str {
        "geometric"
    }

    fn description(&self) -> &'static str {
        "coordinate bisection on nonzero positions"
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities {
            honors_model: false,
            seed_sensitive: false,
            uses_geometry: true,
            granularity: Granularity::Nonzero,
        }
    }

    fn estimated_cost(&self, a: &Coo) -> u64 {
        // One sort of the nonzeros.
        let n = a.nnz() as u64;
        n * (64 - n.leading_zeros() as u64).max(1)
    }

    fn bipartition_with_targets(
        &self,
        a: &Coo,
        method: Method,
        targets: &BisectionTargets,
        _seed: u64,
    ) -> BipartitionResult {
        let nnz = a.nnz();
        if nnz == 0 {
            return empty_result(a);
        }
        // Axis with the larger spread of occupied coordinates.
        let (mut min_i, mut max_i, mut min_j, mut max_j) = (Idx::MAX, 0, Idx::MAX, 0);
        for (i, j) in a.iter() {
            min_i = min_i.min(i);
            max_i = max_i.max(i);
            min_j = min_j.min(j);
            max_j = max_j.max(j);
        }
        let split_rows = (max_i - min_i) >= (max_j - min_j);

        let mut order: Vec<u32> = (0..nnz as u32).collect();
        if !split_rows {
            order.sort_by_key(|&k| {
                let (i, j) = a.entry(k as usize);
                (j, i)
            });
        }
        let coord = |k: u32| -> Idx {
            let (i, j) = a.entry(k as usize);
            if split_rows {
                i
            } else {
                j
            }
        };

        // Feasible window for the cut position, and the balance target.
        // When the targets sum to nnz (every in-tree caller), lo <= hi
        // because each budget covers its target; inconsistent targets
        // from an external caller collapse the window to the nearest
        // feasible point instead of panicking in `clamp`.
        let budgets = targets.budgets();
        let lo = (nnz as u64).saturating_sub(budgets[1]) as usize;
        let hi = (budgets[0].min(nnz as u64)) as usize;
        let lo = lo.min(hi);
        let t0 = (targets.target[0] as usize).clamp(lo, hi);

        // Snap to the grid-line boundary nearest the target, if any lies
        // inside the window; otherwise cut mid-line at the target itself.
        let mut split = t0;
        let mut best_distance = usize::MAX;
        for p in lo.max(1)..=hi.min(nnz.saturating_sub(1)) {
            if coord(order[p - 1]) != coord(order[p]) {
                let distance = p.abs_diff(t0);
                if distance < best_distance {
                    best_distance = distance;
                    split = p;
                }
            }
        }

        let mut parts = vec![0 as Idx; nnz];
        for (pos, &k) in order.iter().enumerate() {
            parts[k as usize] = Idx::from(pos >= split);
        }
        let result = BipartitionResult::from_partition(
            a,
            NonzeroPartition::new(2, parts).expect("sides are 0/1"),
        );
        maybe_refine(a, result, method, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sparse::{communication_volume, load_imbalance};

    #[test]
    fn registry_names_are_canonical_and_unique() {
        let names = backend_names();
        assert_eq!(names.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for (backend, name) in all_backends().iter().zip(names) {
            assert_eq!(backend.name(), name);
            assert!(seen.insert(name), "duplicate backend name {name}");
            // Canonical: lowercase, '-' separated — exactly what
            // parse_backend normalises to.
            assert_eq!(
                name,
                name.to_ascii_lowercase().replace(['+', '_'], "-"),
                "{name} is not canonical"
            );
        }
        assert!(seen.contains(DEFAULT_BACKEND));
        assert_eq!(
            parse_backend(DEFAULT_BACKEND).unwrap().name(),
            DEFAULT_BACKEND
        );
    }

    #[test]
    fn parse_backend_round_trips_and_normalises() {
        for backend in all_backends() {
            let name = backend.name();
            assert_eq!(parse_backend(name).unwrap().name(), name);
            assert_eq!(
                parse_backend(&name.to_ascii_uppercase()).unwrap().name(),
                name
            );
            assert_eq!(parse_backend(&name.replace('-', "_")).unwrap().name(), name);
        }
        let err = parse_backend("hmetis").unwrap_err();
        assert!(err.contains("coarse-grain"), "error lists names: {err}");
        assert!(parse_backend("").is_err());
    }

    #[test]
    fn multilevel_backends_expose_their_presets() {
        assert_eq!(
            parse_backend("mondriaan")
                .unwrap()
                .engine_config()
                .unwrap()
                .coarsest_vertices,
            PartitionerConfig::mondriaan_like().coarsest_vertices
        );
        assert!(parse_backend("patoh").unwrap().engine_config().is_some());
        assert!(parse_backend("coarse-grain")
            .unwrap()
            .engine_config()
            .is_none());
        assert!(parse_backend("geometric")
            .unwrap()
            .engine_config()
            .is_none());
    }

    #[test]
    fn mondriaan_backend_matches_the_direct_method_call() {
        let a = mg_sparse::gen::laplacian_2d(12, 12);
        let via_backend = parse_backend("mondriaan").unwrap().bipartition(
            &a,
            Method::MediumGrain { refine: true },
            0.03,
            42,
        );
        let mut rng = StdRng::seed_from_u64(42);
        let direct = Method::MediumGrain { refine: true }.bipartition(
            &a,
            0.03,
            &PartitionerConfig::mondriaan_like(),
            &mut rng,
        );
        assert_eq!(via_backend.volume, direct.volume);
        assert_eq!(via_backend.partition.parts(), direct.partition.parts());
    }

    #[test]
    fn every_backend_partitions_a_laplacian_validly() {
        let a = mg_sparse::gen::laplacian_2d(12, 12);
        for backend in all_backends() {
            for method in [
                Method::MediumGrain { refine: false },
                Method::MediumGrain { refine: true },
            ] {
                let r = backend.bipartition(&a, method, 0.03, 7);
                r.partition
                    .check_against(&a)
                    .unwrap_or_else(|e| panic!("{}: invalid partition: {e:?}", backend.name()));
                assert_eq!(
                    r.volume,
                    communication_volume(&a, &r.partition),
                    "{} reported a stale volume",
                    backend.name()
                );
                assert!(
                    load_imbalance(&r.partition) <= 0.03 + 1e-9,
                    "{} violated balance: {}",
                    backend.name(),
                    load_imbalance(&r.partition)
                );
            }
        }
    }

    #[test]
    fn every_backend_is_deterministic_in_its_seed() {
        let a = mg_sparse::gen::laplacian_2d(10, 14);
        for backend in all_backends() {
            let m = Method::MediumGrain { refine: false };
            let x = backend.bipartition(&a, m, 0.03, 99);
            let y = backend.bipartition(&a, m, 0.03, 99);
            assert_eq!(
                x.partition.parts(),
                y.partition.parts(),
                "{} is not a pure function of its seed",
                backend.name()
            );
        }
    }

    #[test]
    fn refine_flag_never_hurts_any_backend() {
        let a = mg_sparse::gen::laplacian_2d(16, 8);
        for backend in all_backends() {
            let plain = backend.bipartition(&a, Method::MediumGrain { refine: false }, 0.03, 5);
            let refined = backend.bipartition(&a, Method::MediumGrain { refine: true }, 0.03, 5);
            assert!(
                refined.volume <= plain.volume,
                "{}: IR worsened {} -> {}",
                backend.name(),
                plain.volume,
                refined.volume
            );
        }
    }

    #[test]
    fn coarse_grain_keeps_one_direction_whole() {
        let a = mg_sparse::gen::laplacian_2d(12, 12);
        let r = parse_backend("coarse-grain").unwrap().bipartition(
            &a,
            Method::MediumGrain { refine: false },
            0.03,
            3,
        );
        let rl = mg_sparse::row_lambdas(&a, &r.partition);
        let cl = mg_sparse::col_lambdas(&a, &r.partition);
        assert!(
            rl.iter().all(|&l| l <= 1) || cl.iter().all(|&l| l <= 1),
            "coarse-grain split both rows and columns"
        );
    }

    #[test]
    fn geometric_backend_is_balanced_and_cheap_on_a_grid() {
        let a = mg_sparse::gen::laplacian_2d(20, 20);
        let r = parse_backend("geometric").unwrap().bipartition(
            &a,
            Method::MediumGrain { refine: false },
            0.03,
            0,
        );
        r.partition.check_against(&a).unwrap();
        assert!(load_imbalance(&r.partition) <= 0.03 + 1e-9);
        // A coordinate cut through a 20×20 Laplacian severs O(k) rows.
        assert!(
            r.volume <= 64,
            "geometric cut unexpectedly bad: {}",
            r.volume
        );
    }

    #[test]
    fn backends_handle_empty_and_singleton_matrices() {
        let empty = Coo::empty(4, 4);
        let single = Coo::new(3, 3, vec![(1, 2)]).unwrap();
        for backend in all_backends() {
            for method in [
                Method::MediumGrain { refine: false },
                Method::MediumGrain { refine: true },
            ] {
                let r = backend.bipartition(&empty, method, 0.03, 1);
                assert_eq!(r.volume, 0, "{}", backend.name());
                assert_eq!(r.partition.parts().len(), 0, "{}", backend.name());
                let r = backend.bipartition(&single, method, 0.03, 1);
                assert_eq!(r.volume, 0, "{}", backend.name());
                r.partition.check_against(&single).unwrap();
            }
        }
    }

    #[test]
    fn capabilities_distinguish_the_backend_families() {
        assert!(
            parse_backend("mondriaan")
                .unwrap()
                .capabilities()
                .honors_model
        );
        assert!(parse_backend("patoh").unwrap().capabilities().honors_model);
        let coarse = parse_backend("coarse-grain").unwrap().capabilities();
        assert!(!coarse.honors_model);
        assert_eq!(coarse.granularity, Granularity::RowOrColumn);
        let geo = parse_backend("geometric").unwrap().capabilities();
        assert!(geo.uses_geometry);
        assert!(!geo.seed_sensitive);
        assert_eq!(geo.granularity, Granularity::Nonzero);
    }

    #[test]
    fn estimated_costs_rank_direct_backends_below_multilevel() {
        let a = mg_sparse::gen::laplacian_2d(16, 16);
        let multilevel = parse_backend("mondriaan").unwrap().estimated_cost(&a);
        for cheap in ["coarse-grain", "geometric"] {
            let cost = parse_backend(cheap).unwrap().estimated_cost(&a);
            assert!(cost > 0);
            assert!(
                cost < multilevel,
                "{cheap} should be estimated cheaper than multilevel ({cost} vs {multilevel})"
            );
        }
    }

    #[test]
    fn inconsistent_targets_do_not_panic_any_backend() {
        // targets summing to less than nnz violate the documented
        // contract; backends must still return a valid partition.
        let a = mg_sparse::gen::laplacian_2d(6, 6);
        let bad = BisectionTargets {
            target: [2, 2],
            epsilon: 0.0,
        };
        for backend in all_backends() {
            let r = backend.bipartition_with_targets(
                &a,
                Method::MediumGrain { refine: false },
                &bad,
                1,
            );
            r.partition
                .check_against(&a)
                .unwrap_or_else(|e| panic!("{}: {e:?}", backend.name()));
        }
    }

    #[test]
    fn uneven_targets_are_respected_by_direct_backends() {
        let a = mg_sparse::gen::laplacian_2d(14, 14);
        let nnz = a.nnz() as u64;
        let target0 = nnz * 3 / 4;
        let targets = BisectionTargets {
            target: [target0, nnz - target0],
            epsilon: 0.1,
        };
        let budgets = targets.budgets();
        for name in ["geometric", "coarse-grain"] {
            let r = parse_backend(name).unwrap().bipartition_with_targets(
                &a,
                Method::MediumGrain { refine: false },
                &targets,
                11,
            );
            let sizes = r.partition.part_sizes();
            assert!(
                sizes[0] <= budgets[0] && sizes[1] <= budgets[1],
                "{name}: sizes {sizes:?} exceed budgets {budgets:?}"
            );
        }
    }
}

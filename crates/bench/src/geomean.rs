//! Normalised geometric means (the paper's Tables I and II).
//!
//! For every matrix, each method's value (volume, time, BSP cost) is
//! normalised by the baseline method's value on the same matrix; the table
//! entry is the geometric mean of those ratios over the matrix set. A value
//! of 0.73 for MG+IR volume therefore reads "27% lower volume than
//! localbest on average", matching the paper's phrasing.

/// Geometric mean of positive values; ignores non-positive entries (a
/// ratio can be 0 when a method finds a perfect partition — including it
/// would zero the whole mean, so such pairs are skipped like the paper's
/// zero-volume matrices).
pub fn geometric_mean(values: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for &v in values {
        if v > 0.0 && v.is_finite() {
            sum += v.ln();
            count += 1;
        }
    }
    if count == 0 {
        f64::NAN
    } else {
        (sum / count as f64).exp()
    }
}

/// A rendered geomean table: one row label per group (matrix class), one
/// column per method.
#[derive(Debug, Clone)]
pub struct GeomeanTable {
    /// Column (method) labels.
    pub methods: Vec<String>,
    /// Row (group) labels.
    pub rows: Vec<String>,
    /// `cells[r][m]` — normalised geomean of method `m` on group `r`.
    pub cells: Vec<Vec<f64>>,
}

/// Builds a normalised geomean table.
///
/// `values[m][c]` is method `m`'s value on case `c`; `groups[c]` names the
/// row of case `c` (a row named `All` aggregating every case is appended);
/// `baseline` indexes the normalising method. Cases where the baseline
/// value is ≤ 0 are skipped.
pub fn normalized_geomean_table(
    methods: &[String],
    values: &[Vec<f64>],
    groups: &[String],
    row_order: &[String],
    baseline: usize,
) -> GeomeanTable {
    let num_cases = groups.len();
    for v in values {
        assert_eq!(v.len(), num_cases, "ragged value matrix");
    }
    let mut rows: Vec<String> = row_order.to_vec();
    rows.push("All".to_string());

    let mut cells = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut row_cells = Vec::with_capacity(methods.len());
        for m in 0..methods.len() {
            let ratios: Vec<f64> = (0..num_cases)
                .filter(|&c| (row == "All" || &groups[c] == row) && values[baseline][c] > 0.0)
                .map(|c| values[m][c] / values[baseline][c])
                .collect();
            row_cells.push(geometric_mean(&ratios));
        }
        cells.push(row_cells);
    }
    GeomeanTable {
        methods: methods.to_vec(),
        rows,
        cells,
    }
}

impl GeomeanTable {
    /// Renders as an aligned text table with the per-row minimum marked `*`
    /// (the paper bold-faces the best entry of each row).
    pub fn render(&self, title: &str) -> String {
        let mut out = format!("{title}\n");
        out.push_str(&format!("{:>6}", ""));
        for m in &self.methods {
            out.push_str(&format!("{m:>9}"));
        }
        out.push('\n');
        for (r, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("{row:>6}"));
            let min = self.cells[r]
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .fold(f64::INFINITY, f64::min);
            for &v in &self.cells[r] {
                if v.is_finite() && (v - min).abs() < 5e-3 {
                    out.push_str(&format!("{:>8.2}*", v));
                } else {
                    out.push_str(&format!("{v:>9.2}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// CSV form: `group, method1, ...`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("group");
        for m in &self.methods {
            out.push(',');
            out.push_str(m);
        }
        out.push('\n');
        for (r, row) in self.rows.iter().enumerate() {
            out.push_str(row);
            for &v in &self.cells[r] {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }

    /// Looks up a cell by row and method label.
    pub fn cell(&self, row: &str, method: &str) -> Option<f64> {
        let r = self.rows.iter().position(|x| x == row)?;
        let m = self.methods.iter().position(|x| x == method)?;
        Some(self.cells[r][m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
        // Non-positive entries skipped.
        assert!((geometric_mean(&[0.0, 8.0, 2.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_column_is_one() {
        let methods = s(&["LB", "MG"]);
        let values = vec![vec![10.0, 20.0, 30.0], vec![5.0, 20.0, 15.0]];
        let groups = s(&["Sym", "Sym", "Rec"]);
        let t = normalized_geomean_table(&methods, &values, &groups, &s(&["Rec", "Sym"]), 0);
        assert!((t.cell("All", "LB").unwrap() - 1.0).abs() < 1e-12);
        // MG: ratios 0.5, 1.0, 0.5 → geomean = (0.25)^(1/3).
        let expected = 0.25f64.powf(1.0 / 3.0);
        assert!((t.cell("All", "MG").unwrap() - expected).abs() < 1e-9);
        // Per-group rows.
        assert!((t.cell("Rec", "MG").unwrap() - 0.5).abs() < 1e-12);
        let sym_expected = 0.5f64.sqrt();
        assert!((t.cell("Sym", "MG").unwrap() - sym_expected).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_cases_are_skipped() {
        let methods = s(&["LB", "MG"]);
        let values = vec![vec![0.0, 10.0], vec![3.0, 5.0]];
        let groups = s(&["Sym", "Sym"]);
        let t = normalized_geomean_table(&methods, &values, &groups, &s(&["Sym"]), 0);
        assert!((t.cell("Sym", "MG").unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn render_and_csv_contain_labels() {
        let methods = s(&["LB", "MG"]);
        let values = vec![vec![10.0], vec![5.0]];
        let groups = s(&["Rec"]);
        let t = normalized_geomean_table(&methods, &values, &groups, &s(&["Rec"]), 0);
        let txt = t.render("Table I");
        assert!(txt.contains("Table I"));
        assert!(txt.contains("LB"));
        let csv = t.to_csv();
        assert!(csv.starts_with("group,LB,MG"));
    }
}

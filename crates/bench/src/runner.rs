//! The parallel experiment runner.
//!
//! Runs every method of the paper's comparison over a (synthetic)
//! collection, averaging communication volume and wall-clock partitioning
//! time over several runs, exactly like §IV ("the average communication
//! volume and partitioning time of 10 runs"). Both sweeps are thin views
//! over the batched engine of [`crate::batch`]: cells are scheduled on
//! the work-stealing pool and seeded from stable key hashes, so records
//! are identical for every thread count.

use crate::batch::{run_batch_sweep, BatchSweepConfig, SweepError};
use mg_collection::batch::{expand_jobs, run_jobs, run_seed};
use mg_collection::worker_count;
use mg_collection::{generate, CollectionSpec};
use mg_core::{parse_backend, recursive_bisection_backend, Method, ShardPolicy};
use mg_sparse::{bsp_cost, Idx, MatrixClass};
use std::time::Instant;

/// Configuration of a sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Which collection to run on.
    pub collection: CollectionSpec,
    /// Load-imbalance parameter ε (the paper uses 0.03).
    pub epsilon: f64,
    /// Runs per (matrix, method); results are averaged.
    pub runs: u32,
    /// Master seed for the partitioning RNG streams.
    pub seed: u64,
    /// Canonical backend name (the [`mg_core::backend`] registry).
    pub backend: String,
    /// Methods to compare.
    pub methods: Vec<Method>,
    /// Worker threads; 0 = one per available core.
    pub threads: usize,
}

impl SweepConfig {
    /// The paper's standard sweep: six methods, ε = 0.03, given backend.
    pub fn paper(collection: CollectionSpec, backend: &str, runs: u32) -> Self {
        SweepConfig {
            collection,
            epsilon: 0.03,
            runs,
            seed: 0xB15EC7,
            backend: backend.to_string(),
            methods: Method::paper_set().to_vec(),
            threads: 0,
        }
    }
}

/// One (matrix, method) measurement for p = 2.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Matrix name.
    pub matrix: String,
    /// Matrix class (paper's three-way split).
    pub class: MatrixClass,
    /// Matrix nonzero count.
    pub nnz: usize,
    /// Method label (`LB`, `MG+IR`, …).
    pub method: String,
    /// Mean communication volume over the runs.
    pub volume_avg: f64,
    /// Mean wall-clock partitioning time in seconds.
    pub time_avg_s: f64,
    /// Number of runs averaged.
    pub runs: u32,
}

/// One (matrix, method) measurement for p-way recursive bisection.
#[derive(Debug, Clone)]
pub struct MultiwayRecord {
    /// Matrix name.
    pub matrix: String,
    /// Matrix class.
    pub class: MatrixClass,
    /// Method label.
    pub method: String,
    /// Number of parts.
    pub p: Idx,
    /// Mean communication volume.
    pub volume_avg: f64,
    /// Mean BSP cost (fan-out + fan-in h-relations).
    pub bsp_cost_avg: f64,
    /// Mean wall-clock time in seconds.
    pub time_avg_s: f64,
}

/// Projects batch records onto the [`RunRecord`] view the profile and
/// geomean layers consume (drops the ε/seed/imbalance fields), sorted by
/// matrix name then method label.
///
/// The projection is only meaningful for a single-ε sweep — `RunRecord`
/// has no ε field, so records from different ε values would collapse
/// into duplicate (matrix, method) cells and silently corrupt the
/// profiles downstream. Multi-ε input therefore panics; split the
/// records by ε first.
pub fn batch_to_run_records(records: Vec<crate::batch::BatchRecord>) -> Vec<RunRecord> {
    if let Some(first) = records.first() {
        assert!(
            records.iter().all(|r| r.epsilon == first.epsilon),
            "batch_to_run_records projects a single-epsilon sweep; \
             partition multi-epsilon records by epsilon first"
        );
    }
    let mut out: Vec<RunRecord> = records
        .into_iter()
        .map(|r| RunRecord {
            matrix: r.matrix,
            class: r.class,
            nnz: r.nnz,
            method: r.method,
            volume_avg: r.volume_avg,
            time_avg_s: r.time_avg_s,
            runs: r.runs,
        })
        .collect();
    out.sort_by(|a, b| (a.matrix.as_str(), a.method.as_str()).cmp(&(&b.matrix, &b.method)));
    out
}

/// Runs the p = 2 sweep, returning one record per (matrix, method), sorted
/// by matrix name then method label. A thin view over
/// [`crate::batch::run_batch_sweep`] with a single-ε axis.
pub fn run_sweep(config: &SweepConfig) -> Result<Vec<RunRecord>, SweepError> {
    let batch = BatchSweepConfig {
        collection: config.collection.clone(),
        matrices: None,
        methods: config.methods.clone(),
        epsilons: vec![config.epsilon],
        runs: config.runs,
        seed: config.seed,
        backend: config.backend.clone(),
        threads: config.threads,
        policy: ShardPolicy::sequential(),
        verify: false,
    };
    Ok(batch_to_run_records(run_batch_sweep(&batch)?))
}

/// Runs the p-way sweep (recursive bisection), additionally measuring the
/// BSP cost of each partitioning (Table II). Cells are scheduled on the
/// same work-stealing pool as the p = 2 sweep; `p` is folded into the
/// master seed so the p = 2 and p = 64 campaigns draw independent
/// streams.
pub fn run_multiway_sweep(config: &SweepConfig, p: Idx) -> Result<Vec<MultiwayRecord>, SweepError> {
    let backend = parse_backend(&config.backend).map_err(SweepError::UnknownBackend)?;
    let entries = generate(&config.collection);
    let names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
    let labels: Vec<String> = config
        .methods
        .iter()
        .map(|m| m.label().to_string())
        .collect();
    let master = config.seed ^ (u64::from(p) << 32) ^ 0x4D57_4159; // "MWAY"
    let jobs = expand_jobs(backend.name(), &names, &labels, &[config.epsilon], master);
    if jobs.is_empty() {
        return Err(SweepError::EmptySweep {
            matrices: names.len(),
            methods: labels.len(),
            epsilons: 1,
        });
    }
    let runs = config.runs.max(1);

    let mut out: Vec<MultiwayRecord> = run_jobs(&jobs, worker_count(config.threads), |job| {
        let entry = &entries[job.matrix_index];
        let method = config.methods[job.method_index];
        let mut volume_sum = 0.0;
        let mut cost_sum = 0.0;
        let mut time_sum = 0.0;
        for run in 0..runs {
            let start = Instant::now();
            let result = recursive_bisection_backend(
                &entry.matrix,
                p,
                job.epsilon,
                method,
                backend,
                run_seed(job, run),
            );
            time_sum += start.elapsed().as_secs_f64();
            volume_sum += result.volume as f64;
            cost_sum += bsp_cost(&entry.matrix, &result.partition).total() as f64;
        }
        MultiwayRecord {
            matrix: entry.name.clone(),
            class: entry.class,
            method: job.method.clone(),
            p,
            volume_avg: volume_sum / runs as f64,
            bsp_cost_avg: cost_sum / runs as f64,
            time_avg_s: time_sum / runs as f64,
        }
    });
    out.sort_by(|a, b| (a.matrix.as_str(), a.method.as_str()).cmp(&(&b.matrix, &b.method)));
    Ok(out)
}

/// The paper's column order for method labels; unknown labels sort last,
/// alphabetically.
pub fn method_order_key(label: &str) -> (usize, String) {
    const ORDER: [&str; 10] = [
        "LB", "LB+IR", "MG", "MG+IR", "FG", "FG+IR", "RN", "RN+IR", "CN", "CN+IR",
    ];
    let rank = ORDER
        .iter()
        .position(|&x| x == label)
        .unwrap_or(ORDER.len());
    (rank, label.to_string())
}

/// Reshapes records into the method × case value matrices the profile and
/// geomean code consume. Returns (method labels in the paper's column
/// order, per-method values, per-case group labels), with cases ordered by
/// first appearance.
pub fn pivot_records<'a>(
    records: &'a [RunRecord],
    value: impl Fn(&RunRecord) -> f64,
) -> (Vec<String>, Vec<Vec<f64>>, Vec<String>) {
    let mut methods: Vec<String> = Vec::new();
    let mut matrices: Vec<&'a str> = Vec::new();
    for r in records {
        if !methods.contains(&r.method) {
            methods.push(r.method.clone());
        }
        if !matrices.contains(&r.matrix.as_str()) {
            matrices.push(&r.matrix);
        }
    }
    methods.sort_by_key(|m| method_order_key(m));
    let mut values = vec![vec![f64::INFINITY; matrices.len()]; methods.len()];
    let mut groups = vec![String::new(); matrices.len()];
    for r in records {
        let m = methods.iter().position(|x| *x == r.method).expect("known");
        let c = matrices.iter().position(|x| *x == r.matrix).expect("known");
        values[m][c] = value(r);
        groups[c] = class_label(r.class).to_string();
    }
    (methods, values, groups)
}

/// The paper's row labels for classes.
pub fn class_label(class: MatrixClass) -> &'static str {
    match class {
        MatrixClass::Rectangular => "Rec",
        MatrixClass::Symmetric => "Sym",
        MatrixClass::SquareNonSymmetric => "Sqr",
    }
}

/// CSV serialisation of p = 2 records.
pub fn records_to_csv(records: &[RunRecord]) -> String {
    let mut out = String::from("matrix,class,nnz,method,volume_avg,time_avg_s,runs\n");
    for r in records {
        out.push_str(&format!(
            "{},{},{},{},{:.3},{:.6},{}\n",
            r.matrix,
            class_label(r.class),
            r.nnz,
            r.method,
            r.volume_avg,
            r.time_avg_s,
            r.runs
        ));
    }
    out
}

/// CSV serialisation of multiway records.
pub fn multiway_to_csv(records: &[MultiwayRecord]) -> String {
    let mut out = String::from("matrix,class,method,p,volume_avg,bsp_cost_avg,time_avg_s\n");
    for r in records {
        out.push_str(&format!(
            "{},{},{},{},{:.3},{:.3},{:.6}\n",
            r.matrix,
            class_label(r.class),
            r.method,
            r.p,
            r.volume_avg,
            r.bsp_cost_avg,
            r.time_avg_s
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_collection::CollectionScale;

    fn tiny_config() -> SweepConfig {
        let mut cfg = SweepConfig::paper(
            CollectionSpec {
                seed: 7,
                scale: CollectionScale::Smoke,
            },
            "mondriaan",
            1,
        );
        cfg.methods = vec![
            Method::LocalBest { refine: false },
            Method::MediumGrain { refine: true },
        ];
        cfg
    }

    #[test]
    fn sweep_covers_every_matrix_and_method() {
        let cfg = tiny_config();
        let records = run_sweep(&cfg).unwrap();
        let entries = generate(&cfg.collection);
        assert_eq!(records.len(), entries.len() * cfg.methods.len());
        for r in &records {
            assert!(r.time_avg_s >= 0.0);
            assert!(r.volume_avg >= 0.0);
        }
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let mut cfg = tiny_config();
        cfg.threads = 1;
        let one = run_sweep(&cfg).unwrap();
        cfg.threads = 4;
        let four = run_sweep(&cfg).unwrap();
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.matrix, b.matrix);
            assert_eq!(a.method, b.method);
            assert_eq!(a.volume_avg, b.volume_avg, "{} {}", a.matrix, a.method);
        }
    }

    #[test]
    #[should_panic(expected = "single-epsilon")]
    fn multi_epsilon_records_are_rejected_by_the_projection() {
        let mut cfg = crate::batch::BatchSweepConfig::paper(
            CollectionSpec {
                seed: 7,
                scale: CollectionScale::Smoke,
            },
            "mondriaan",
            1,
        );
        cfg.methods = vec![Method::LocalBest { refine: false }];
        cfg.epsilons = vec![0.03, 0.1];
        let records = crate::batch::run_batch_sweep(&cfg).unwrap();
        let _ = batch_to_run_records(records);
    }

    #[test]
    fn multiway_sweep_is_deterministic_across_thread_counts() {
        let mut cfg = tiny_config();
        cfg.threads = 1;
        let one = run_multiway_sweep(&cfg, 4).unwrap();
        cfg.threads = 3;
        let three = run_multiway_sweep(&cfg, 4).unwrap();
        assert_eq!(one.len(), three.len());
        for (a, b) in one.iter().zip(&three) {
            assert_eq!(a.matrix, b.matrix);
            assert_eq!(a.method, b.method);
            assert_eq!(a.volume_avg, b.volume_avg, "{} {}", a.matrix, a.method);
            assert_eq!(a.bsp_cost_avg, b.bsp_cost_avg, "{} {}", a.matrix, a.method);
        }
    }

    #[test]
    fn multiway_sweep_rejects_unknown_backends() {
        let mut cfg = tiny_config();
        cfg.backend = "zoltan".to_string();
        assert!(matches!(
            run_multiway_sweep(&cfg, 4),
            Err(SweepError::UnknownBackend(_))
        ));
    }

    #[test]
    fn pivot_produces_consistent_matrix() {
        let cfg = tiny_config();
        let records = run_sweep(&cfg).unwrap();
        let (methods, values, groups) = pivot_records(&records, |r| r.volume_avg);
        assert_eq!(methods.len(), 2);
        assert_eq!(values[0].len(), groups.len());
        assert!(values.iter().all(|row| row.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let cfg = tiny_config();
        let records = run_sweep(&cfg).unwrap();
        let csv = records_to_csv(&records);
        assert_eq!(csv.lines().count(), records.len() + 1);
        assert!(csv.starts_with("matrix,class,nnz,method"));
    }
}

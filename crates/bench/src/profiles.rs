//! Dolan–Moré performance profiles (the paper's Figs 4, 5, 6).
//!
//! For each test case, every method's value (communication volume or time)
//! is divided by the best value over all methods; the profile of a method
//! plots, for each factor τ, the fraction of cases on which the method was
//! within τ of the best. Higher curves are better. Cases where the best
//! value is 0 are removed, exactly as in the paper.

/// A computed performance profile.
#[derive(Debug, Clone)]
pub struct PerformanceProfile {
    /// Method labels, matching the row order of `fractions`.
    pub labels: Vec<String>,
    /// Sampled factors τ (the x axis).
    pub taus: Vec<f64>,
    /// `fractions[m][t]` — fraction of cases where method `m`'s value is
    /// ≤ `taus[t]` × best.
    pub fractions: Vec<Vec<f64>>,
    /// Number of cases after removing zero-best ones.
    pub cases: usize,
}

/// Computes a profile from `values[m][c]` (method × case). Cases where the
/// minimum over methods is ≤ 0 are dropped (a volume of 0 cannot be
/// represented as a ratio — same rule as the paper).
pub fn performance_profile(
    labels: &[String],
    values: &[Vec<f64>],
    taus: &[f64],
) -> PerformanceProfile {
    assert_eq!(labels.len(), values.len());
    let num_methods = values.len();
    let num_cases = values.first().map_or(0, |v| v.len());
    for v in values {
        assert_eq!(v.len(), num_cases, "ragged value matrix");
    }

    // Per-case best over methods, and the kept case indices.
    let mut kept: Vec<(usize, f64)> = Vec::with_capacity(num_cases);
    for c in 0..num_cases {
        let best = values
            .iter()
            .map(|row| row[c])
            .fold(f64::INFINITY, f64::min);
        if best > 0.0 && best.is_finite() {
            kept.push((c, best));
        }
    }

    let mut fractions = vec![vec![0.0; taus.len()]; num_methods];
    if !kept.is_empty() {
        for (m, row) in fractions.iter_mut().enumerate() {
            // Ratios for this method, sorted once; fraction ≤ τ by binary
            // search.
            let mut ratios: Vec<f64> = kept.iter().map(|&(c, best)| values[m][c] / best).collect();
            ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN ratios"));
            for (t, &tau) in taus.iter().enumerate() {
                let count = ratios.partition_point(|&r| r <= tau + 1e-12);
                row[t] = count as f64 / kept.len() as f64;
            }
        }
    }

    PerformanceProfile {
        labels: labels.to_vec(),
        taus: taus.to_vec(),
        fractions,
        cases: kept.len(),
    }
}

/// The τ grid used for the paper's volume profiles: 1.0 … 2.0.
pub fn volume_taus() -> Vec<f64> {
    (0..=50).map(|i| 1.0 + i as f64 * 0.02).collect()
}

/// The τ grid used for the paper's time profile: 1 … 6.
pub fn time_taus() -> Vec<f64> {
    (0..=50).map(|i| 1.0 + i as f64 * 0.1).collect()
}

impl PerformanceProfile {
    /// Renders the profile as a fixed-width ASCII chart, one letter per
    /// method, plus a legend. Good enough to eyeball curve ordering in a
    /// terminal or log file.
    pub fn render_ascii(&self, height: usize) -> String {
        let width = self.taus.len();
        let mut grid = vec![vec![' '; width]; height];
        let marks: Vec<char> = "ABCDEFGHIJ".chars().collect();
        for (m, row) in self.fractions.iter().enumerate() {
            let mark = marks[m % marks.len()];
            for (t, &frac) in row.iter().enumerate() {
                let y = ((1.0 - frac) * (height - 1) as f64).round() as usize;
                let y = y.min(height - 1);
                grid[y][t] = mark;
            }
        }
        let mut out = String::new();
        for (y, line) in grid.iter().enumerate() {
            let frac = 1.0 - y as f64 / (height - 1) as f64;
            out.push_str(&format!("{frac:5.2} |"));
            out.extend(line.iter());
            out.push('\n');
        }
        out.push_str(&format!(
            "      +{}\n       τ from {:.2} to {:.2} ({} cases)\n",
            "-".repeat(width),
            self.taus.first().copied().unwrap_or(1.0),
            self.taus.last().copied().unwrap_or(1.0),
            self.cases
        ));
        for (m, label) in self.labels.iter().enumerate() {
            out.push_str(&format!("       {} = {}\n", marks[m % marks.len()], label));
        }
        out
    }

    /// Serialises as CSV: `tau, method1, method2, ...`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("tau");
        for label in &self.labels {
            out.push(',');
            out.push_str(label);
        }
        out.push('\n');
        for (t, &tau) in self.taus.iter().enumerate() {
            out.push_str(&format!("{tau:.4}"));
            for row in &self.fractions {
                out.push_str(&format!(",{:.6}", row[t]));
            }
            out.push('\n');
        }
        out
    }

    /// The fraction for a method at the τ closest to the requested value —
    /// handy for tests ("at τ = 1.2, MG+IR covers ≥ x%").
    pub fn fraction_at(&self, method: &str, tau: f64) -> Option<f64> {
        let m = self.labels.iter().position(|l| l == method)?;
        let t = self
            .taus
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (*a - tau)
                    .abs()
                    .partial_cmp(&(*b - tau).abs())
                    .expect("finite")
            })?
            .0;
        Some(self.fractions[m][t])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn dominant_method_has_fraction_one_at_tau_one() {
        // Method A always best.
        let values = vec![vec![1.0, 2.0, 3.0], vec![2.0, 2.0, 6.0]];
        let p = performance_profile(&labels(&["A", "B"]), &values, &[1.0, 2.0]);
        assert_eq!(p.fractions[0], vec![1.0, 1.0]);
        // B matches on case 1 only at τ=1; within 2x everywhere.
        assert!((p.fractions[1][0] - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(p.fractions[1][1], 1.0);
    }

    #[test]
    fn zero_best_cases_are_dropped() {
        let values = vec![vec![0.0, 4.0], vec![5.0, 2.0]];
        let p = performance_profile(&labels(&["A", "B"]), &values, &[1.0]);
        assert_eq!(p.cases, 1);
        // Only the second case remains; B is best there.
        assert_eq!(p.fractions[1][0], 1.0);
        assert_eq!(p.fractions[0][0], 0.0);
    }

    #[test]
    fn fractions_are_monotone_in_tau() {
        let values = vec![vec![3.0, 1.0, 7.0, 2.0], vec![1.0, 2.0, 5.0, 2.0]];
        let p = performance_profile(&labels(&["A", "B"]), &values, &volume_taus());
        for row in &p.fractions {
            for w in row.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn csv_and_ascii_render() {
        let values = vec![vec![1.0, 2.0], vec![2.0, 2.0]];
        let p = performance_profile(&labels(&["MG", "LB"]), &values, &[1.0, 1.5, 2.0]);
        let csv = p.to_csv();
        assert!(csv.starts_with("tau,MG,LB\n"));
        assert_eq!(csv.lines().count(), 4);
        let art = p.render_ascii(10);
        assert!(art.contains("A = MG"));
    }

    #[test]
    fn fraction_at_finds_nearest_tau() {
        let values = vec![vec![1.0, 1.0], vec![1.3, 1.0]];
        let p = performance_profile(&labels(&["A", "B"]), &values, &volume_taus());
        assert_eq!(p.fraction_at("A", 1.0), Some(1.0));
        let b_at_12 = p.fraction_at("B", 1.2).unwrap();
        assert!((b_at_12 - 0.5).abs() < 1e-9);
        let b_at_14 = p.fraction_at("B", 1.4).unwrap();
        assert_eq!(b_at_14, 1.0);
        assert_eq!(p.fraction_at("missing", 1.0), None);
    }
}

//! Library implementations of each paper experiment; the `src/bin/*`
//! binaries are thin wrappers so integration tests can run everything at
//! smoke scale.

use crate::geomean::{normalized_geomean_table, GeomeanTable};
use crate::profiles::{performance_profile, time_taus, volume_taus, PerformanceProfile};
use crate::runner::{
    class_label, pivot_records, run_multiway_sweep, run_sweep, MultiwayRecord, RunRecord,
    SweepConfig,
};
use mg_collection::gd97b_twin;
use mg_core::Method;
use mg_partitioner::PartitionerConfig;
use mg_sparse::MatrixClass;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fig 3: repeated bipartitioning of the gd97_b twin. Returns, per method,
/// (label, best volume, mean volume, hits-of-best count) over `runs` runs.
pub fn fig3_gd97b(runs: u32) -> Vec<(String, u64, f64, u32)> {
    let a = gd97b_twin();
    let config = PartitionerConfig::mondriaan_like();
    let methods = [
        Method::RowNet { refine: false },
        Method::ColumnNet { refine: false },
        Method::FineGrain { refine: false },
        Method::MediumGrain { refine: false },
        Method::MediumGrain { refine: true },
    ];
    let mut rows = Vec::new();
    for (mi, method) in methods.iter().enumerate() {
        let mut best = u64::MAX;
        let mut sum = 0u64;
        let mut volumes = Vec::with_capacity(runs as usize);
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(0x61d97b ^ ((mi as u64) << 32) ^ run as u64);
            let result = method.bipartition(&a, 0.03, &config, &mut rng);
            best = best.min(result.volume);
            sum += result.volume;
            volumes.push(result.volume);
        }
        let hits = volumes.iter().filter(|&&v| v == best).count() as u32;
        rows.push((
            method.label().to_string(),
            best,
            sum as f64 / runs as f64,
            hits,
        ));
    }
    rows
}

/// Renders the Fig 3 rows as a text table.
pub fn render_fig3(rows: &[(String, u64, f64, u32)], runs: u32) -> String {
    let mut out = format!(
        "Fig 3 — gd97_b twin (47x47, 264 nnz), best of {runs} runs, eps = 0.03\n\
         (paper: row-net 31, column-net 31, fine-grain 12, medium-grain 11 = optimal)\n\n\
         {:<8} {:>6} {:>9} {:>11}\n",
        "method", "best", "mean", "hits-best"
    );
    for (label, best, mean, hits) in rows {
        out.push_str(&format!("{label:<8} {best:>6} {mean:>9.2} {hits:>11}\n"));
    }
    out
}

/// The four Fig 4 subsets in paper order.
pub fn fig4_subsets() -> [(&'static str, Option<MatrixClass>); 4] {
    [
        ("all", None),
        ("square", Some(MatrixClass::SquareNonSymmetric)),
        ("symmetric", Some(MatrixClass::Symmetric)),
        ("rectangular", Some(MatrixClass::Rectangular)),
    ]
}

/// Fig 4 (and Fig 6a with a PaToH-like sweep): volume profiles for the
/// whole set and each class.
pub fn fig4_profiles(records: &[RunRecord]) -> Vec<(String, PerformanceProfile)> {
    fig4_subsets()
        .into_iter()
        .map(|(name, class)| {
            let filtered: Vec<RunRecord> = records
                .iter()
                .filter(|r| class.is_none_or(|c| r.class == c))
                .cloned()
                .collect();
            let (methods, values, _) = pivot_records(&filtered, |r| r.volume_avg);
            (
                name.to_string(),
                performance_profile(&methods, &values, &volume_taus()),
            )
        })
        .collect()
}

/// Fig 5: partitioning-time profile over all matrices.
pub fn fig5_time_profile(records: &[RunRecord]) -> PerformanceProfile {
    let (methods, values, _) = pivot_records(records, |r| r.time_avg_s.max(1e-9));
    performance_profile(&methods, &values, &time_taus())
}

/// Table I: normalised geomeans of volume and time, rows Rec/Sym/Sqr/All,
/// baseline LB.
pub fn table1_geomeans(records: &[RunRecord]) -> (GeomeanTable, GeomeanTable) {
    let rows = ["Rec", "Sym", "Sqr"].map(String::from).to_vec();
    let (methods, volumes, groups) = pivot_records(records, |r| r.volume_avg);
    let baseline = methods
        .iter()
        .position(|m| m == "LB")
        .expect("LB must be part of the sweep");
    let volume_table = normalized_geomean_table(&methods, &volumes, &groups, &rows, baseline);
    let (_, times, _) = pivot_records(records, |r| r.time_avg_s.max(1e-9));
    let time_table = normalized_geomean_table(&methods, &times, &groups, &rows, baseline);
    (volume_table, time_table)
}

/// Table II: normalised geomeans of volume and BSP cost for a p-way sweep,
/// single `All` row per metric, baseline LB.
pub fn table2_rows(records: &[MultiwayRecord]) -> (Vec<String>, Vec<f64>, Vec<f64>) {
    // Pivot manually (MultiwayRecord is not a RunRecord).
    let mut methods: Vec<String> = Vec::new();
    let mut matrices: Vec<&str> = Vec::new();
    for r in records {
        if !methods.contains(&r.method) {
            methods.push(r.method.clone());
        }
        if !matrices.contains(&r.matrix.as_str()) {
            matrices.push(&r.matrix);
        }
    }
    methods.sort_by_key(|m| crate::runner::method_order_key(m));
    let mut volume = vec![vec![f64::INFINITY; matrices.len()]; methods.len()];
    let mut cost = vec![vec![f64::INFINITY; matrices.len()]; methods.len()];
    for r in records {
        let m = methods.iter().position(|x| *x == r.method).expect("known");
        let c = matrices.iter().position(|x| *x == r.matrix).expect("known");
        volume[m][c] = r.volume_avg;
        cost[m][c] = r.bsp_cost_avg;
    }
    let baseline = methods
        .iter()
        .position(|m| m == "LB")
        .expect("LB must be part of the sweep");
    let geo = |values: &Vec<Vec<f64>>| -> Vec<f64> {
        methods
            .iter()
            .enumerate()
            .map(|(m, _)| {
                let ratios: Vec<f64> = (0..matrices.len())
                    .filter(|&c| values[baseline][c] > 0.0)
                    .map(|c| values[m][c] / values[baseline][c])
                    .collect();
                crate::geomean::geometric_mean(&ratios)
            })
            .collect()
    };
    let vol_row = geo(&volume);
    let cost_row = geo(&cost);
    (methods, vol_row, cost_row)
}

/// Renders Table II from p = 2 and p = 64 sweeps.
pub fn render_table2(p2: &[MultiwayRecord], p64: &[MultiwayRecord]) -> String {
    let mut out = String::from("Table II — geometric means relative to LB (PaToH-like engine)\n\n");
    let (methods, vol2, cost2) = table2_rows(p2);
    let (_, vol64, cost64) = table2_rows(p64);
    out.push_str(&format!("{:>9}", "metric"));
    for m in &methods {
        out.push_str(&format!("{m:>9}"));
    }
    out.push('\n');
    for (label, row) in [
        ("Vol p2", &vol2),
        ("Cost p2", &cost2),
        ("Vol p64", &vol64),
        ("Cost p64", &cost64),
    ] {
        out.push_str(&format!("{label:>9}"));
        for v in row {
            out.push_str(&format!("{v:>9.2}"));
        }
        out.push('\n');
    }
    out
}

/// Convenience: the standard Mondriaan-backend sweep for Figs 4, 5 and
/// Table I.
pub fn standard_sweep(
    collection: mg_collection::CollectionSpec,
    runs: u32,
    threads: usize,
) -> Vec<RunRecord> {
    let mut cfg = SweepConfig::paper(collection, "mondriaan", runs);
    cfg.threads = threads;
    run_sweep(&cfg).expect("the paper sweep configuration is valid")
}

/// Convenience: the PaToH-backend sweep for Fig 6 / Table II.
pub fn patoh_sweep(
    collection: mg_collection::CollectionSpec,
    runs: u32,
    threads: usize,
) -> Vec<RunRecord> {
    let mut cfg = SweepConfig::paper(collection, "patoh", runs);
    cfg.threads = threads;
    run_sweep(&cfg).expect("the paper sweep configuration is valid")
}

/// Convenience: the PaToH-backend p-way sweep for Fig 6b / Table II.
pub fn patoh_multiway_sweep(
    collection: mg_collection::CollectionSpec,
    runs: u32,
    threads: usize,
    p: u32,
) -> Vec<MultiwayRecord> {
    let mut cfg = SweepConfig::paper(collection, "patoh", runs);
    cfg.threads = threads;
    run_multiway_sweep(&cfg, p).expect("the paper sweep configuration is valid")
}

/// Groups multiway records by class label and produces a volume profile —
/// used for Fig 6b.
pub fn multiway_volume_profile(records: &[MultiwayRecord]) -> PerformanceProfile {
    let mut methods: Vec<String> = Vec::new();
    let mut matrices: Vec<&str> = Vec::new();
    for r in records {
        if !methods.contains(&r.method) {
            methods.push(r.method.clone());
        }
        if !matrices.contains(&r.matrix.as_str()) {
            matrices.push(&r.matrix);
        }
    }
    methods.sort_by_key(|m| crate::runner::method_order_key(m));
    let mut values = vec![vec![f64::INFINITY; matrices.len()]; methods.len()];
    for r in records {
        let m = methods.iter().position(|x| *x == r.method).expect("known");
        let c = matrices.iter().position(|x| *x == r.matrix).expect("known");
        values[m][c] = r.volume_avg;
    }
    performance_profile(&methods, &values, &volume_taus())
}

/// A quick textual summary of which classes a record set covers; handy in
/// binary output headers.
pub fn class_summary(records: &[RunRecord]) -> String {
    let mut counts = std::collections::BTreeMap::new();
    let mut seen = std::collections::HashSet::new();
    for r in records {
        if seen.insert(&r.matrix) {
            *counts.entry(class_label(r.class)).or_insert(0usize) += 1;
        }
    }
    counts
        .iter()
        .map(|(k, v)| format!("{k}: {v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

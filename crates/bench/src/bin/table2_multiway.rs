//! Table II reproduction: geometric means of communication volume and BSP
//! cost for p = 2 and p = 64 (PaToH-like engine), relative to LB.
//!
//! Paper values for reference: Vol p2 — LB 1.00, LB+IR 0.81, MG 0.76,
//! MG+IR 0.67, FG 0.71, FG+IR 0.67; Vol p64 — 1.00 / 0.86 / 0.89 / 0.80 /
//! 0.87 / 0.80 (costs track volumes closely).

use mg_bench::experiments::{patoh_multiway_sweep, render_table2};
use mg_bench::{multiway_to_csv, write_artifact, CliOptions};

fn main() {
    let opts = CliOptions::parse();
    eprintln!(
        "table2: PaToH-like p = 2 sweep (scale {:?}, {} runs)...",
        opts.scale, opts.runs
    );
    let p2 = patoh_multiway_sweep(opts.collection(), opts.runs, opts.threads, 2);
    write_artifact("table2_records_p2.csv", &multiway_to_csv(&p2));
    eprintln!("table2: PaToH-like p = 64 sweep (runs = 1)...");
    let p64 = patoh_multiway_sweep(opts.collection(), 1, opts.threads, 64);
    write_artifact("table2_records_p64.csv", &multiway_to_csv(&p64));

    let table = render_table2(&p2, &p64);
    println!("{table}");
    write_artifact("table2.txt", &table);
}

//! Table I reproduction: geometric means of communication volume and
//! partitioning time, normalised to LB (no IR), per matrix class.
//!
//! Paper values for reference (All row): volume LB 1.00, LB+IR 0.80,
//! MG 0.81, MG+IR 0.73, FG 0.93, FG+IR 0.77; time LB 1.00, LB+IR 1.10,
//! MG 0.62, MG+IR 0.72, FG 1.32, FG+IR 1.43.

use mg_bench::experiments::{standard_sweep, table1_geomeans};
use mg_bench::{records_to_csv, write_artifact, CliOptions};

fn main() {
    let opts = CliOptions::parse();
    eprintln!(
        "table1: sweeping (scale {:?}, {} runs)...",
        opts.scale, opts.runs
    );
    let records = standard_sweep(opts.collection(), opts.runs, opts.threads);
    write_artifact("table1_records.csv", &records_to_csv(&records));

    let (volume, time) = table1_geomeans(&records);
    let vol_txt = volume.render("Table I (top) — Com.Vol. relative to LB");
    let time_txt = time.render("Table I (bottom) — Time relative to LB");
    println!("{vol_txt}\n{time_txt}");
    write_artifact("table1_volume.csv", &volume.to_csv());
    write_artifact("table1_time.csv", &time.to_csv());
}

//! Fig 5 reproduction: performance profile of *partitioning time* for all
//! six method configurations (Mondriaan-like engine, all matrices).
//!
//! Expected shape (paper): MG fastest (smaller hypergraph than FG, one run
//! instead of LB's two), FG slowest, +IR variants ≈ 10% slower than their
//! bases.

use mg_bench::experiments::{fig5_time_profile, standard_sweep};
use mg_bench::{records_to_csv, write_artifact, CliOptions};

fn main() {
    let opts = CliOptions::parse();
    eprintln!(
        "fig5: sweeping (scale {:?}, {} runs)...",
        opts.scale, opts.runs
    );
    let records = standard_sweep(opts.collection(), opts.runs, opts.threads);
    write_artifact("fig5_records.csv", &records_to_csv(&records));

    let profile = fig5_time_profile(&records);
    println!("Fig 5: partitioning time profile (all matrices)");
    println!("{}", profile.render_ascii(16));
    write_artifact("fig5_time.csv", &profile.to_csv());
    println!(
        "CSV artifacts written to {}",
        mg_bench::results_dir().display()
    );
}

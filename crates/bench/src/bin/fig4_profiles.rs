//! Fig 4 reproduction: performance profiles of communication volume for
//! LB, LB+IR, MG, MG+IR, FG, FG+IR using the Mondriaan-like engine, over
//! the full collection and per matrix class.
//!
//! Flags: `--scale smoke|default|large --runs N --threads N --seed N`.

use mg_bench::experiments::{class_summary, fig4_profiles, standard_sweep};
use mg_bench::{records_to_csv, write_artifact, CliOptions};

fn main() {
    let opts = CliOptions::parse();
    eprintln!(
        "fig4: sweeping (scale {:?}, {} runs)...",
        opts.scale, opts.runs
    );
    let records = standard_sweep(opts.collection(), opts.runs, opts.threads);
    println!("collection classes: {}", class_summary(&records));
    write_artifact("fig4_records.csv", &records_to_csv(&records));

    for (name, profile) in fig4_profiles(&records) {
        println!("\nFig 4 ({name}): communication volume profile");
        println!("{}", profile.render_ascii(16));
        write_artifact(&format!("fig4_{name}.csv"), &profile.to_csv());
    }
    println!(
        "CSV artifacts written to {}",
        mg_bench::results_dir().display()
    );
}

//! Ablation study for the design choices DESIGN.md calls out:
//!
//! 1. **Initial split strategy** (§III-B / §V): Algorithm 1 vs. the
//!    degenerate all-Ac / all-Ar splits (≡ 1D models) vs. a random split.
//! 2. **Coarsening scheme**: heavy-connectivity matching vs. agglomerative
//!    clustering vs. random matching.
//! 3. **Restricted V-cycles**: 0 vs. 2 extra cycles.
//! 4. **Full iterative method** (§V future work) vs. MG+IR.
//!
//! Prints normalised geometric means of communication volume (and time)
//! over the collection, relative to the paper's default configuration.
//!
//! Flags: `--scale smoke|default|large --runs N --threads N --seed N`.

use mg_bench::geomean::geometric_mean;
use mg_bench::{write_artifact, CliOptions};
use mg_collection::generate;
use mg_core::{
    medium_grain_bipartition_with_split, medium_grain_full_iterative, split_with_strategy,
    FullIterativeOptions, Method, SplitStrategy,
};
use mg_partitioner::{BisectionTargets, CoarseningScheme, PartitionerConfig};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// One ablation configuration: a name and a closure producing (volume,
/// seconds) for a matrix and seed.
type Variant = (
    &'static str,
    Box<dyn Fn(&mg_sparse::Coo, u64) -> (u64, f64) + Sync>,
);

fn variants() -> Vec<Variant> {
    let mut v: Vec<Variant> = Vec::new();

    // --- Baseline: the paper's MG+IR with the default engine. ---
    v.push((
        "MG+IR (paper)",
        Box::new(|a, seed| {
            let cfg = PartitionerConfig::mondriaan_like();
            let mut rng = StdRng::seed_from_u64(seed);
            let t = Instant::now();
            let r = Method::MediumGrain { refine: true }.bipartition(a, 0.03, &cfg, &mut rng);
            (r.volume, t.elapsed().as_secs_f64())
        }),
    ));

    // --- 1. Split strategies (without IR, isolating the splitter). ---
    for (name, strategy) in [
        ("split: algorithm1", SplitStrategy::Algorithm1),
        ("split: all-Ac (row-net)", SplitStrategy::AllColumns),
        ("split: all-Ar (col-net)", SplitStrategy::AllRows),
        ("split: random", SplitStrategy::Random),
    ] {
        v.push((
            name,
            Box::new(move |a, seed| {
                let cfg = PartitionerConfig::mondriaan_like();
                let mut rng = StdRng::seed_from_u64(seed);
                let t = Instant::now();
                let split = split_with_strategy(a, strategy, &mut rng);
                let targets = BisectionTargets::even(a.nnz() as u64, 0.03);
                let r = medium_grain_bipartition_with_split(a, &split, &targets, &cfg, &mut rng);
                (r.volume, t.elapsed().as_secs_f64())
            }),
        ));
    }

    // --- 2. Coarsening schemes (plain MG). ---
    for (name, scheme) in [
        ("coarsen: HCM", CoarseningScheme::HeavyConnectivityMatching),
        ("coarsen: agglomerative", CoarseningScheme::Agglomerative),
        ("coarsen: random", CoarseningScheme::RandomMatching),
    ] {
        v.push((
            name,
            Box::new(move |a, seed| {
                let mut cfg = PartitionerConfig::mondriaan_like();
                cfg.coarsening = scheme;
                let mut rng = StdRng::seed_from_u64(seed);
                let t = Instant::now();
                let r = Method::MediumGrain { refine: false }.bipartition(a, 0.03, &cfg, &mut rng);
                (r.volume, t.elapsed().as_secs_f64())
            }),
        ));
    }

    // --- 3. V-cycles. ---
    v.push((
        "vcycles: 2",
        Box::new(|a, seed| {
            let mut cfg = PartitionerConfig::mondriaan_like();
            cfg.vcycles = 2;
            let mut rng = StdRng::seed_from_u64(seed);
            let t = Instant::now();
            let r = Method::MediumGrain { refine: false }.bipartition(a, 0.03, &cfg, &mut rng);
            (r.volume, t.elapsed().as_secs_f64())
        }),
    ));

    // --- 4. Full iterative method (§V future work). ---
    v.push((
        "full iterative (4 rounds)",
        Box::new(|a, seed| {
            let cfg = PartitionerConfig::mondriaan_like();
            let opts = FullIterativeOptions {
                iterations: 4,
                patience: 4,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let t = Instant::now();
            let r = medium_grain_full_iterative(a, 0.03, &cfg, &opts, &mut rng);
            (r.volume, t.elapsed().as_secs_f64())
        }),
    ));

    v
}

fn main() {
    let opts = CliOptions::parse();
    let entries = generate(&opts.collection());
    let configs = variants();
    eprintln!(
        "ablation: {} matrices x {} variants x {} runs",
        entries.len(),
        configs.len(),
        opts.runs
    );

    // volumes[variant][matrix], times[variant][matrix]
    let volumes = Mutex::new(vec![vec![0.0f64; entries.len()]; configs.len()]);
    let times = Mutex::new(vec![vec![0.0f64; entries.len()]; configs.len()]);
    let cursor = AtomicUsize::new(0);
    let workers = if opts.threads > 0 {
        opts.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    };

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= entries.len() {
                    break;
                }
                let a = &entries[idx].matrix;
                for (vi, (_, f)) in configs.iter().enumerate() {
                    let mut vol = 0.0;
                    let mut time = 0.0;
                    for run in 0..opts.runs {
                        let (v, t) = f(a, (idx as u64) << 20 | (vi as u64) << 8 | run as u64);
                        vol += v as f64;
                        time += t;
                    }
                    volumes.lock()[vi][idx] = vol / opts.runs as f64;
                    times.lock()[vi][idx] = time / opts.runs as f64;
                }
            });
        }
    })
    .expect("ablation worker panicked");

    let volumes = volumes.into_inner();
    let times = times.into_inner();

    // Normalise against the baseline (variant 0).
    let mut out = String::from("Ablation — geometric means relative to MG+IR (paper defaults)\n\n");
    out.push_str(&format!(
        "{:<28} {:>8} {:>8}\n",
        "variant", "volume", "time"
    ));
    for (vi, (name, _)) in configs.iter().enumerate() {
        let vol_ratios: Vec<f64> = (0..entries.len())
            .filter(|&c| volumes[0][c] > 0.0)
            .map(|c| volumes[vi][c] / volumes[0][c])
            .collect();
        let time_ratios: Vec<f64> = (0..entries.len())
            .filter(|&c| times[0][c] > 0.0)
            .map(|c| times[vi][c] / times[0][c])
            .collect();
        out.push_str(&format!(
            "{:<28} {:>8.3} {:>8.3}\n",
            name,
            geometric_mean(&vol_ratios),
            geometric_mean(&time_ratios)
        ));
    }
    println!("{out}");
    write_artifact("ablation.txt", &out);
}

//! Runs every experiment of the paper in sequence, reusing sweeps where
//! figures share data, and writes all artifacts (CSV + text) under
//! `results/`. This is the one command behind EXPERIMENTS.md.
//!
//! Flags: `--scale smoke|default|large --runs N --threads N --seed N`.

use mg_bench::experiments::{
    class_summary, fig3_gd97b, fig4_profiles, fig5_time_profile, multiway_volume_profile,
    patoh_multiway_sweep, patoh_sweep, render_fig3, render_table2, table1_geomeans,
};
use mg_bench::{
    batch_to_run_records, multiway_to_csv, records_to_csv, records_to_jsonl, run_batch_sweep,
    write_artifact, BatchSweepConfig, CliOptions,
};
use std::time::Instant;

/// One progress event on stderr (structured, level info, silenced by
/// `MGPART_LOG=error`).
fn progress(step: &str, detail: &str) {
    mg_obs::log::info(
        "experiment_step",
        &[("step", step.into()), ("detail", detail.into())],
    );
}

fn main() {
    mg_obs::log::init_from_env();
    let opts = CliOptions::parse();
    let t0 = Instant::now();
    let mut summary = String::from("# Experiment summary (run_all)\n\n");
    summary.push_str(&format!(
        "scale: {:?}, runs: {}, seed: {}\n\n",
        opts.scale, opts.runs, opts.seed
    ));

    // --- Fig 3 ---
    progress("1/5", "fig3 (gd97_b twin, 100 runs/method)");
    let fig3 = render_fig3(&fig3_gd97b(100), 100);
    println!("{fig3}");
    write_artifact("fig3_gd97b.txt", &fig3);
    summary.push_str("## Fig 3\n\n```\n");
    summary.push_str(&fig3);
    summary.push_str("```\n\n");

    // --- Figs 4, 5 and Table I share the Mondriaan-like sweep, run once
    // through the batch engine so the JSONL stream and the figures come
    // from the same records. ---
    progress("2/5", "Mondriaan-like batched sweep (figs 4, 5, table I)");
    let batch_config = {
        let mut c = BatchSweepConfig::paper(opts.collection(), "mondriaan", opts.runs);
        c.threads = opts.threads;
        c
    };
    let batch_records = run_batch_sweep(&batch_config).expect("the paper sweep config is valid");
    write_artifact("sweep_p2.jsonl", &records_to_jsonl(&batch_records));
    let records = batch_to_run_records(batch_records);
    write_artifact("fig4_records.csv", &records_to_csv(&records));
    summary.push_str(&format!(
        "collection: {} matrices ({})\n\n",
        records.len() / 6,
        class_summary(&records)
    ));
    for (name, profile) in fig4_profiles(&records) {
        write_artifact(&format!("fig4_{name}.csv"), &profile.to_csv());
        summary.push_str(&format!("## Fig 4 ({name})\n\n```\n"));
        summary.push_str(&profile.render_ascii(16));
        summary.push_str("```\n\n");
    }
    let time_profile = fig5_time_profile(&records);
    write_artifact("fig5_time.csv", &time_profile.to_csv());
    summary.push_str("## Fig 5 (time)\n\n```\n");
    summary.push_str(&time_profile.render_ascii(16));
    summary.push_str("```\n\n");

    let (volume_table, time_table) = table1_geomeans(&records);
    let t1v = volume_table.render("Table I (top) — Com.Vol. relative to LB");
    let t1t = time_table.render("Table I (bottom) — Time relative to LB");
    println!("{t1v}\n{t1t}");
    write_artifact("table1_volume.csv", &volume_table.to_csv());
    write_artifact("table1_time.csv", &time_table.to_csv());
    summary.push_str(&format!("## Table I\n\n```\n{t1v}\n{t1t}```\n\n"));

    // --- Fig 6a: PaToH-like p = 2. ---
    progress("3/5", "PaToH-like sweep (fig 6a)");
    let patoh_records = patoh_sweep(opts.collection(), opts.runs, opts.threads);
    write_artifact("fig6_records_p2.csv", &records_to_csv(&patoh_records));
    let fig6a = &fig4_profiles(&patoh_records)[0].1;
    write_artifact("fig6a_p2.csv", &fig6a.to_csv());
    summary.push_str("## Fig 6a (PaToH-like, p = 2)\n\n```\n");
    summary.push_str(&fig6a.render_ascii(16));
    summary.push_str("```\n\n");

    // --- Fig 6b / Table II: p-way sweeps. ---
    progress("4/5", "PaToH-like p = 2 multiway sweep (table II)");
    let p2 = patoh_multiway_sweep(opts.collection(), opts.runs, opts.threads, 2);
    write_artifact("table2_records_p2.csv", &multiway_to_csv(&p2));
    progress("5/5", "PaToH-like p = 64 multiway sweep (fig 6b, table II)");
    let p64 = patoh_multiway_sweep(opts.collection(), 1, opts.threads, 64);
    write_artifact("table2_records_p64.csv", &multiway_to_csv(&p64));
    let fig6b = multiway_volume_profile(&p64);
    write_artifact("fig6b_p64.csv", &fig6b.to_csv());
    summary.push_str("## Fig 6b (PaToH-like, p = 64)\n\n```\n");
    summary.push_str(&fig6b.render_ascii(16));
    summary.push_str("```\n\n");
    let table2 = render_table2(&p2, &p64);
    println!("{table2}");
    write_artifact("table2.txt", &table2);
    summary.push_str(&format!("## Table II\n\n```\n{table2}```\n\n"));

    summary.push_str(&format!(
        "total wall time: {:.1}s\n",
        t0.elapsed().as_secs_f64()
    ));
    let path = write_artifact("summary.md", &summary);
    mg_obs::log::info(
        "experiments_done",
        &[
            ("seconds", t0.elapsed().as_secs_f64().into()),
            ("summary", path.display().to_string().into()),
        ],
    );
}

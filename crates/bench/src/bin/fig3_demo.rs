//! Fig 3 reproduction: bipartition the gd97_b twin 100 times with each
//! model and report the best volume found.
//!
//! Paper result (on the real gd97_b): best of 100 runs was 31 for row-net,
//! 31 for column-net, 12 for fine-grain and 11 (the proven optimum) for
//! the medium-grain method, which hit it in 19 of 100 runs. Our twin has
//! the same shape; expect the same *ordering* (MG < FG << 1D models).

use mg_bench::experiments::{fig3_gd97b, render_fig3};
use mg_bench::write_artifact;
use mg_collection::gd97b_twin;
use mg_core::Method;
use mg_partitioner::PartitionerConfig;
use mg_sparse::{spy, spy_partitioned, CommunicationReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let runs = 100;
    let rows = fig3_gd97b(runs);
    let mut report = render_fig3(&rows, runs);

    // The visual half of Fig 3: the original pattern and the best
    // medium-grain 2D partitioning found.
    let a = gd97b_twin();
    let config = PartitionerConfig::mondriaan_like();
    let best = (0..runs)
        .map(|run| {
            let mut rng = StdRng::seed_from_u64(0xf163 ^ run as u64);
            Method::MediumGrain { refine: true }.bipartition(&a, 0.03, &config, &mut rng)
        })
        .min_by_key(|r| r.volume)
        .expect("at least one run");

    report.push_str("\noriginal pattern (A):\n");
    report.push_str(&spy(&a, 47, 47));
    report.push_str(&format!(
        "\nbest MG+IR 2D partitioning (volume {}):\n",
        best.volume
    ));
    report.push_str(&spy_partitioned(&a, &best.partition, 47, 47));
    report.push_str(&format!(
        "\n{}\n",
        CommunicationReport::compute(&a, &best.partition).render()
    ));

    println!("{report}");
    let path = write_artifact("fig3_gd97b.txt", &report);
    println!("written: {}", path.display());
}

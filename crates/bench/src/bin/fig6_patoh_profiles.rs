//! Fig 6 reproduction: volume performance profiles using the *second*
//! engine (PaToH-like preset) — (a) bipartitioning, (b) p = 64 by
//! recursive bisection.
//!
//! The p = 64 sweep is 63 bisections per partitioning; with the default
//! scale it is the most expensive experiment, so `--runs 1` is a reasonable
//! choice there (the paper's conclusions are about curve ordering, which is
//! stable).

use mg_bench::experiments::{
    fig4_profiles, multiway_volume_profile, patoh_multiway_sweep, patoh_sweep,
};
use mg_bench::{multiway_to_csv, records_to_csv, write_artifact, CliOptions};

fn main() {
    let opts = CliOptions::parse();
    eprintln!(
        "fig6a: PaToH-like sweep (scale {:?}, {} runs)...",
        opts.scale, opts.runs
    );
    let records = patoh_sweep(opts.collection(), opts.runs, opts.threads);
    write_artifact("fig6_records_p2.csv", &records_to_csv(&records));
    // Subset "all" of the class-split profiles is Fig 6a.
    let all_profile = &fig4_profiles(&records)[0].1;
    println!("Fig 6a: volume profile, PaToH-like engine, p = 2");
    println!("{}", all_profile.render_ascii(16));
    write_artifact("fig6a_p2.csv", &all_profile.to_csv());

    eprintln!("fig6b: PaToH-like p = 64 sweep (runs = 1)...");
    let multiway = patoh_multiway_sweep(opts.collection(), 1, opts.threads, 64);
    write_artifact("fig6_records_p64.csv", &multiway_to_csv(&multiway));
    let profile64 = multiway_volume_profile(&multiway);
    println!("Fig 6b: volume profile, PaToH-like engine, p = 64");
    println!("{}", profile64.render_ascii(16));
    write_artifact("fig6b_p64.csv", &profile64.to_csv());
}

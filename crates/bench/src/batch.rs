//! The batched sweep engine: the experiment cross product scheduled over
//! the work-stealing pool of [`mg_collection::batch`], with JSON-lines
//! results.
//!
//! Each (matrix × method × ε) cell is one job, executed on the sweep's
//! configured [`mg_core::backend`] engine. Its RNG stream is seeded from
//! a stable hash of the cell's *key*, backend name included
//! ([`mg_collection::job_seed`]),
//! so results do not depend on sweep order, thread count or scheduling —
//! the determinism contract of the paper's §V extended from a single
//! split to a whole experiment campaign. The opt-in verify pass
//! cross-checks every reported volume through the sharded pipeline of
//! [`mg_core::parallel`]: large instances take the parallel kernels (per
//! [`ShardPolicy`]), small ones the sequential scan. Both routes are
//! bit-identical.

use crate::runner::class_label;
use mg_collection::batch::{expand_jobs, run_jobs, run_seed, worker_count};
use mg_collection::{generate, CollectionEntry, CollectionSpec};
use mg_core::{parse_backend, sharded_volume, Method, PartitionBackend, ShardPolicy};
use mg_sparse::{load_imbalance, MatrixClass};
use std::time::Instant;

/// Configuration of a batched sweep.
#[derive(Debug, Clone)]
pub struct BatchSweepConfig {
    /// Which collection to run on.
    pub collection: CollectionSpec,
    /// Keep only collection matrices whose name contains one of these
    /// substrings; `None` keeps everything. A filter that matches nothing
    /// makes the sweep fail with [`SweepError::EmptySweep`] rather than
    /// silently succeed on zero cells.
    pub matrices: Option<Vec<String>>,
    /// Methods to compare.
    pub methods: Vec<Method>,
    /// Load-imbalance parameters to sweep (the paper fixes ε = 0.03; the
    /// batch engine treats ε as a sweep axis).
    pub epsilons: Vec<f64>,
    /// Repetitions per cell; results are averaged.
    pub runs: u32,
    /// Master seed folded into every cell's key hash.
    pub seed: u64,
    /// Canonical backend name ([`mg_core::backend`] registry: `mondriaan`,
    /// `patoh`, `coarse-grain`, `geometric`). Part of every cell key, so
    /// campaigns on different engines draw independent RNG streams.
    pub backend: String,
    /// Worker threads for the job pool; 0 = one per available core.
    pub threads: usize,
    /// Intra-job routing policy for the verify pass: instances with at
    /// least `min_parallel_nnz` nonzeros take the parallel kernels.
    pub policy: ShardPolicy,
    /// Cross-check every reported volume against an independent
    /// recomputation through the sharded pipeline
    /// ([`mg_core::sharded_volume`]); panics on mismatch. Off by default
    /// — it doubles the volume work per run.
    pub verify: bool,
}

impl BatchSweepConfig {
    /// The paper's standard campaign: six methods, ε = 0.03, on the named
    /// backend.
    pub fn paper(collection: CollectionSpec, backend: &str, runs: u32) -> Self {
        BatchSweepConfig {
            collection,
            matrices: None,
            methods: Method::paper_set().to_vec(),
            epsilons: vec![0.03],
            runs,
            seed: 0xB15EC7,
            backend: backend.to_string(),
            threads: 0,
            policy: ShardPolicy::verification(),
            verify: false,
        }
    }
}

/// Why a sweep could not run. Every variant is a *setup* failure caught
/// before any job executes, so a failed sweep never produces partial
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The configured backend name is not in the registry; the message is
    /// the registry's own (it lists every valid name).
    UnknownBackend(String),
    /// The (matrix × method × ε) cross product is empty — typically a
    /// matrix filter that matched nothing, or an empty method/ε list.
    EmptySweep {
        /// Matrices remaining after the name filter.
        matrices: usize,
        /// Methods configured.
        methods: usize,
        /// ε values configured.
        epsilons: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::UnknownBackend(message) => f.write_str(message),
            SweepError::EmptySweep {
                matrices,
                methods,
                epsilons,
            } => write!(
                f,
                "empty sweep: {matrices} matrices x {methods} methods x \
                 {epsilons} epsilons expands to no jobs"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// One measured sweep cell.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Matrix name.
    pub matrix: String,
    /// Matrix class (paper's three-way split).
    pub class: MatrixClass,
    /// Matrix nonzero count.
    pub nnz: usize,
    /// Canonical backend name the cell ran on.
    pub backend: String,
    /// Method label (`LB`, `MG+IR`, …).
    pub method: String,
    /// Load-imbalance parameter of this cell.
    pub epsilon: f64,
    /// Repetitions averaged.
    pub runs: u32,
    /// The cell's stable seed (hash of its key).
    pub seed: u64,
    /// Mean communication volume over the runs.
    pub volume_avg: f64,
    /// Worst load imbalance observed over the runs.
    pub imbalance_max: f64,
    /// Mean wall-clock partitioning time in seconds. Excluded from
    /// [`BatchRecord::json_line`]: timing is machine noise, not part of
    /// the deterministic result.
    pub time_avg_s: f64,
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BatchRecord {
    /// The deterministic JSON-lines serialisation: every field that is a
    /// pure function of (collection seed, cell key) — and nothing
    /// wall-clock-dependent. Two sweeps agree on these bytes iff they
    /// agree on results.
    pub fn json_line(&self) -> String {
        format!(
            "{{\"matrix\":\"{}\",\"class\":\"{}\",\"nnz\":{},\"backend\":\"{}\",\
             \"method\":\"{}\",\
             \"epsilon\":{},\"runs\":{},\"seed\":{},\"volume_avg\":{},\"imbalance_max\":{}}}",
            escape_json(&self.matrix),
            class_label(self.class),
            self.nnz,
            escape_json(&self.backend),
            escape_json(&self.method),
            self.epsilon,
            self.runs,
            self.seed,
            self.volume_avg,
            self.imbalance_max
        )
    }

    /// [`BatchRecord::json_line`] plus the (non-deterministic) mean
    /// wall-clock time, for human consumption.
    pub fn json_line_with_timing(&self) -> String {
        let line = self.json_line();
        format!(
            "{},\"time_avg_s\":{:.6}}}",
            &line[..line.len() - 1],
            self.time_avg_s
        )
    }
}

/// Serialises records as deterministic JSON lines (one per cell,
/// trailing newline).
pub fn records_to_jsonl(records: &[BatchRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.json_line());
        out.push('\n');
    }
    out
}

/// Runs the batched sweep: resolves the backend, expands the cross
/// product into jobs, schedules them over the work-stealing pool, and
/// returns one record per cell in canonical job order (matrix generation
/// order, then method, then ε).
///
/// Fails (without running anything) when the backend name is unknown or
/// the job list expands to nothing — an empty sweep is a configuration
/// error, never a silent success.
pub fn run_batch_sweep(config: &BatchSweepConfig) -> Result<Vec<BatchRecord>, SweepError> {
    let backend = parse_backend(&config.backend).map_err(SweepError::UnknownBackend)?;
    // The whole collection must be generated before filtering: the suite
    // threads one RNG stream through all matrices, so skipping earlier
    // instances would change the content of the kept ones and break the
    // filter-independence of cell results.
    let mut entries = generate(&config.collection);
    if let Some(filters) = &config.matrices {
        entries.retain(|e| filters.iter().any(|f| e.name.contains(f.as_str())));
    }
    let names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
    // Labels go through the canonical Method codec (Display = paper label,
    // `Method::parse_name` inverts it), so record streams stay parseable by
    // every other layer — see the round-trip test below.
    let labels: Vec<String> = config.methods.iter().map(|m| m.to_string()).collect();
    let jobs = expand_jobs(
        backend.name(),
        &names,
        &labels,
        &config.epsilons,
        config.seed,
    );
    if jobs.is_empty() {
        return Err(SweepError::EmptySweep {
            matrices: names.len(),
            methods: labels.len(),
            epsilons: config.epsilons.len(),
        });
    }
    Ok(run_jobs(&jobs, worker_count(config.threads), |job| {
        let entry = &entries[job.matrix_index];
        let method = config.methods[job.method_index];
        measure_cell(entry, method, backend, job, config)
    }))
}

fn measure_cell(
    entry: &CollectionEntry,
    method: Method,
    backend: &dyn PartitionBackend,
    job: &mg_collection::BatchJob,
    config: &BatchSweepConfig,
) -> BatchRecord {
    let runs = config.runs.max(1);
    let mut volume_sum = 0.0f64;
    let mut imbalance_max = 0.0f64;
    let mut time_sum = 0.0f64;
    for run in 0..runs {
        let start = Instant::now();
        let result = backend.bipartition(&entry.matrix, method, job.epsilon, run_seed(job, run));
        time_sum += start.elapsed().as_secs_f64();
        if config.verify {
            // Independent recomputation through the sharded pipeline:
            // large instances take the parallel kernel, small ones the
            // sequential scan. Identical values either way, so the check
            // never perturbs determinism.
            let check = sharded_volume(&entry.matrix, &result.partition, &config.policy);
            assert_eq!(
                check, result.volume,
                "volume mismatch for {} {} eps={}",
                entry.name, job.method, job.epsilon
            );
        }
        volume_sum += result.volume as f64;
        if entry.matrix.nnz() > 0 {
            imbalance_max = imbalance_max.max(load_imbalance(&result.partition));
        }
    }
    BatchRecord {
        matrix: entry.name.clone(),
        class: entry.class,
        nnz: entry.matrix.nnz(),
        backend: job.backend.clone(),
        method: job.method.clone(),
        epsilon: job.epsilon,
        runs,
        seed: job.seed,
        volume_avg: volume_sum / runs as f64,
        imbalance_max,
        time_avg_s: time_sum / runs as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_collection::CollectionScale;

    fn smoke_config() -> BatchSweepConfig {
        let mut cfg = BatchSweepConfig::paper(
            CollectionSpec {
                seed: 7,
                scale: CollectionScale::Smoke,
            },
            "mondriaan",
            1,
        );
        cfg.methods = vec![
            Method::LocalBest { refine: false },
            Method::MediumGrain { refine: true },
        ];
        cfg.epsilons = vec![0.03, 0.1];
        cfg.verify = true;
        cfg
    }

    #[test]
    fn batch_sweep_covers_the_full_cross_product() {
        let cfg = smoke_config();
        let records = run_batch_sweep(&cfg).unwrap();
        let entries = generate(&cfg.collection);
        assert_eq!(
            records.len(),
            entries.len() * cfg.methods.len() * cfg.epsilons.len()
        );
        // ε is infeasible for a few heavy-tailed instances (an atomic
        // row/column group can outweigh the budget), so the bound is a
        // majority property, not a per-record invariant.
        let mut within = 0usize;
        for r in &records {
            assert!(r.volume_avg >= 0.0);
            assert!(r.time_avg_s >= 0.0);
            assert!(r.imbalance_max.is_finite() && r.imbalance_max >= 0.0);
            within += usize::from(r.imbalance_max <= r.epsilon + 1e-9);
        }
        assert!(
            within * 10 >= records.len() * 9,
            "only {within}/{} records within eps",
            records.len()
        );
    }

    #[test]
    fn json_lines_are_deterministic_and_timing_is_opt_in() {
        let r = BatchRecord {
            matrix: "m\"1".to_string(),
            class: MatrixClass::Symmetric,
            nnz: 42,
            backend: "patoh".to_string(),
            method: "MG+IR".to_string(),
            epsilon: 0.03,
            runs: 2,
            seed: 99,
            volume_avg: 12.5,
            imbalance_max: 0.01,
            time_avg_s: 1.0,
        };
        let line = r.json_line();
        assert_eq!(
            line,
            "{\"matrix\":\"m\\\"1\",\"class\":\"Sym\",\"nnz\":42,\"backend\":\"patoh\",\
             \"method\":\"MG+IR\",\
             \"epsilon\":0.03,\"runs\":2,\"seed\":99,\"volume_avg\":12.5,\"imbalance_max\":0.01}"
        );
        assert!(!line.contains("time_avg_s"));
        let timed = r.json_line_with_timing();
        assert!(timed.starts_with(&line[..line.len() - 1]));
        assert!(timed.contains("\"time_avg_s\":1.000000"));
        assert!(timed.ends_with('}'));
    }

    #[test]
    fn record_method_labels_round_trip_through_the_codec() {
        let cfg = smoke_config();
        let records = run_batch_sweep(&cfg).unwrap();
        for r in &records {
            let parsed = Method::parse_name(&r.method)
                .unwrap_or_else(|e| panic!("record label {:?} does not parse: {e}", r.method));
            assert_eq!(parsed.to_string(), r.method);
            assert_eq!(
                parse_backend(&r.backend).unwrap().name(),
                r.backend,
                "record backend name is canonical"
            );
        }
    }

    #[test]
    fn jsonl_has_one_line_per_record() {
        let cfg = smoke_config();
        let records = run_batch_sweep(&cfg).unwrap();
        let jsonl = records_to_jsonl(&records);
        assert_eq!(jsonl.lines().count(), records.len());
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn unknown_backend_is_a_typed_setup_error() {
        let mut cfg = smoke_config();
        cfg.backend = "hmetis".to_string();
        match run_batch_sweep(&cfg) {
            Err(SweepError::UnknownBackend(message)) => {
                assert!(message.contains("hmetis"), "{message}");
                assert!(message.contains("coarse-grain"), "lists names: {message}");
            }
            other => panic!("expected UnknownBackend, got {other:?}"),
        }
    }

    #[test]
    fn empty_sweeps_are_a_typed_setup_error() {
        let mut cfg = smoke_config();
        cfg.matrices = Some(vec!["no_such_matrix".to_string()]);
        match run_batch_sweep(&cfg) {
            Err(SweepError::EmptySweep { matrices, .. }) => assert_eq!(matrices, 0),
            other => panic!("expected EmptySweep, got {other:?}"),
        }
        let rendered = SweepError::EmptySweep {
            matrices: 0,
            methods: 2,
            epsilons: 1,
        }
        .to_string();
        assert!(rendered.contains("empty sweep"), "{rendered}");
    }

    #[test]
    fn matrix_filters_narrow_the_sweep() {
        let mut cfg = smoke_config();
        cfg.matrices = Some(vec!["laplace2d_".to_string()]);
        let records = run_batch_sweep(&cfg).unwrap();
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.matrix.contains("laplace2d_")));
        // Filtered cells keep the seeds they had in the full sweep
        // (key-hash seeding is filter-independent).
        let full = run_batch_sweep(&smoke_config()).unwrap();
        for r in &records {
            let twin = full
                .iter()
                .find(|f| f.matrix == r.matrix && f.method == r.method && f.epsilon == r.epsilon)
                .expect("cell exists in the full sweep");
            assert_eq!(twin.seed, r.seed);
            assert_eq!(twin.volume_avg, r.volume_avg);
        }
    }
}

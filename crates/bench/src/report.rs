//! Shared plumbing for the experiment binaries: output directory, tiny CLI
//! parsing, and file writing.

use mg_collection::{CollectionScale, CollectionSpec};
use std::path::PathBuf;

/// Command-line options shared by all experiment binaries.
///
/// Recognised flags (all optional):
/// `--scale smoke|default|large`, `--runs N`, `--threads N`, `--seed N`.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Collection scale.
    pub scale: CollectionScale,
    /// Runs per (matrix, method).
    pub runs: u32,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Collection seed.
    pub seed: u64,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            scale: CollectionScale::Default,
            runs: 3,
            threads: 0,
            seed: CollectionSpec::default().seed,
        }
    }
}

impl CliOptions {
    /// Parses `std::env::args`, panicking with a usage message on bad input.
    pub fn parse() -> Self {
        let mut opts = CliOptions::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let value = |i: &mut usize| -> String {
                *i += 1;
                args.get(*i)
                    .unwrap_or_else(|| panic!("missing value after {}", args[*i - 1]))
                    .clone()
            };
            match args[i].as_str() {
                "--scale" => {
                    opts.scale = match value(&mut i).as_str() {
                        "smoke" => CollectionScale::Smoke,
                        "default" => CollectionScale::Default,
                        "large" => CollectionScale::Large,
                        other => panic!("unknown scale {other:?} (smoke|default|large)"),
                    }
                }
                "--runs" => opts.runs = value(&mut i).parse().expect("--runs takes an integer"),
                "--threads" => {
                    opts.threads = value(&mut i).parse().expect("--threads takes an integer")
                }
                "--seed" => opts.seed = value(&mut i).parse().expect("--seed takes an integer"),
                other => panic!("unknown flag {other:?}; expected --scale/--runs/--threads/--seed"),
            }
            i += 1;
        }
        opts
    }

    /// The collection spec these options select.
    pub fn collection(&self) -> CollectionSpec {
        CollectionSpec {
            seed: self.seed,
            scale: self.scale,
        }
    }
}

/// Directory for experiment artifacts: `$MG_RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("MG_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Writes an artifact into the results directory, returning its path.
pub fn write_artifact(name: &str, content: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, content).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = CliOptions::default();
        assert_eq!(o.runs, 3);
        assert_eq!(o.scale, CollectionScale::Default);
    }

    #[test]
    fn artifacts_land_in_results_dir() {
        std::env::set_var(
            "MG_RESULTS_DIR",
            std::env::temp_dir().join("mg-test-results"),
        );
        let p = write_artifact("probe.txt", "hello");
        assert!(p.exists());
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "hello");
        std::fs::remove_file(p).ok();
        std::env::remove_var("MG_RESULTS_DIR");
    }
}

//! # mg-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§IV):
//!
//! | paper artifact | binary |
//! |---|---|
//! | Fig 3 (gd97_b demonstration) | `fig3_demo` |
//! | Fig 4a–d (volume profiles, Mondriaan-like engine) | `fig4_profiles` |
//! | Fig 5 (time profile) | `fig5_time_profile` |
//! | Table I (geometric means, volume & time) | `table1_geomeans` |
//! | Fig 6a–b (volume profiles, PaToH-like engine, p = 2 / 64) | `fig6_patoh_profiles` |
//! | Table II (geomeans of volume & BSP cost, p = 2 / 64) | `table2_multiway` |
//! | everything, with CSV artifacts under `results/` | `run_all` |
//!
//! The library half provides the pieces: Dolan–Moré performance profiles
//! ([`profiles`]), normalised geometric means ([`geomean`]), the batched
//! work-stealing sweep engine with JSON-lines output ([`batch`]), the
//! record-level sweep views built on it ([`runner`]) and common CLI/output
//! plumbing ([`report`]).

pub mod batch;
pub mod experiments;
pub mod geomean;
pub mod profiles;
pub mod report;
pub mod runner;

pub use batch::{records_to_jsonl, run_batch_sweep, BatchRecord, BatchSweepConfig, SweepError};
pub use geomean::{geometric_mean, normalized_geomean_table, GeomeanTable};
pub use profiles::{performance_profile, PerformanceProfile};
pub use report::{results_dir, write_artifact, CliOptions};
pub use runner::{
    batch_to_run_records, multiway_to_csv, pivot_records, records_to_csv, run_multiway_sweep,
    run_sweep, MultiwayRecord, RunRecord, SweepConfig,
};

//! Criterion micro-benchmarks for the substrates: model construction, the
//! Algorithm 1 split, FM refinement, volume computation and iterative
//! refinement. These are the ablation-style timings DESIGN.md calls out —
//! they show *where* the medium-grain method's speed advantage comes from
//! (hypergraph size at model-build time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mg_core::{
    initial_split, iterative_refinement, sharded_split, sharded_volume, GlobalPreference,
    MediumGrainModel, RefineOptions, ShardPolicy,
};
use mg_hypergraph::{fine_grain_model, row_net_model, VertexBipartition};
use mg_partitioner::{fm_refine, FmLimits};
use mg_sparse::{communication_volume, Idx, NonzeroPartition};
use mg_test_support::fixtures::substrate_bench_matrix as matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_models(c: &mut Criterion) {
    let a = matrix();
    let mut group = c.benchmark_group("model_build");
    group.bench_function("row_net", |b| b.iter(|| row_net_model(&a)));
    group.bench_function("fine_grain", |b| b.iter(|| fine_grain_model(&a)));
    group.bench_function("medium_grain", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let split = initial_split(&a, &mut rng);
        b.iter(|| MediumGrainModel::build(&a, &split))
    });
    group.finish();
}

fn bench_split(c: &mut Criterion) {
    let a = matrix();
    c.bench_function("algorithm1_split", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| initial_split(&a, &mut rng))
    });
}

fn bench_volume(c: &mut Criterion) {
    let a = matrix();
    let parts: Vec<Idx> = (0..a.nnz()).map(|k| (k % 2) as Idx).collect();
    let p = NonzeroPartition::new(2, parts).unwrap();
    c.bench_function("communication_volume", |b| {
        b.iter(|| communication_volume(&a, &p))
    });
}

fn bench_sharded_pipeline(c: &mut Criterion) {
    // Sequential vs parallel routes of the sharded entry points; the
    // threshold is forced to 0 so both sides run on the same instance.
    let a = matrix();
    let parts: Vec<Idx> = (0..a.nnz()).map(|k| (k % 2) as Idx).collect();
    let p = NonzeroPartition::new(2, parts).unwrap();
    let mut group = c.benchmark_group("sharded_pipeline");
    for threads in [1usize, 4] {
        let policy = ShardPolicy {
            threads,
            min_parallel_nnz: 0,
        };
        group.bench_with_input(BenchmarkId::new("split", threads), &policy, |b, policy| {
            b.iter(|| sharded_split(&a, GlobalPreference::Rows, policy))
        });
        group.bench_with_input(BenchmarkId::new("volume", threads), &policy, |b, policy| {
            b.iter(|| sharded_volume(&a, &p, policy))
        });
    }
    group.finish();
}

fn bench_fm(c: &mut Criterion) {
    let a = matrix();
    let model = row_net_model(&a);
    let h = &model.hypergraph;
    let n = h.num_vertices() as usize;
    let w = h.total_vertex_weight();
    let budget = [(w * 103) / 200, (w * 103) / 200];
    let mut group = c.benchmark_group("fm_refine");
    for passes in [1u32, 4] {
        group.bench_with_input(BenchmarkId::new("passes", passes), &passes, |b, &passes| {
            b.iter(|| {
                let sides: Vec<u8> = (0..n).map(|v| (v % 2) as u8).collect();
                let mut bp = VertexBipartition::new(h, sides);
                let limits = FmLimits {
                    budget,
                    max_passes: passes,
                    stall_limit: 2000,
                    scan_cap: 128,
                    boundary_only: false,
                };
                fm_refine(h, &mut bp, &limits)
            })
        });
    }
    group.finish();
}

fn bench_iterative_refinement(c: &mut Criterion) {
    let a = matrix();
    let parts: Vec<Idx> = a.iter().map(|(i, _)| (i as usize >= 1800) as Idx).collect();
    let p = NonzeroPartition::new(2, parts).unwrap();
    c.bench_function("iterative_refinement", |b| {
        b.iter(|| iterative_refinement(&a, &p, 0.03, &RefineOptions::default()))
    });
}

criterion_group!(
    benches,
    bench_models,
    bench_split,
    bench_volume,
    bench_sharded_pipeline,
    bench_fm,
    bench_iterative_refinement
);
criterion_main!(benches);

//! Criterion micro-benchmarks: one group per paper artifact, timing the
//! bipartitioning methods the figures compare.
//!
//! These complement the wall-clock numbers of `fig5_time_profile` /
//! `table1_geomeans` with statistically solid per-method timings on fixed
//! representative matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mg_core::Method;
use mg_partitioner::PartitionerConfig;
use mg_sparse::gen;
use mg_test_support::fixtures::representative_matrices;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fig 4 / Table I: volume-oriented methods, Mondriaan-like engine.
fn bench_methods(c: &mut Criterion) {
    let config = PartitionerConfig::mondriaan_like();
    let mut group = c.benchmark_group("bipartition");
    group.sample_size(10);
    for (name, matrix) in representative_matrices() {
        for method in Method::paper_set() {
            group.bench_with_input(BenchmarkId::new(method.label(), name), &matrix, |b, m| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = StdRng::seed_from_u64(seed);
                    method.bipartition(m, 0.03, &config, &mut rng)
                });
            });
        }
    }
    group.finish();
}

/// Fig 6 / Table II: the PaToH-like engine on the same inputs.
fn bench_patoh_engine(c: &mut Criterion) {
    let config = PartitionerConfig::patoh_like();
    let mut group = c.benchmark_group("bipartition_patoh");
    group.sample_size(10);
    let matrix = gen::laplacian_2d(40, 40);
    for method in [
        Method::LocalBest { refine: false },
        Method::MediumGrain { refine: false },
        Method::MediumGrain { refine: true },
        Method::FineGrain { refine: false },
    ] {
        group.bench_function(method.label(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                method.bipartition(&matrix, 0.03, &config, &mut rng)
            });
        });
    }
    group.finish();
}

/// Table II: recursive bisection cost growth with p.
fn bench_multiway(c: &mut Criterion) {
    let config = PartitionerConfig::patoh_like();
    let matrix = gen::laplacian_2d(32, 32);
    let mut group = c.benchmark_group("recursive_bisection");
    group.sample_size(10);
    for p in [2u32, 8, 64] {
        group.bench_with_input(BenchmarkId::new("MG+IR", p), &p, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                mg_core::recursive_bisection(
                    &matrix,
                    p,
                    0.03,
                    Method::MediumGrain { refine: true },
                    &config,
                    &mut rng,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_patoh_engine, bench_multiway);
criterion_main!(benches);

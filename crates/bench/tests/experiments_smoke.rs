//! Smoke-scale integration test of the whole experiment harness: every
//! figure/table function runs, produces well-formed output, and shows the
//! qualitative orderings the paper reports.

use mg_bench::experiments::{
    fig3_gd97b, fig4_profiles, fig5_time_profile, multiway_volume_profile, patoh_multiway_sweep,
    render_fig3, render_table2, standard_sweep, table1_geomeans, table2_rows,
};
use mg_collection::{CollectionScale, CollectionSpec};

fn smoke() -> CollectionSpec {
    CollectionSpec {
        seed: 11,
        scale: CollectionScale::Smoke,
    }
}

#[test]
fn fig3_produces_all_methods() {
    let rows = fig3_gd97b(5);
    assert_eq!(rows.len(), 5);
    for (label, best, mean, hits) in &rows {
        assert!(!label.is_empty());
        assert!(*best > 0, "{label}: a connected graph must have volume");
        assert!(*mean >= *best as f64);
        assert!(*hits >= 1);
    }
    let txt = render_fig3(&rows, 5);
    assert!(txt.contains("MG+IR"));
}

#[test]
fn full_experiment_pipeline_at_smoke_scale() {
    let records = standard_sweep(smoke(), 1, 0);
    assert!(!records.is_empty());
    // 6 methods per matrix.
    assert_eq!(records.len() % 6, 0);

    // Fig 4: four subsets, profiles monotone, fractions in [0, 1].
    let profiles = fig4_profiles(&records);
    assert_eq!(profiles.len(), 4);
    for (name, p) in &profiles {
        assert_eq!(p.labels.len(), 6, "{name}");
        for row in &p.fractions {
            assert!(row.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{name}");
            assert!(row.iter().all(|&f| (0.0..=1.0).contains(&f)), "{name}");
        }
        // Paper column order.
        assert_eq!(p.labels[0], "LB");
        assert_eq!(p.labels[3], "MG+IR");
    }

    // Fig 5: time profile over all matrices.
    let time_profile = fig5_time_profile(&records);
    assert_eq!(time_profile.cases, records.len() / 6);

    // Table I: LB column is exactly 1, MG+IR no worse than LB overall.
    let (volume, time) = table1_geomeans(&records);
    assert!((volume.cell("All", "LB").unwrap() - 1.0).abs() < 1e-9);
    assert!((time.cell("All", "LB").unwrap() - 1.0).abs() < 1e-9);
    let mgir = volume.cell("All", "MG+IR").unwrap();
    assert!(
        mgir <= 1.0,
        "MG+IR must not lose to LB on volume overall, got {mgir}"
    );
    // IR never hurts on average (it is monotone per matrix).
    assert!(volume.cell("All", "LB+IR").unwrap() <= 1.0 + 1e-9);
}

#[test]
fn multiway_pipeline_at_smoke_scale() {
    let p2 = patoh_multiway_sweep(smoke(), 1, 0, 2);
    let p4 = patoh_multiway_sweep(smoke(), 1, 0, 4);
    assert_eq!(p2.len(), p4.len());
    for r in p2.iter().chain(&p4) {
        assert!(r.volume_avg >= 0.0);
        assert!(r.bsp_cost_avg <= r.volume_avg + 1e-9, "{}", r.matrix);
    }
    let profile = multiway_volume_profile(&p4);
    assert_eq!(profile.labels.len(), 6);
    let (methods, vol, cost) = table2_rows(&p2);
    let lb = methods.iter().position(|m| m == "LB").unwrap();
    assert!((vol[lb] - 1.0).abs() < 1e-9);
    assert!((cost[lb] - 1.0).abs() < 1e-9);
    let txt = render_table2(&p2, &p4);
    assert!(txt.contains("Vol p2"));
}

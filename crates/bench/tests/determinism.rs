//! The whole-sweep determinism contract (§V extended from a single split
//! to the batched campaign): the serialized results of the Smoke-scale
//! sweep must be byte-identical for every thread count — for every
//! registered backend — and every cell's values must be a pure function
//! of its (backend, matrix, method, ε) key, never of sweep order or
//! scheduling.

use mg_bench::{records_to_jsonl, run_batch_sweep, BatchSweepConfig};
use mg_collection::{CollectionScale, CollectionSpec};
use mg_core::{backend_names, Method};

fn smoke_config(threads: usize) -> BatchSweepConfig {
    let mut cfg = BatchSweepConfig::paper(
        CollectionSpec {
            seed: 11,
            scale: CollectionScale::Smoke,
        },
        "mondriaan",
        1,
    );
    cfg.methods = vec![
        Method::LocalBest { refine: false },
        Method::MediumGrain { refine: true },
        Method::FineGrain { refine: false },
    ];
    cfg.epsilons = vec![0.03, 0.1];
    cfg.threads = threads;
    cfg
}

/// A cheaper per-backend configuration (one method, one ε) so the
/// four-backend × four-thread-count matrix stays test-suite friendly.
fn backend_config(backend: &str, threads: usize) -> BatchSweepConfig {
    let mut cfg = smoke_config(threads);
    cfg.backend = backend.to_string();
    cfg.methods = vec![Method::MediumGrain { refine: true }];
    cfg.epsilons = vec![0.03];
    cfg
}

#[test]
fn smoke_sweep_is_byte_identical_for_1_2_4_8_threads() {
    let baseline = records_to_jsonl(&run_batch_sweep(&smoke_config(1)).unwrap());
    assert!(!baseline.is_empty());
    for threads in [2usize, 4, 8] {
        let jsonl = records_to_jsonl(&run_batch_sweep(&smoke_config(threads)).unwrap());
        assert_eq!(
            baseline, jsonl,
            "serialized sweep diverged at {threads} threads"
        );
    }
}

/// The acceptance contract of the backend seam: *every* registered
/// backend produces byte-identical JSON lines at 1/2/4/8 worker threads.
/// CI additionally enforces this through the real `mgpart sweep` binary
/// (the `backend-conformance` job).
#[test]
fn every_backend_sweep_is_byte_identical_for_1_2_4_8_threads() {
    for backend in backend_names() {
        let baseline = records_to_jsonl(&run_batch_sweep(&backend_config(backend, 1)).unwrap());
        assert!(!baseline.is_empty(), "{backend}");
        assert!(
            baseline.contains(&format!("\"backend\":\"{backend}\"")),
            "{backend} records must carry the backend name"
        );
        for threads in [2usize, 4, 8] {
            let jsonl =
                records_to_jsonl(&run_batch_sweep(&backend_config(backend, threads)).unwrap());
            assert_eq!(
                baseline, jsonl,
                "{backend} sweep diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn backends_draw_independent_result_streams() {
    // Same campaign, different backends: the records must differ in the
    // backend field (and, for the multilevel pair, almost surely in the
    // results — they are distinct engines with distinct seeds).
    let a = records_to_jsonl(&run_batch_sweep(&backend_config("mondriaan", 2)).unwrap());
    let b = records_to_jsonl(&run_batch_sweep(&backend_config("patoh", 2)).unwrap());
    assert_ne!(a, b);
}

#[test]
fn cell_results_are_independent_of_the_sweep_shape() {
    // Key-hash seeding: dropping methods and reordering the ε axis must
    // not change any surviving cell's bytes.
    let full: Vec<String> = run_batch_sweep(&smoke_config(4))
        .unwrap()
        .iter()
        .map(|r| r.json_line())
        .collect();

    let mut narrow_cfg = smoke_config(2);
    narrow_cfg.methods = vec![Method::MediumGrain { refine: true }];
    narrow_cfg.epsilons = vec![0.1, 0.03]; // reversed
    let narrow = run_batch_sweep(&narrow_cfg).unwrap();

    for record in &narrow {
        let line = record.json_line();
        assert!(
            full.contains(&line),
            "cell {} {} eps={} changed when the sweep shrank",
            record.matrix,
            record.method,
            record.epsilon
        );
    }
}

#[test]
fn repeated_sweeps_are_byte_identical() {
    let cfg = {
        let mut c = smoke_config(3);
        c.methods = vec![Method::MediumGrain { refine: false }];
        c.epsilons = vec![0.03];
        c
    };
    let a = records_to_jsonl(&run_batch_sweep(&cfg).unwrap());
    let b = records_to_jsonl(&run_batch_sweep(&cfg).unwrap());
    assert_eq!(a, b);
}

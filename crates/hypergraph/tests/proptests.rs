//! Property-based tests for the hypergraph substrate: structural
//! invariants, the cut/volume identity for every classical model, and the
//! incremental bipartition state.

use mg_hypergraph::{
    column_net_model, dedup_nets, fine_grain_model, row_net_model, Hypergraph,
    HypergraphBuilder, Idx, VertexBipartition,
};
use mg_sparse::{communication_volume, Coo};
use proptest::prelude::*;

fn arb_coo() -> impl Strategy<Value = Coo> {
    (1u32..=12, 1u32..=12).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m, 0..n), 0..40)
            .prop_map(move |entries| Coo::new(m, n, entries).expect("in bounds"))
    })
}

fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (1usize..=12).prop_flat_map(|nv| {
        let weights = proptest::collection::vec(1u64..6, nv..=nv);
        let nets = proptest::collection::vec(
            (
                1u64..4,
                proptest::collection::vec(0..nv as Idx, 0..6),
            ),
            0..10,
        );
        (weights, nets).prop_map(|(weights, nets)| {
            let mut b = HypergraphBuilder::new(weights);
            for (w, pins) in nets {
                b.add_net(w, pins);
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn builder_output_always_validates(h in arb_hypergraph()) {
        prop_assert!(h.validate().is_ok());
    }

    #[test]
    fn dedup_preserves_cut_for_any_sides(h in arb_hypergraph(), seed in 0u64..1000) {
        let d = dedup_nets(&h);
        prop_assert!(d.validate().is_ok());
        let nv = h.num_vertices() as usize;
        let sides: Vec<u8> = (0..nv).map(|v| ((v as u64 * 31 + seed) % 2) as u8).collect();
        let c1 = VertexBipartition::new(&h, sides.clone()).cut_weight();
        let c2 = VertexBipartition::new(&d, sides).cut_weight();
        prop_assert_eq!(c1, c2);
    }

    /// The central identity: hypergraph cut == communication volume of the
    /// induced nonzero partition, for all three classical models.
    #[test]
    fn model_cut_equals_matrix_volume(a in arb_coo(), seed in 0u64..1000) {
        for model in [row_net_model(&a), column_net_model(&a), fine_grain_model(&a)] {
            let nv = model.hypergraph.num_vertices() as usize;
            let sides: Vec<u8> = (0..nv)
                .map(|v| ((v as u64 * 17 + seed) % 2) as u8)
                .collect();
            let cut = VertexBipartition::new(&model.hypergraph, sides.clone()).cut_weight();
            let np = model.to_nonzero_partition(&a, &sides);
            prop_assert_eq!(cut, communication_volume(&a, &np), "model {:?}", model.kind);
        }
    }

    /// Moving a vertex twice restores the exact state; the incremental
    /// bookkeeping never drifts from a fresh rebuild.
    #[test]
    fn incremental_moves_never_drift(h in arb_hypergraph(), moves in proptest::collection::vec(0usize..12, 0..24)) {
        let nv = h.num_vertices() as usize;
        let sides: Vec<u8> = (0..nv).map(|v| (v % 2) as u8).collect();
        let mut bp = VertexBipartition::new(&h, sides);
        for &mv in &moves {
            let v = (mv % nv) as Idx;
            let predicted = bp.gain(&h, v);
            let realised = bp.move_vertex(&h, v);
            prop_assert_eq!(predicted, realised);
        }
        prop_assert!(bp.validate(&h).is_ok());
    }

    /// Total weights are conserved between the two parts.
    #[test]
    fn part_weights_sum_to_total(h in arb_hypergraph(), seed in 0u64..1000) {
        let nv = h.num_vertices() as usize;
        let sides: Vec<u8> = (0..nv).map(|v| ((v as u64 + seed) % 2) as u8).collect();
        let bp = VertexBipartition::new(&h, sides);
        prop_assert_eq!(
            bp.part_weight(0) + bp.part_weight(1),
            h.total_vertex_weight()
        );
    }

    /// Cut weight is bounded by the total net weight.
    #[test]
    fn cut_bounded_by_total_net_weight(h in arb_hypergraph(), seed in 0u64..1000) {
        let nv = h.num_vertices() as usize;
        let total: u64 = (0..h.num_nets()).map(|n| h.net_weight(n)).sum();
        let sides: Vec<u8> = (0..nv).map(|v| ((v as u64 * 7 + seed) % 2) as u8).collect();
        let bp = VertexBipartition::new(&h, sides);
        prop_assert!(bp.cut_weight() <= total);
    }
}

//! Property-based tests for the hypergraph substrate: structural
//! invariants, the cut/volume identity for every classical model, and the
//! incremental bipartition state.

use mg_hypergraph::{
    column_net_model, dedup_nets, fine_grain_model, row_net_model, Hypergraph, Idx,
    VertexBipartition,
};
use mg_sparse::{communication_volume, Coo};
use proptest::prelude::*;

fn arb_coo() -> impl Strategy<Value = Coo> {
    mg_test_support::strategies::arb_coo(12, 0, 39)
}

fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    mg_test_support::strategies::arb_hypergraph(1, 12, 1..6, 0..6, 0..10)
}

proptest! {
    #[test]
    fn builder_output_always_validates(h in arb_hypergraph()) {
        prop_assert!(h.validate().is_ok());
    }

    #[test]
    fn dedup_preserves_cut_for_any_sides(h in arb_hypergraph(), seed in 0u64..1000) {
        let d = dedup_nets(&h);
        prop_assert!(d.validate().is_ok());
        let nv = h.num_vertices() as usize;
        let sides: Vec<u8> = (0..nv).map(|v| ((v as u64 * 31 + seed) % 2) as u8).collect();
        let c1 = VertexBipartition::new(&h, sides.clone()).cut_weight();
        let c2 = VertexBipartition::new(&d, sides).cut_weight();
        prop_assert_eq!(c1, c2);
    }

    /// The central identity: hypergraph cut == communication volume of the
    /// induced nonzero partition, for all three classical models.
    #[test]
    fn model_cut_equals_matrix_volume(a in arb_coo(), seed in 0u64..1000) {
        for model in [row_net_model(&a), column_net_model(&a), fine_grain_model(&a)] {
            let nv = model.hypergraph.num_vertices() as usize;
            let sides: Vec<u8> = (0..nv)
                .map(|v| ((v as u64 * 17 + seed) % 2) as u8)
                .collect();
            let cut = VertexBipartition::new(&model.hypergraph, sides.clone()).cut_weight();
            let np = model.to_nonzero_partition(&a, &sides);
            prop_assert_eq!(cut, communication_volume(&a, &np), "model {:?}", model.kind);
        }
    }

    /// Moving a vertex twice restores the exact state; the incremental
    /// bookkeeping never drifts from a fresh rebuild.
    #[test]
    fn incremental_moves_never_drift(h in arb_hypergraph(), moves in proptest::collection::vec(0usize..12, 0..24)) {
        let nv = h.num_vertices() as usize;
        let sides: Vec<u8> = (0..nv).map(|v| (v % 2) as u8).collect();
        let mut bp = VertexBipartition::new(&h, sides);
        for &mv in &moves {
            let v = (mv % nv) as Idx;
            let predicted = bp.gain(&h, v);
            let realised = bp.move_vertex(&h, v);
            prop_assert_eq!(predicted, realised);
        }
        prop_assert!(bp.validate(&h).is_ok());
    }

    /// Total weights are conserved between the two parts.
    #[test]
    fn part_weights_sum_to_total(h in arb_hypergraph(), seed in 0u64..1000) {
        let nv = h.num_vertices() as usize;
        let sides: Vec<u8> = (0..nv).map(|v| ((v as u64 + seed) % 2) as u8).collect();
        let bp = VertexBipartition::new(&h, sides);
        prop_assert_eq!(
            bp.part_weight(0) + bp.part_weight(1),
            h.total_vertex_weight()
        );
    }

    /// Cut weight is bounded by the total net weight.
    #[test]
    fn cut_bounded_by_total_net_weight(h in arb_hypergraph(), seed in 0u64..1000) {
        let nv = h.num_vertices() as usize;
        let total: u64 = (0..h.num_nets()).map(|n| h.net_weight(n)).sum();
        let sides: Vec<u8> = (0..nv).map(|v| ((v as u64 * 7 + seed) % 2) as u8).collect();
        let bp = VertexBipartition::new(&h, sides);
        prop_assert!(bp.cut_weight() <= total);
    }

    /// Partition validity: the bipartition state assigns every vertex
    /// exactly one side, and keeps doing so under arbitrary move sequences.
    #[test]
    fn every_vertex_has_exactly_one_side(h in arb_hypergraph(), moves in proptest::collection::vec(0usize..12, 0..16)) {
        let nv = h.num_vertices() as usize;
        let sides: Vec<u8> = (0..nv).map(|v| (v % 2) as u8).collect();
        let mut bp = VertexBipartition::new(&h, sides);
        prop_assert_eq!(bp.sides().len(), nv);
        for &mv in &moves {
            bp.move_vertex(&h, (mv % nv) as Idx);
        }
        prop_assert_eq!(bp.sides().len(), nv);
        prop_assert!(bp.sides().iter().all(|&s| s < 2), "side out of range");
        let members: u64 = (0..2u8)
            .map(|p| bp.sides().iter().filter(|&&s| s == p).count() as u64)
            .sum();
        prop_assert_eq!(members, nv as u64, "each vertex must be in exactly one part");
        prop_assert!(bp.validate(&h).is_ok());
    }

    /// Model back-mappings are valid partitions: every nonzero of the
    /// matrix lands in exactly one of the two parts.
    #[test]
    fn model_partitions_assign_every_nonzero_exactly_once(a in arb_coo(), seed in 0u64..1000) {
        for model in [row_net_model(&a), column_net_model(&a), fine_grain_model(&a)] {
            let nv = model.hypergraph.num_vertices() as usize;
            let sides: Vec<u8> = (0..nv)
                .map(|v| ((v as u64 * 23 + seed) % 2) as u8)
                .collect();
            let np = model.to_nonzero_partition(&a, &sides);
            prop_assert!(np.check_against(&a).is_ok(), "model {:?}", model.kind);
            prop_assert_eq!(np.parts().len(), a.nnz());
            prop_assert!(np.parts().iter().all(|&p| p < 2));
            prop_assert_eq!(
                np.part_sizes().iter().sum::<u64>(),
                a.nnz() as u64,
                "parts must cover the nonzeros exactly once"
            );
        }
    }
}

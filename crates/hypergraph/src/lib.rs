//! # mg-hypergraph — hypergraph substrate
//!
//! Hypergraph partitioning is how the paper (and all of its baselines)
//! solves sparse matrix partitioning. This crate provides:
//!
//! * [`Hypergraph`] — a flat, cache-friendly hypergraph with vertex and net
//!   weights, storing both the net→pin and vertex→net incidence in CSR form;
//! * [`models`] — the three classical sparse-matrix models of §II
//!   (row-net, column-net, fine-grain) together with the back-mappings from
//!   a vertex partition to a nonzero partition of the matrix;
//! * [`VertexBipartition`] — incremental bipartition state (per-net pin
//!   counts, part weights, cut weight) shared by the FM refinement in
//!   `mg-partitioner` and the iterative refinement of `mg-core`;
//! * [`dedup`] — identical-net merging, used both at model construction and
//!   between coarsening levels.
//!
//! For a bipartition the connectivity metric `λ − 1` coincides with the
//! cut-net metric, so [`VertexBipartition::cut_weight`] *is* the
//! communication volume whenever net weights encode matrix rows/columns.

pub mod dedup;
pub mod hypergraph;
pub mod models;
pub mod partition;

pub use dedup::dedup_nets;
pub use hypergraph::{Hypergraph, HypergraphBuilder};
pub use models::{column_net_model, fine_grain_model, row_net_model, MatrixModel, ModelKind};
pub use partition::VertexBipartition;

/// Vertex / net index type (matches `mg_sparse::Idx`).
pub type Idx = mg_sparse::Idx;

//! The hypergraph data structure.
//!
//! Layout follows the idioms of high-performance partitioners (PaToH,
//! Mondriaan, hMetis): two flat CSR incidence arrays — nets→pins and
//! vertices→nets — so both "which vertices does this net touch" and "which
//! nets does this vertex belong to" are contiguous slices. All indices are
//! `u32`; weights are `u64`.

use crate::Idx;

/// An immutable weighted hypergraph `H = (V, N)`.
///
/// Invariants (checked by [`Hypergraph::validate`], enforced by the
/// builder):
/// * pins within a net are sorted ascending and unique,
/// * nets within a vertex's net list are sorted ascending and unique,
/// * the two incidence structures are transposes of each other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    vertex_weights: Vec<u64>,
    net_weights: Vec<u64>,
    /// nets → pins, CSR.
    net_ptr: Vec<usize>,
    net_pins: Vec<Idx>,
    /// vertices → nets, CSR (derived).
    vtx_ptr: Vec<usize>,
    vtx_nets: Vec<Idx>,
    total_vertex_weight: u64,
}

impl Hypergraph {
    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> Idx {
        self.vertex_weights.len() as Idx
    }

    /// Number of nets `|N|`.
    #[inline]
    pub fn num_nets(&self) -> Idx {
        self.net_weights.len() as Idx
    }

    /// Total number of pins `Σ_n |n|`.
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.net_pins.len()
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: Idx) -> u64 {
        self.vertex_weights[v as usize]
    }

    /// All vertex weights.
    #[inline]
    pub fn vertex_weights(&self) -> &[u64] {
        &self.vertex_weights
    }

    /// Sum of all vertex weights.
    #[inline]
    pub fn total_vertex_weight(&self) -> u64 {
        self.total_vertex_weight
    }

    /// Weight of net `n`.
    #[inline]
    pub fn net_weight(&self, n: Idx) -> u64 {
        self.net_weights[n as usize]
    }

    /// The vertices of net `n`, sorted ascending.
    #[inline]
    pub fn net_pins(&self, n: Idx) -> &[Idx] {
        &self.net_pins[self.net_ptr[n as usize]..self.net_ptr[n as usize + 1]]
    }

    /// Number of pins of net `n`.
    #[inline]
    pub fn net_size(&self, n: Idx) -> Idx {
        (self.net_ptr[n as usize + 1] - self.net_ptr[n as usize]) as Idx
    }

    /// The nets containing vertex `v`, sorted ascending.
    #[inline]
    pub fn vertex_nets(&self, v: Idx) -> &[Idx] {
        &self.vtx_nets[self.vtx_ptr[v as usize]..self.vtx_ptr[v as usize + 1]]
    }

    /// Number of nets containing vertex `v`.
    #[inline]
    pub fn degree(&self, v: Idx) -> Idx {
        (self.vtx_ptr[v as usize + 1] - self.vtx_ptr[v as usize]) as Idx
    }

    /// Iterates `(net, weight, pins)`.
    pub fn nets(&self) -> impl Iterator<Item = (Idx, u64, &[Idx])> + '_ {
        (0..self.num_nets()).map(move |n| (n, self.net_weight(n), self.net_pins(n)))
    }

    /// Exhaustively checks the structural invariants; for tests.
    pub fn validate(&self) -> Result<(), String> {
        let nv = self.num_vertices() as usize;
        for (n, _, pins) in self.nets() {
            if !pins.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("net {n} pins not sorted/unique: {pins:?}"));
            }
            if let Some(&last) = pins.last() {
                if last as usize >= nv {
                    return Err(format!("net {n} pin {last} out of bounds"));
                }
            }
        }
        // Transpose consistency.
        let mut pin_count = 0usize;
        for v in 0..self.num_vertices() {
            let nets = self.vertex_nets(v);
            if !nets.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("vertex {v} net list not sorted/unique"));
            }
            for &n in nets {
                if self.net_pins(n).binary_search(&v).is_err() {
                    return Err(format!("vertex {v} lists net {n} but is not a pin"));
                }
            }
            pin_count += nets.len();
        }
        if pin_count != self.num_pins() {
            return Err(format!(
                "pin count mismatch: vertex side {pin_count}, net side {}",
                self.num_pins()
            ));
        }
        if self.total_vertex_weight != self.vertex_weights.iter().sum::<u64>() {
            return Err("cached total vertex weight is stale".into());
        }
        Ok(())
    }
}

/// Incremental constructor for [`Hypergraph`].
///
/// Collects nets one at a time, then [`HypergraphBuilder::build`] sorts and
/// deduplicates pins, drops empty nets (an empty net can never be cut) and
/// derives the vertex→net incidence with a counting sort.
#[derive(Debug, Clone, Default)]
pub struct HypergraphBuilder {
    vertex_weights: Vec<u64>,
    net_weights: Vec<u64>,
    net_ptr: Vec<usize>,
    net_pins: Vec<Idx>,
    drop_singletons: bool,
}

impl HypergraphBuilder {
    /// Starts a hypergraph with the given per-vertex weights.
    pub fn new(vertex_weights: Vec<u64>) -> Self {
        assert!(vertex_weights.len() < Idx::MAX as usize);
        HypergraphBuilder {
            vertex_weights,
            net_weights: Vec::new(),
            net_ptr: vec![0],
            net_pins: Vec::new(),
            drop_singletons: false,
        }
    }

    /// Also drop single-pin nets at build time. A single-pin net can never
    /// be cut, so this loses nothing for cut or λ−1 metrics and shrinks the
    /// pin structure (the paper notes the same for dummy-only rows of `B`).
    pub fn drop_singleton_nets(mut self) -> Self {
        self.drop_singletons = true;
        self
    }

    /// Appends a net with the given weight and pins (any order, duplicates
    /// tolerated and removed at build).
    pub fn add_net(&mut self, weight: u64, pins: impl IntoIterator<Item = Idx>) {
        self.net_pins.extend(pins);
        self.net_ptr.push(self.net_pins.len());
        self.net_weights.push(weight);
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.net_weights.len()
    }

    /// Finalises the hypergraph.
    pub fn build(mut self) -> Hypergraph {
        let num_vertices = self.vertex_weights.len();
        // Sort/dedup pins per net in place, compacting as we go; optionally
        // drop empty and singleton nets.
        let mut write_pin = 0usize;
        let mut write_net = 0usize;
        let num_nets = self.net_weights.len();
        let min_size = if self.drop_singletons { 2 } else { 1 };
        let mut new_ptr = vec![0usize];
        for n in 0..num_nets {
            let (lo, hi) = (self.net_ptr[n], self.net_ptr[n + 1]);
            let pins = &mut self.net_pins[lo..hi];
            // Most producers (the medium-grain model, contraction) emit
            // pins already strictly increasing; skip the sort *and* the
            // dedup compaction for them.
            let sorted_unique = pins.windows(2).all(|w| w[0] < w[1]);
            let len = if sorted_unique {
                if cfg!(debug_assertions) {
                    for &p in pins.iter() {
                        debug_assert!((p as usize) < num_vertices, "pin out of bounds");
                    }
                }
                pins.len()
            } else {
                pins.sort_unstable();
                let mut len = 0usize;
                for idx in 0..pins.len() {
                    debug_assert!((pins[idx] as usize) < num_vertices, "pin out of bounds");
                    if len == 0 || pins[len - 1] != pins[idx] {
                        pins[len] = pins[idx];
                        len += 1;
                    }
                }
                len
            };
            if len >= min_size {
                self.net_pins.copy_within(lo..lo + len, write_pin);
                write_pin += len;
                new_ptr.push(write_pin);
                self.net_weights[write_net] = self.net_weights[n];
                write_net += 1;
            }
        }
        self.net_pins.truncate(write_pin);
        self.net_weights.truncate(write_net);
        let net_ptr = new_ptr;

        // Derive vertex → net incidence by counting sort over pins.
        let mut vtx_ptr = vec![0usize; num_vertices + 1];
        for &v in &self.net_pins {
            vtx_ptr[v as usize + 1] += 1;
        }
        for v in 0..num_vertices {
            vtx_ptr[v + 1] += vtx_ptr[v];
        }
        let mut vtx_nets = vec![0 as Idx; self.net_pins.len()];
        let mut next = vtx_ptr.clone();
        for n in 0..write_net {
            for p in net_ptr[n]..net_ptr[n + 1] {
                let v = self.net_pins[p] as usize;
                vtx_nets[next[v]] = n as Idx;
                next[v] += 1;
            }
        }

        let total_vertex_weight = self.vertex_weights.iter().sum();
        Hypergraph {
            vertex_weights: self.vertex_weights,
            net_weights: self.net_weights,
            net_ptr,
            net_pins: self.net_pins,
            vtx_ptr,
            vtx_nets,
            total_vertex_weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        // 3 vertices, nets {0,1}, {1,2}, {0,1,2}.
        let mut b = HypergraphBuilder::new(vec![1, 2, 3]);
        b.add_net(1, [0, 1]);
        b.add_net(1, [2, 1]);
        b.add_net(5, [2, 0, 1]);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let h = triangle();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_nets(), 3);
        assert_eq!(h.num_pins(), 7);
        assert_eq!(h.net_pins(1), &[1, 2]);
        assert_eq!(h.net_weight(2), 5);
        assert_eq!(h.vertex_weight(1), 2);
        assert_eq!(h.total_vertex_weight(), 6);
        assert_eq!(h.degree(1), 3);
        assert_eq!(h.vertex_nets(0), &[0, 2]);
        h.validate().unwrap();
    }

    #[test]
    fn pins_are_sorted_and_deduped() {
        let mut b = HypergraphBuilder::new(vec![1; 4]);
        b.add_net(1, [3, 1, 3, 0, 1]);
        let h = b.build();
        assert_eq!(h.net_pins(0), &[0, 1, 3]);
        h.validate().unwrap();
    }

    #[test]
    fn empty_nets_are_dropped() {
        let mut b = HypergraphBuilder::new(vec![1; 3]);
        b.add_net(1, []);
        b.add_net(2, [1]);
        let h = b.build();
        assert_eq!(h.num_nets(), 1);
        assert_eq!(h.net_pins(0), &[1]);
    }

    #[test]
    fn singleton_nets_dropped_when_requested() {
        let mut b = HypergraphBuilder::new(vec![1; 3]).drop_singleton_nets();
        b.add_net(1, [1]);
        b.add_net(2, [0, 2]);
        b.add_net(3, [2, 2, 2]);
        let h = b.build();
        assert_eq!(h.num_nets(), 1);
        assert_eq!(h.net_pins(0), &[0, 2]);
        assert_eq!(h.net_weight(0), 2);
        h.validate().unwrap();
    }

    #[test]
    fn vertex_incidence_is_transpose() {
        let h = triangle();
        for v in 0..h.num_vertices() {
            for &n in h.vertex_nets(v) {
                assert!(h.net_pins(n).contains(&v));
            }
        }
        for (n, _, pins) in h.nets() {
            for &v in pins {
                assert!(h.vertex_nets(v).contains(&n));
            }
        }
    }

    #[test]
    fn isolated_vertices_have_empty_net_lists() {
        let mut b = HypergraphBuilder::new(vec![1; 5]);
        b.add_net(1, [0, 4]);
        let h = b.build();
        for v in 1..4 {
            assert!(h.vertex_nets(v).is_empty());
            assert_eq!(h.degree(v), 0);
        }
        h.validate().unwrap();
    }
}

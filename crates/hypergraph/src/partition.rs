//! Incremental bipartition state over a hypergraph.
//!
//! [`VertexBipartition`] tracks, for every net, how many of its pins lie in
//! part 0, plus the two part weights and the total cut weight. Moving a
//! vertex updates all of this in `O(degree)` — the primitive both FM
//! refinement (`mg-partitioner`) and Algorithm 2's single-run KL
//! (`mg-core`) are built on.

use crate::{Hypergraph, Idx};

/// A 2-way vertex partition with incrementally maintained cut state.
#[derive(Debug, Clone)]
pub struct VertexBipartition {
    side: Vec<u8>,
    /// Per net: number of pins currently in part 0.
    pins_in_zero: Vec<Idx>,
    part_weight: [u64; 2],
    cut_weight: u64,
}

impl VertexBipartition {
    /// Builds the state for an initial assignment (`sides[v] ∈ {0, 1}`).
    pub fn new(h: &Hypergraph, side: Vec<u8>) -> Self {
        assert_eq!(side.len(), h.num_vertices() as usize);
        debug_assert!(side.iter().all(|&s| s <= 1));
        let mut part_weight = [0u64; 2];
        for v in 0..h.num_vertices() {
            part_weight[side[v as usize] as usize] += h.vertex_weight(v);
        }
        let mut pins_in_zero = vec![0 as Idx; h.num_nets() as usize];
        let mut cut_weight = 0u64;
        for (n, w, pins) in h.nets() {
            let zeros = pins.iter().filter(|&&v| side[v as usize] == 0).count() as Idx;
            pins_in_zero[n as usize] = zeros;
            if zeros != 0 && zeros != pins.len() as Idx {
                cut_weight += w;
            }
        }
        VertexBipartition {
            side,
            pins_in_zero,
            part_weight,
            cut_weight,
        }
    }

    /// All vertices on part 0.
    pub fn all_zero(h: &Hypergraph) -> Self {
        Self::new(h, vec![0; h.num_vertices() as usize])
    }

    /// Current side of vertex `v`.
    #[inline]
    pub fn side(&self, v: Idx) -> u8 {
        self.side[v as usize]
    }

    /// The full assignment.
    #[inline]
    pub fn sides(&self) -> &[u8] {
        &self.side
    }

    /// Consumes the state, returning the assignment vector.
    pub fn into_sides(self) -> Vec<u8> {
        self.side
    }

    /// Σ net weights over nets with pins in both parts. For bipartitions
    /// this equals the connectivity metric `Σ (λ_n − 1)·w(n)`.
    #[inline]
    pub fn cut_weight(&self) -> u64 {
        self.cut_weight
    }

    /// Vertex weight currently in `part`.
    #[inline]
    pub fn part_weight(&self, part: u8) -> u64 {
        self.part_weight[part as usize]
    }

    /// Number of pins of net `n` in part 0.
    #[inline]
    pub fn pins_in_zero(&self, n: Idx) -> Idx {
        self.pins_in_zero[n as usize]
    }

    /// Number of pins of net `n` in `part`.
    #[inline]
    pub fn pins_in(&self, h: &Hypergraph, n: Idx, part: u8) -> Idx {
        if part == 0 {
            self.pins_in_zero[n as usize]
        } else {
            h.net_size(n) - self.pins_in_zero[n as usize]
        }
    }

    /// `true` if net `n` has pins in both parts.
    #[inline]
    pub fn is_cut(&self, h: &Hypergraph, n: Idx) -> bool {
        let z = self.pins_in_zero[n as usize];
        z != 0 && z != h.net_size(n)
    }

    /// The FM gain of moving `v` to the other side: the decrease in cut
    /// weight if the move were applied now.
    pub fn gain(&self, h: &Hypergraph, v: Idx) -> i64 {
        let from = self.side[v as usize];
        let mut gain = 0i64;
        for &n in h.vertex_nets(v) {
            let size = h.net_size(n);
            if size < 2 {
                continue; // a single-pin net can never be cut or uncut
            }
            let w = h.net_weight(n) as i64;
            let in_from = self.pins_in(h, n, from);
            if in_from == 1 {
                gain += w; // v is the last pin on its side: move uncuts n
            } else if in_from == size {
                gain -= w; // net entirely on v's side: move cuts n
            }
        }
        gain
    }

    /// Flips vertex `v` to the other side, maintaining all incremental
    /// state. Returns the realised gain (cut decrease).
    pub fn move_vertex(&mut self, h: &Hypergraph, v: Idx) -> i64 {
        let from = self.side[v as usize];
        let to = 1 - from;
        let before = self.cut_weight;
        for &n in h.vertex_nets(v) {
            let w = h.net_weight(n);
            let size = h.net_size(n);
            let z = &mut self.pins_in_zero[n as usize];
            let in_from = if from == 0 { *z } else { size - *z };
            if in_from == size && size > 1 {
                self.cut_weight += w; // first pin leaves a pure net
            } else if in_from == 1 && size > 1 {
                self.cut_weight -= w; // last pin on v's side leaves
            }
            if from == 0 {
                *z -= 1;
            } else {
                *z += 1;
            }
        }
        let w = h.vertex_weight(v);
        self.part_weight[from as usize] -= w;
        self.part_weight[to as usize] += w;
        self.side[v as usize] = to;
        before as i64 - self.cut_weight as i64
    }

    /// Rebuilds the state from scratch and checks that the incremental
    /// bookkeeping matches; for tests and debug assertions.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), String> {
        let fresh = VertexBipartition::new(h, self.side.clone());
        if fresh.cut_weight != self.cut_weight {
            return Err(format!(
                "cut weight drifted: incremental {} vs fresh {}",
                self.cut_weight, fresh.cut_weight
            ));
        }
        if fresh.part_weight != self.part_weight {
            return Err(format!(
                "part weights drifted: incremental {:?} vs fresh {:?}",
                self.part_weight, fresh.part_weight
            ));
        }
        if fresh.pins_in_zero != self.pins_in_zero {
            return Err("pins_in_zero drifted".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn path_graph() -> Hypergraph {
        // 4 vertices in a path: nets {0,1}, {1,2}, {2,3}, weights 1.
        let mut b = HypergraphBuilder::new(vec![1; 4]);
        b.add_net(1, [0, 1]);
        b.add_net(1, [1, 2]);
        b.add_net(1, [2, 3]);
        b.build()
    }

    #[test]
    fn initial_cut_counts() {
        let h = path_graph();
        let bp = VertexBipartition::new(&h, vec![0, 0, 1, 1]);
        assert_eq!(bp.cut_weight(), 1); // only net {1,2} is cut
        assert_eq!(bp.part_weight(0), 2);
        assert_eq!(bp.part_weight(1), 2);
        assert!(bp.is_cut(&h, 1));
        assert!(!bp.is_cut(&h, 0));
    }

    #[test]
    fn gain_predicts_move() {
        let h = path_graph();
        let bp = VertexBipartition::new(&h, vec![0, 0, 1, 1]);
        for v in 0..4 {
            let mut trial = bp.clone();
            let predicted = trial.gain(&h, v);
            let realised = trial.move_vertex(&h, v);
            assert_eq!(predicted, realised, "vertex {v}");
            trial.validate(&h).unwrap();
        }
    }

    #[test]
    fn move_and_move_back_restores_state() {
        let h = path_graph();
        let orig = VertexBipartition::new(&h, vec![0, 1, 0, 1]);
        let mut bp = orig.clone();
        for v in 0..4 {
            bp.move_vertex(&h, v);
            bp.move_vertex(&h, v);
            assert_eq!(bp.cut_weight(), orig.cut_weight());
            assert_eq!(bp.sides(), orig.sides());
        }
    }

    #[test]
    fn weighted_nets_and_vertices() {
        let mut b = HypergraphBuilder::new(vec![3, 5]);
        b.add_net(7, [0, 1]);
        let h = b.build();
        let mut bp = VertexBipartition::new(&h, vec![0, 1]);
        assert_eq!(bp.cut_weight(), 7);
        assert_eq!(bp.part_weight(0), 3);
        let gain = bp.move_vertex(&h, 0);
        assert_eq!(gain, 7);
        assert_eq!(bp.cut_weight(), 0);
        assert_eq!(bp.part_weight(1), 8);
    }

    #[test]
    fn all_zero_has_no_cut() {
        let h = path_graph();
        let bp = VertexBipartition::all_zero(&h);
        assert_eq!(bp.cut_weight(), 0);
        assert_eq!(bp.part_weight(1), 0);
    }

    #[test]
    fn validate_catches_fresh_state() {
        let h = path_graph();
        let mut bp = VertexBipartition::new(&h, vec![0, 1, 1, 0]);
        for v in [0, 2, 3, 1, 0] {
            bp.move_vertex(&h, v);
            bp.validate(&h).unwrap();
        }
    }
}

//! Identical-net merging.
//!
//! Coarsening frequently produces nets with exactly the same pin set; for
//! cut purposes they are one net whose weight is the sum. Merging them
//! shrinks the pin structure and, more importantly, lets FM see the true
//! cost of separating the shared pins. Mondriaan and PaToH both do this.

use crate::{Hypergraph, HypergraphBuilder, Idx};
use std::collections::HashMap;

/// Returns a hypergraph in which nets with identical pin sets are merged
/// (weights summed), preserving vertex identities and weights. Net order
/// follows first occurrence.
pub fn dedup_nets(h: &Hypergraph) -> Hypergraph {
    // Hash pin slices; pins are sorted+unique, so slice equality is set
    // equality.
    let mut index: HashMap<&[Idx], usize> = HashMap::with_capacity(h.num_nets() as usize);
    let mut merged: Vec<(u64, &[Idx])> = Vec::with_capacity(h.num_nets() as usize);
    for (_, w, pins) in h.nets() {
        match index.entry(pins) {
            std::collections::hash_map::Entry::Occupied(e) => {
                merged[*e.get()].0 += w;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(merged.len());
                merged.push((w, pins));
            }
        }
    }
    let mut b = HypergraphBuilder::new(h.vertex_weights().to_vec());
    for (w, pins) in merged {
        b.add_net(w, pins.iter().copied());
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexBipartition;

    #[test]
    fn merges_identical_nets() {
        let mut b = HypergraphBuilder::new(vec![1; 3]);
        b.add_net(2, [0, 1]);
        b.add_net(3, [1, 0]); // same set, different order
        b.add_net(1, [1, 2]);
        let h = b.build();
        let d = dedup_nets(&h);
        assert_eq!(d.num_nets(), 2);
        assert_eq!(d.net_weight(0), 5);
        assert_eq!(d.net_pins(0), &[0, 1]);
        d.validate().unwrap();
    }

    #[test]
    fn cut_weight_is_preserved_for_any_assignment() {
        let mut b = HypergraphBuilder::new(vec![1; 4]);
        b.add_net(1, [0, 1]);
        b.add_net(4, [0, 1]);
        b.add_net(2, [2, 3]);
        b.add_net(1, [0, 3]);
        let h = b.build();
        let d = dedup_nets(&h);
        for mask in 0..16u32 {
            let sides: Vec<u8> = (0..4).map(|v| ((mask >> v) & 1) as u8).collect();
            let c1 = VertexBipartition::new(&h, sides.clone()).cut_weight();
            let c2 = VertexBipartition::new(&d, sides).cut_weight();
            assert_eq!(c1, c2, "mask {mask}");
        }
    }

    #[test]
    fn no_identical_nets_is_identity() {
        let mut b = HypergraphBuilder::new(vec![1; 3]);
        b.add_net(1, [0, 1]);
        b.add_net(1, [1, 2]);
        let h = b.build();
        let d = dedup_nets(&h);
        assert_eq!(h, d);
    }
}

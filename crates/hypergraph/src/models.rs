//! The classical hypergraph models for sparse matrix partitioning (§II).
//!
//! Each model turns an `m×n` matrix `A` into a [`Hypergraph`] whose vertex
//! partitions correspond to nonzero partitions of `A`, such that for a
//! bipartition the hypergraph cut weight equals the communication volume:
//!
//! | model | vertices | nets | produces |
//! |---|---|---|---|
//! | row-net | columns (n) | rows (m) | 1D column partitioning |
//! | column-net | rows (m) | columns (n) | 1D row partitioning |
//! | fine-grain | nonzeros (N) | rows + columns (m+n) | fully 2D partitioning |
//!
//! The medium-grain model lives in `mg-core` (it needs the `A = Ar + Ac`
//! split and the `B` matrix), but it reuses this crate's machinery.

use crate::{Hypergraph, HypergraphBuilder, Idx};
use mg_sparse::{Coo, Csc, Csr, NonzeroPartition};

/// Which classical model a [`MatrixModel`] was built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Vertices are columns; nets are rows. `B = A` in the paper's framing.
    RowNet,
    /// Vertices are rows; nets are columns. `B = Aᵀ`.
    ColumnNet,
    /// Vertices are nonzeros; nets are rows and columns. `B = F(A)`.
    FineGrain,
}

/// A hypergraph derived from a matrix, with enough provenance to translate
/// vertex partitions back into nonzero partitions.
#[derive(Debug, Clone)]
pub struct MatrixModel {
    /// The model used.
    pub kind: ModelKind,
    /// The derived hypergraph.
    pub hypergraph: Hypergraph,
}

impl MatrixModel {
    /// Translates a vertex bipartition (`sides[v] ∈ {0, 1}`) into a
    /// partition of the matrix nonzeros.
    pub fn to_nonzero_partition(&self, a: &Coo, sides: &[u8]) -> NonzeroPartition {
        let parts: Vec<Idx> = match self.kind {
            ModelKind::RowNet => a
                .entries()
                .iter()
                .map(|&(_, j)| sides[j as usize] as Idx)
                .collect(),
            ModelKind::ColumnNet => a
                .entries()
                .iter()
                .map(|&(i, _)| sides[i as usize] as Idx)
                .collect(),
            ModelKind::FineGrain => (0..a.nnz()).map(|k| sides[k] as Idx).collect(),
        };
        NonzeroPartition::new(2, parts).expect("sides are 0/1")
    }
}

/// Builds the row-net model: one vertex per column of `A` (weight = column
/// nonzero count), one net per row (weight 1). Single-pin nets are dropped —
/// they can never be cut.
pub fn row_net_model(a: &Coo) -> MatrixModel {
    let csr = Csr::from_coo(a);
    let weights: Vec<u64> = a.col_counts().iter().map(|&c| c as u64).collect();
    let mut b = HypergraphBuilder::new(weights).drop_singleton_nets();
    for i in 0..a.rows() {
        b.add_net(1, csr.row(i).iter().copied());
    }
    MatrixModel {
        kind: ModelKind::RowNet,
        hypergraph: b.build(),
    }
}

/// Builds the column-net model: one vertex per row of `A` (weight = row
/// nonzero count), one net per column (weight 1).
pub fn column_net_model(a: &Coo) -> MatrixModel {
    let csc = Csc::from_coo(a);
    let weights: Vec<u64> = a.row_counts().iter().map(|&c| c as u64).collect();
    let mut b = HypergraphBuilder::new(weights).drop_singleton_nets();
    for j in 0..a.cols() {
        b.add_net(1, csc.col(j).iter().copied());
    }
    MatrixModel {
        kind: ModelKind::ColumnNet,
        hypergraph: b.build(),
    }
}

/// Builds the fine-grain model: one vertex per nonzero (weight 1), one net
/// per row and one per column (weight 1 each).
pub fn fine_grain_model(a: &Coo) -> MatrixModel {
    let csr = Csr::from_coo(a);
    let csc = Csc::from_coo(a);
    let mut b = HypergraphBuilder::new(vec![1u64; a.nnz()]).drop_singleton_nets();
    for i in 0..a.rows() {
        b.add_net(1, csr.row_nonzero_ids(i).map(|k| k as Idx));
    }
    for j in 0..a.cols() {
        b.add_net(1, csc.col_nonzero_ids(j).iter().copied());
    }
    MatrixModel {
        kind: ModelKind::FineGrain,
        hypergraph: b.build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexBipartition;
    use mg_sparse::communication_volume;

    fn sample() -> Coo {
        // 3x4 pattern:
        //  x x . x
        //  . x x .
        //  x . x x
        Coo::new(
            3,
            4,
            vec![
                (0, 0),
                (0, 1),
                (0, 3),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 2),
                (2, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn row_net_sizes_and_weights() {
        let a = sample();
        let m = row_net_model(&a);
        let h = &m.hypergraph;
        assert_eq!(h.num_vertices(), 4);
        // All three rows have ≥ 2 pins, none dropped.
        assert_eq!(h.num_nets(), 3);
        assert_eq!(h.total_vertex_weight(), a.nnz() as u64);
        assert_eq!(h.vertex_weight(1), 2);
        h.validate().unwrap();
    }

    #[test]
    fn column_net_is_row_net_of_transpose() {
        let a = sample();
        let cn = column_net_model(&a);
        let rn_t = row_net_model(&a.transpose());
        assert_eq!(cn.hypergraph, rn_t.hypergraph);
    }

    #[test]
    fn fine_grain_sizes() {
        let a = sample();
        let m = fine_grain_model(&a);
        let h = &m.hypergraph;
        assert_eq!(h.num_vertices() as usize, a.nnz());
        assert_eq!(h.total_vertex_weight(), a.nnz() as u64);
        // Rows: 3,2,3 pins; columns: 2,2,2,2 — all kept.
        assert_eq!(h.num_nets(), 7);
        h.validate().unwrap();
    }

    /// For every model, the hypergraph cut of a bipartition must equal the
    /// communication volume of the induced nonzero partition.
    #[test]
    fn cut_equals_volume_for_all_models() {
        let a = sample();
        for model in [
            row_net_model(&a),
            column_net_model(&a),
            fine_grain_model(&a),
        ] {
            let h = &model.hypergraph;
            let nv = h.num_vertices() as usize;
            // Try a few assignments, including skewed ones.
            for pattern in 0..8u32 {
                let sides: Vec<u8> = (0..nv)
                    .map(|v| (v as u32 + pattern).is_multiple_of(3) as u8)
                    .collect();
                let bp = VertexBipartition::new(h, sides.clone());
                let np = model.to_nonzero_partition(&a, &sides);
                assert_eq!(
                    bp.cut_weight(),
                    communication_volume(&a, &np),
                    "model {:?}, pattern {pattern}",
                    model.kind
                );
            }
        }
    }

    #[test]
    fn singleton_rows_do_not_create_nets() {
        let a = Coo::new(3, 3, vec![(0, 0), (1, 0), (1, 1), (2, 2)]).unwrap();
        let m = row_net_model(&a);
        // Rows 0 and 2 have one nonzero each: only row 1 remains as a net.
        assert_eq!(m.hypergraph.num_nets(), 1);
    }

    #[test]
    fn empty_matrix_models() {
        let a = Coo::empty(3, 2);
        assert_eq!(row_net_model(&a).hypergraph.num_nets(), 0);
        assert_eq!(column_net_model(&a).hypergraph.num_vertices(), 3);
        assert_eq!(fine_grain_model(&a).hypergraph.num_vertices(), 0);
    }
}

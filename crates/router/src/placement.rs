//! Deterministic request placement: weighted rendezvous hashing over the
//! placement key.
//!
//! Every (key, shard id) pair hashes — via the workspace's shared
//! [`mix64`] finaliser — to a score scaled by the shard's weight; the
//! highest score wins. Rendezvous hashing gives the two properties the
//! router's contracts rest on:
//!
//! * **stability** — removing a shard remaps *only* the keys that shard
//!   owned (~1/K of the keyspace for K equal shards); every other key
//!   keeps its owner, so shard-local caches stay warm through topology
//!   changes;
//! * **purity** — placement is a function of (key, shard ids, weights)
//!   alone, never of load or arrival order, which is what makes a
//!   session's response stream identical for 1 shard and K shards.
//!
//! The weight of a shard is its configured capacity; requests whose
//! estimated cost (the backend registry's [`estimated_cost`] hook)
//! crosses [`RouterConfig::heavy_cost`](crate::RouterConfig) count
//! capacity *squared*, deterministically biasing expensive jobs toward
//! the larger shards while cheap traffic spreads ~proportionally.
//!
//! [`estimated_cost`]: mg_core::PartitionBackend::estimated_cost

use crate::config::ShardSpec;
use mg_core::service::{mix64, name_fingerprint};

/// Weighted rendezvous over explicit `(id, weight)` pairs: returns the
/// index of the winning entry. Ties (astronomically unlikely with mixed
/// 64-bit scores, but possible) break toward the lower index, keeping the
/// function total and deterministic.
///
/// Weights scale scores via the standard `-w / ln(u)` construction with
/// `u ∈ (0, 1)` derived from the mixed hash, so a weight-2 entry owns
/// twice the keyspace of a weight-1 entry in expectation.
pub fn rendezvous(key: u64, entries: &[(&str, f64)]) -> usize {
    rank(key, entries, 1).first().copied().unwrap_or(0)
}

/// Weighted rendezvous *ranking*: the indices of the top-`r` entries by
/// score, best first — the replica set of a key. `rank(key, e, 1)[0]`
/// is exactly [`rendezvous`]`(key, e)`, so `--replicas 1` preserves the
/// historical single-owner placement bit-for-bit. Ties break toward the
/// lower index; `r` is clamped to the entry count (and to ≥ 1).
pub fn rank(key: u64, entries: &[(&str, f64)], r: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = entries
        .iter()
        .enumerate()
        .map(|(index, (id, weight))| {
            let h = mix64(key ^ name_fingerprint(id));
            // Map the high 53 bits into (0, 1); the +1/+2 offsets keep u
            // strictly inside the open interval so ln(u) is finite and < 0.
            let u = ((h >> 11) + 1) as f64 / ((1u64 << 53) + 2) as f64;
            let score = if *weight > 0.0 {
                -weight / u.ln()
            } else {
                f64::NEG_INFINITY
            };
            (index, score)
        })
        .collect();
    // Stable order under equal scores = lower index first.
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(r.clamp(1, entries.len().max(1)));
    scored.into_iter().map(|(index, _)| index).collect()
}

fn weights(shards: &[ShardSpec], heavy: bool) -> Vec<(&str, f64)> {
    shards
        .iter()
        .map(|s| {
            let capacity = f64::from(s.capacity);
            let weight = if heavy { capacity * capacity } else { capacity };
            (s.id.as_str(), weight)
        })
        .collect()
}

/// Places a request key onto one of `shards`: rendezvous with weight =
/// capacity, or capacity² when the request is `heavy` (its estimated cost
/// crossed the router's threshold).
pub fn place(key: u64, shards: &[ShardSpec], heavy: bool) -> usize {
    rendezvous(key, &weights(shards, heavy))
}

/// The replica set of a key: the top-`r` shards by the same weighted
/// rendezvous scores [`place`] uses, best first. `place_replicas(k, s,
/// h, 1)` is `[place(k, s, h)]`; growing `r` only ever *appends* ranks,
/// so enabling replication never moves a key's primary.
pub fn place_replicas(key: u64, shards: &[ShardSpec], heavy: bool, r: usize) -> Vec<usize> {
    rank(key, &weights(shards, heavy), r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(n: usize) -> Vec<ShardSpec> {
        (0..n)
            .map(|i| ShardSpec {
                id: format!("s{i}"),
                addr: format!("127.0.0.1:{}", 7100 + i),
                capacity: 1,
            })
            .collect()
    }

    #[test]
    fn single_shard_owns_everything() {
        let t = shards(1);
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(place(key, &t, false), 0);
            assert_eq!(place(key, &t, true), 0);
        }
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let t = shards(5);
        for key in 0..500u64 {
            let a = place(mix64(key), &t, false);
            assert!(a < 5);
            assert_eq!(a, place(mix64(key), &t, false));
        }
    }

    #[test]
    fn capacity_weights_shift_ownership_toward_bigger_shards() {
        let mut t = shards(2);
        t[1].capacity = 3;
        let mut counts = [0usize; 2];
        for key in 0..4000u64 {
            counts[place(mix64(key), &t, false)] += 1;
        }
        // Expected 1:3 split; accept a generous band around it.
        assert!(
            counts[1] > 2 * counts[0],
            "capacity-3 shard should dominate: {counts:?}"
        );
        // Heavy jobs square the weights (1:9), pushing further.
        let mut heavy = [0usize; 2];
        for key in 0..4000u64 {
            heavy[place(mix64(key), &t, true)] += 1;
        }
        assert!(
            heavy[1] > counts[1],
            "heavy traffic should skew harder toward capacity: {heavy:?} vs {counts:?}"
        );
    }

    #[test]
    fn rank_1_is_exactly_the_single_owner_placement() {
        let t = shards(5);
        for key in 0..500u64 {
            let key = mix64(key);
            for heavy in [false, true] {
                assert_eq!(
                    place_replicas(key, &t, heavy, 1),
                    vec![place(key, &t, heavy)]
                );
            }
        }
    }

    #[test]
    fn growing_r_appends_ranks_without_moving_earlier_ones() {
        let mut t = shards(5);
        t[2].capacity = 3;
        for key in 0..200u64 {
            let key = mix64(key);
            let full = place_replicas(key, &t, false, 5);
            assert_eq!(full.len(), 5);
            for r in 1..=5usize {
                assert_eq!(place_replicas(key, &t, false, r), full[..r].to_vec());
            }
            // A ranking is a permutation prefix: no shard appears twice.
            let mut seen = full.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), 5, "ranking repeats a shard: {full:?}");
        }
    }

    #[test]
    fn r_clamps_to_the_shard_count() {
        let t = shards(3);
        assert_eq!(place_replicas(7, &t, false, 10).len(), 3);
        assert_eq!(place_replicas(7, &t, false, 0).len(), 1);
    }

    #[test]
    fn second_ranks_spread_like_first_ranks() {
        // The rank-2 replica of a key is itself ~uniform over the other
        // shards — the property that keeps failover load spread out.
        let t = shards(4);
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[place_replicas(mix64(key), &t, false, 2)[1]] += 1;
        }
        for (index, count) in counts.iter().enumerate() {
            assert!(
                *count > 500,
                "shard {index} underrepresented at rank 2: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_remaps_only_its_keys() {
        let t = shards(4);
        let mut shrunk = t.clone();
        let removed = shrunk.remove(2);
        let mut moved = 0usize;
        let total = 2000u64;
        for key in 0..total {
            let before = &t[place(mix64(key), &t, false)];
            let after = &shrunk[place(mix64(key), &shrunk, false)];
            if before.id == removed.id {
                moved += 1;
            } else {
                assert_eq!(before.id, after.id, "key {key} moved without cause");
            }
        }
        // The removed shard owned ~1/4 of the keys; only those moved.
        assert!(moved > total as usize / 8 && moved < total as usize / 2);
    }
}

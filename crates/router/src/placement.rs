//! Deterministic request placement: weighted rendezvous hashing over the
//! placement key.
//!
//! Every (key, shard id) pair hashes — via the workspace's shared
//! [`mix64`] finaliser — to a score scaled by the shard's weight; the
//! highest score wins. Rendezvous hashing gives the two properties the
//! router's contracts rest on:
//!
//! * **stability** — removing a shard remaps *only* the keys that shard
//!   owned (~1/K of the keyspace for K equal shards); every other key
//!   keeps its owner, so shard-local caches stay warm through topology
//!   changes;
//! * **purity** — placement is a function of (key, shard ids, weights)
//!   alone, never of load or arrival order, which is what makes a
//!   session's response stream identical for 1 shard and K shards.
//!
//! The weight of a shard is its configured capacity; requests whose
//! estimated cost (the backend registry's [`estimated_cost`] hook)
//! crosses [`RouterConfig::heavy_cost`](crate::RouterConfig) count
//! capacity *squared*, deterministically biasing expensive jobs toward
//! the larger shards while cheap traffic spreads ~proportionally.
//!
//! [`estimated_cost`]: mg_core::PartitionBackend::estimated_cost

use crate::config::ShardSpec;
use mg_core::service::{mix64, name_fingerprint};

/// Weighted rendezvous over explicit `(id, weight)` pairs: returns the
/// index of the winning entry. Ties (astronomically unlikely with mixed
/// 64-bit scores, but possible) break toward the lower index, keeping the
/// function total and deterministic.
///
/// Weights scale scores via the standard `-w / ln(u)` construction with
/// `u ∈ (0, 1)` derived from the mixed hash, so a weight-2 entry owns
/// twice the keyspace of a weight-1 entry in expectation.
pub fn rendezvous(key: u64, entries: &[(&str, f64)]) -> usize {
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (index, (id, weight)) in entries.iter().enumerate() {
        let h = mix64(key ^ name_fingerprint(id));
        // Map the high 53 bits into (0, 1); the +1/+2 offsets keep u
        // strictly inside the open interval so ln(u) is finite and < 0.
        let u = ((h >> 11) + 1) as f64 / ((1u64 << 53) + 2) as f64;
        let score = if *weight > 0.0 {
            -weight / u.ln()
        } else {
            f64::NEG_INFINITY
        };
        if score > best_score {
            best_score = score;
            best = index;
        }
    }
    best
}

/// Places a request key onto one of `shards`: rendezvous with weight =
/// capacity, or capacity² when the request is `heavy` (its estimated cost
/// crossed the router's threshold).
pub fn place(key: u64, shards: &[ShardSpec], heavy: bool) -> usize {
    let entries: Vec<(&str, f64)> = shards
        .iter()
        .map(|s| {
            let capacity = f64::from(s.capacity);
            let weight = if heavy { capacity * capacity } else { capacity };
            (s.id.as_str(), weight)
        })
        .collect();
    rendezvous(key, &entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(n: usize) -> Vec<ShardSpec> {
        (0..n)
            .map(|i| ShardSpec {
                id: format!("s{i}"),
                addr: format!("127.0.0.1:{}", 7100 + i),
                capacity: 1,
            })
            .collect()
    }

    #[test]
    fn single_shard_owns_everything() {
        let t = shards(1);
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(place(key, &t, false), 0);
            assert_eq!(place(key, &t, true), 0);
        }
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let t = shards(5);
        for key in 0..500u64 {
            let a = place(mix64(key), &t, false);
            assert!(a < 5);
            assert_eq!(a, place(mix64(key), &t, false));
        }
    }

    #[test]
    fn capacity_weights_shift_ownership_toward_bigger_shards() {
        let mut t = shards(2);
        t[1].capacity = 3;
        let mut counts = [0usize; 2];
        for key in 0..4000u64 {
            counts[place(mix64(key), &t, false)] += 1;
        }
        // Expected 1:3 split; accept a generous band around it.
        assert!(
            counts[1] > 2 * counts[0],
            "capacity-3 shard should dominate: {counts:?}"
        );
        // Heavy jobs square the weights (1:9), pushing further.
        let mut heavy = [0usize; 2];
        for key in 0..4000u64 {
            heavy[place(mix64(key), &t, true)] += 1;
        }
        assert!(
            heavy[1] > counts[1],
            "heavy traffic should skew harder toward capacity: {heavy:?} vs {counts:?}"
        );
    }

    #[test]
    fn removing_a_shard_remaps_only_its_keys() {
        let t = shards(4);
        let mut shrunk = t.clone();
        let removed = shrunk.remove(2);
        let mut moved = 0usize;
        let total = 2000u64;
        for key in 0..total {
            let before = &t[place(mix64(key), &t, false)];
            let after = &shrunk[place(mix64(key), &shrunk, false)];
            if before.id == removed.id {
                moved += 1;
            } else {
                assert_eq!(before.id, after.id, "key {key} moved without cause");
            }
        }
        // The removed shard owned ~1/4 of the keys; only those moved.
        assert!(moved > total as usize / 8 && moved < total as usize / 2);
    }
}

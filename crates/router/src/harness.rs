//! The in-process multi-shard harness: spawn K real `mg-server` shard
//! engines on loopback TCP and a router over them, all inside one test
//! process.
//!
//! This is what the topology-determinism tests drive (the acceptance
//! contract: one session's response bytes are identical for 1 shard and
//! K shards at any thread count), and a convenient way to demo the
//! router without deploying anything.

use crate::config::{ShardSpec, Topology};
use crate::router::{Router, RouterConfig};
use mg_server::{Service, ServiceConfig, TcpServer};
use std::sync::Arc;

/// One spawned loopback shard: the serving engine plus its TCP front
/// end.
pub struct LocalShard {
    /// The spec a router uses to reach this shard.
    pub spec: ShardSpec,
    service: Arc<Service>,
    server: Option<TcpServer>,
}

impl LocalShard {
    /// `true` once the shard's engine began draining (e.g. because a
    /// routed in-band `shutdown` reached it).
    pub fn is_shutting_down(&self) -> bool {
        self.service.is_shutting_down()
    }
}

/// K loopback shards, ready to put a router in front of.
pub struct LocalCluster {
    /// The spawned shards, in id order (`s0`, `s1`, …) unless the config
    /// hook assigned explicit `shard_id`s.
    pub shards: Vec<LocalShard>,
}

impl LocalCluster {
    /// Spawns `k` shards on ephemeral loopback ports. `make_config`
    /// builds each shard's [`ServiceConfig`] from its index — return the
    /// same configuration for every index (the default closure does) to
    /// uphold the topology-determinism contract; set
    /// [`ServiceConfig::shard_id`] per index to exercise shard
    /// diagnostics.
    pub fn spawn(k: usize, make_config: impl Fn(usize) -> ServiceConfig) -> LocalCluster {
        let shards = (0..k)
            .map(|index| {
                let config = make_config(index);
                let id = config
                    .shard_id
                    .clone()
                    .unwrap_or_else(|| format!("s{index}"));
                let capacity = 1;
                let service = Service::start(config);
                let server = TcpServer::bind(service.clone(), "127.0.0.1:0")
                    .expect("binding loopback shard");
                LocalShard {
                    spec: ShardSpec {
                        id,
                        addr: server.local_addr.to_string(),
                        capacity,
                    },
                    service,
                    server: Some(server),
                }
            })
            .collect();
        LocalCluster { shards }
    }

    /// The topology covering every spawned shard.
    pub fn topology(&self) -> Topology {
        Topology::new(self.shards.iter().map(|s| s.spec.clone()).collect())
            .expect("spawned shards form a valid topology")
    }

    /// A router over the cluster.
    pub fn router(&self, config: RouterConfig) -> Router {
        Router::new(self.topology(), config).expect("cluster router config")
    }

    /// Tears the cluster down: initiates shutdown on every shard engine
    /// (idempotent — a routed in-band `shutdown` will already have done
    /// it) and joins every TCP front end.
    pub fn shutdown(mut self) {
        for shard in &self.shards {
            shard.service.initiate_shutdown();
        }
        for shard in &mut self.shards {
            if let Some(server) = shard.server.take() {
                server.join();
            }
        }
    }
}

//! The in-process multi-shard harness: spawn K real `mg-server` shard
//! engines on loopback TCP and a router over them, all inside one test
//! process.
//!
//! This is what the topology-determinism tests drive (the acceptance
//! contract: one session's response bytes are identical for 1 shard and
//! K shards at any thread count), and a convenient way to demo the
//! router without deploying anything.
//!
//! [`LocalCluster::spawn_killable`] additionally fronts each shard with a
//! [`ShardProxy`] — a transparent byte pump the harness can sever
//! abruptly, giving failover tests the observable behaviour of a
//! `SIGKILL`ed shard process (connections torn down, new dials refused)
//! without leaving a real engine un-joinable. A killed proxy can be
//! revived on the same port to exercise prober re-admission.

use crate::config::{ShardSpec, Topology};
use crate::router::{Router, RouterConfig};
use mg_server::{Service, ServiceConfig, TcpServer};
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// A transparent TCP proxy in front of one shard, built to die on
/// command: [`ShardProxy::kill`] severs every proxied connection and
/// stops accepting, so a router dialing the proxy's port afterwards gets
/// `connection refused` — exactly what a killed shard process looks like.
pub struct ShardProxy {
    /// The address the router should dial (the proxy's listener).
    pub local_addr: SocketAddr,
    killed: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ShardProxy {
    /// Fronts `target` on an ephemeral loopback port.
    pub fn spawn(target: &str) -> std::io::Result<ShardProxy> {
        ShardProxy::spawn_on("127.0.0.1:0", target)
    }

    /// Fronts `target` on a specific address — how a killed proxy is
    /// revived on the port the topology already names.
    pub fn spawn_on(addr: &str, target: &str) -> std::io::Result<ShardProxy> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let killed = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = std::thread::Builder::new()
            .name("shard-proxy-accept".into())
            .spawn({
                let killed = killed.clone();
                let conns = conns.clone();
                let target = target.to_string();
                move || accept_loop(&listener, &target, &killed, &conns)
            })?;
        Ok(ShardProxy {
            local_addr,
            killed,
            conns,
            accept: Some(accept),
        })
    }

    /// Kills the proxy: the listener closes (subsequent dials are
    /// refused) and every proxied connection is shut down both ways, so
    /// peers on both sides see an abrupt EOF mid-whatever-they-were-doing.
    pub fn kill(mut self) {
        self.killed.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            // The accept loop exits within one poll tick, dropping the
            // listener and releasing the port before we return.
            let _ = accept.join();
        }
        let conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
        for conn in conns.iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for ShardProxy {
    fn drop(&mut self) {
        self.killed.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    target: &str,
    killed: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
) {
    loop {
        if killed.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => {
                // Refuse-by-dropping if the backing shard is unreachable.
                let Ok(server) = TcpStream::connect(target) else {
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                {
                    let mut tracked = conns.lock().unwrap_or_else(PoisonError::into_inner);
                    if let (Ok(c3), Ok(s3)) = (client.try_clone(), server.try_clone()) {
                        tracked.push(c3);
                        tracked.push(s3);
                    }
                }
                spawn_pump(client, s2);
                spawn_pump(server, c2);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// One direction of a proxied connection: copy bytes until either side
/// closes, then tear both streams down so the other direction unblocks.
fn spawn_pump(mut from: TcpStream, mut to: TcpStream) {
    let _ = std::thread::Builder::new()
        .name("shard-proxy-pump".into())
        .spawn(move || {
            let mut buf = [0u8; 8192];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if std::io::Write::write_all(&mut to, &buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
        });
}

/// One spawned loopback shard: the serving engine plus its TCP front
/// end, optionally behind a killable [`ShardProxy`].
pub struct LocalShard {
    /// The spec a router uses to reach this shard (the proxy's address
    /// when the shard is killable).
    pub spec: ShardSpec,
    service: Arc<Service>,
    server: Option<TcpServer>,
    /// The engine's direct address — what a revived proxy re-targets.
    server_addr: String,
    proxy: Option<ShardProxy>,
}

impl LocalShard {
    /// `true` once the shard's engine began draining (e.g. because a
    /// routed in-band `shutdown` reached it).
    pub fn is_shutting_down(&self) -> bool {
        self.service.is_shutting_down()
    }

    /// Abruptly kills the shard as the router sees it: severs every
    /// connection through the proxy and refuses new dials. Only valid on
    /// [`LocalCluster::spawn_killable`] shards (panics otherwise — a
    /// direct shard cannot be killed without orphaning its engine).
    pub fn kill(&mut self) {
        self.proxy
            .take()
            .expect("kill() needs a spawn_killable cluster (or the shard is already dead)")
            .kill();
    }

    /// Revives a killed shard on the same address the topology names, so
    /// the router's health prober can re-admit it.
    pub fn revive(&mut self) {
        assert!(self.proxy.is_none(), "shard is already alive");
        let proxy = ShardProxy::spawn_on(&self.spec.addr, &self.server_addr)
            .expect("reviving shard proxy on its old port");
        self.proxy = Some(proxy);
    }
}

/// K loopback shards, ready to put a router in front of.
pub struct LocalCluster {
    /// The spawned shards, in id order (`s0`, `s1`, …) unless the config
    /// hook assigned explicit `shard_id`s.
    pub shards: Vec<LocalShard>,
}

impl LocalCluster {
    /// Spawns `k` shards on ephemeral loopback ports. `make_config`
    /// builds each shard's [`ServiceConfig`] from its index — return the
    /// same configuration for every index (the default closure does) to
    /// uphold the topology-determinism contract; set
    /// [`ServiceConfig::shard_id`] per index to exercise shard
    /// diagnostics.
    pub fn spawn(k: usize, make_config: impl Fn(usize) -> ServiceConfig) -> LocalCluster {
        LocalCluster::spawn_inner(k, make_config, false)
    }

    /// Like [`LocalCluster::spawn`], but each shard sits behind a
    /// [`ShardProxy`] so tests can [`LocalShard::kill`] (and
    /// [`LocalShard::revive`]) it mid-stream.
    pub fn spawn_killable(k: usize, make_config: impl Fn(usize) -> ServiceConfig) -> LocalCluster {
        LocalCluster::spawn_inner(k, make_config, true)
    }

    fn spawn_inner(
        k: usize,
        make_config: impl Fn(usize) -> ServiceConfig,
        killable: bool,
    ) -> LocalCluster {
        let shards = (0..k)
            .map(|index| {
                let config = make_config(index);
                let id = config
                    .shard_id
                    .clone()
                    .unwrap_or_else(|| format!("s{index}"));
                let capacity = 1;
                let service = Service::start(config);
                let server = TcpServer::bind(service.clone(), "127.0.0.1:0")
                    .expect("binding loopback shard");
                let server_addr = server.local_addr.to_string();
                let (addr, proxy) = if killable {
                    let proxy = ShardProxy::spawn(&server_addr).expect("spawning shard proxy");
                    (proxy.local_addr.to_string(), Some(proxy))
                } else {
                    (server_addr.clone(), None)
                };
                LocalShard {
                    spec: ShardSpec { id, addr, capacity },
                    service,
                    server: Some(server),
                    server_addr,
                    proxy,
                }
            })
            .collect();
        LocalCluster { shards }
    }

    /// The topology covering every spawned shard.
    pub fn topology(&self) -> Topology {
        Topology::new(self.shards.iter().map(|s| s.spec.clone()).collect())
            .expect("spawned shards form a valid topology")
    }

    /// A router over the cluster.
    pub fn router(&self, config: RouterConfig) -> Router {
        Router::new(self.topology(), config).expect("cluster router config")
    }

    /// Tears the cluster down: kills any remaining proxies, initiates
    /// shutdown on every shard engine (idempotent — a routed in-band
    /// `shutdown` will already have done it) and joins every TCP front
    /// end.
    pub fn shutdown(mut self) {
        for shard in &mut self.shards {
            if let Some(proxy) = shard.proxy.take() {
                proxy.kill();
            }
        }
        for shard in &self.shards {
            shard.service.initiate_shutdown();
        }
        for shard in &mut self.shards {
            if let Some(server) = shard.server.take() {
                server.join();
            }
        }
    }
}

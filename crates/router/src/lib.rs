//! # mg-router — the sharding front end
//!
//! A standalone process that speaks the exact `mg-server` JSON-lines
//! protocol (stdio + TCP), places every partition request onto one of N
//! downstream `mg-server` shards, and streams responses back in
//! per-session submission order:
//!
//! ```text
//! client ──▶ mg-router ──▶ mg-server shard s0
//!                     ├──▶ mg-server shard s1
//!                     └──▶ mg-server shard s2
//! ```
//!
//! Placement is a **weighted rendezvous hash** over the request's
//! placement key — the matrix content fingerprint, or the collection-name
//! fingerprint for named matrices ([`mg_core::service::placement_key`],
//! shared with the shard cache) — weighted by shard capacity, with
//! requests above the configured estimated-cost threshold biased toward
//! larger shards. Repeats short-circuit at a router-level LRU before they
//! cross the wire; per-shard connections replay their unanswered
//! requests after a reconnect; a bounded in-flight window per shard
//! provides backpressure.
//!
//! With `--replicas R` the top-R rendezvous ranks of each key form its
//! **replica set**: requests go to the best-ranked replica currently
//! believed alive (a background `ping` prober plus connection outcomes
//! maintain liveness), and when a replica dies its in-order pending
//! queue is replayed against the next rank — invisible to clients,
//! because every replica computes byte-identical response bytes.
//!
//! The service determinism contract extends to topology: a session's
//! response bytes are a pure function of its request bytes for *any*
//! shard count, *any* replication factor, at any thread count, even
//! across replica failures (shards configured identically; see
//! `crates/server/PROTOCOL.md` § Routing and § Replication).
//!
//! ```
//! use mg_router::{LocalCluster, RouterConfig};
//! use mg_server::ServiceConfig;
//!
//! let cluster = LocalCluster::spawn(2, |_| ServiceConfig::default());
//! let router = cluster.router(RouterConfig::default());
//! let mut out = Vec::new();
//! router.run_session(&b"{\"id\":1,\"op\":\"ping\"}\n"[..], &mut out);
//! assert_eq!(
//!     String::from_utf8(out).unwrap(),
//!     "{\"id\":1,\"status\":\"ok\",\"op\":\"ping\"}\n"
//! );
//! cluster.shutdown();
//! ```

pub mod cache;
pub mod config;
pub mod harness;
mod metrics;
pub mod placement;
pub mod router;
pub mod transport;

pub use cache::RouterKey;
pub use config::{ShardSpec, Topology, TopologyError, MAX_SHARD_CAPACITY};
pub use harness::{LocalCluster, LocalShard, ShardProxy};
pub use placement::{place, place_replicas, rank, rendezvous};
pub use router::{Router, RouterConfig, RouterSummary};
pub use transport::{serve_pipe, serve_stdio, RouterTcpServer};

//! Router transports: the same JSON-lines protocol over a stdio pipe or
//! a threaded TCP listener — the exact scheme `mg-server` uses, so a
//! client cannot tell a router from a shard by transport behaviour.
//! Like a shard, each connection starts in JSON-lines mode and may
//! negotiate binary frames via `hello` (see `mg_server::codec`); the
//! router's *shard-facing* connections always stay on JSON lines.

use crate::router::{write_router_responses, Router, RouterSummary};
use mg_server::codec::{UnitKind, UnitScanner};
use std::io::{BufRead, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Runs one routed session over arbitrary reader/writer halves (pipe
/// mode). Returns when the input is exhausted or an in-band `shutdown`
/// arrives.
pub fn serve_pipe<R: BufRead, W: Write + Send>(
    router: &Router,
    input: R,
    output: W,
) -> RouterSummary {
    router.run_session(input, output)
}

/// Runs a routed session over the process's stdin/stdout.
pub fn serve_stdio(router: &Router) -> RouterSummary {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    router.run_session(stdin.lock(), stdout)
}

/// A running TCP front end for the router.
pub struct RouterTcpServer {
    /// The bound address (useful with port 0).
    pub local_addr: SocketAddr,
    accept_thread: std::thread::JoinHandle<()>,
    live_sessions: Arc<AtomicUsize>,
}

impl RouterTcpServer {
    /// Binds `addr` and starts accepting connections, one routed session
    /// thread per connection over the shared cache and pools.
    pub fn bind(router: Arc<Router>, addr: &str) -> std::io::Result<RouterTcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let live_sessions = Arc::new(AtomicUsize::new(0));
        let live = live_sessions.clone();
        let accept_thread = std::thread::Builder::new()
            .name("mg-router-accept".into())
            .spawn(move || accept_loop(&router, &listener, &live))?;
        Ok(RouterTcpServer {
            local_addr,
            accept_thread,
            live_sessions,
        })
    }

    /// Session handles the accept loop currently retains: sessions still
    /// running plus any finished ones not yet reaped by the next sweep.
    /// Bounded by the number of concurrently open connections.
    pub fn live_sessions(&self) -> usize {
        self.live_sessions.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop (and every session it spawned) to end —
    /// that is, until an in-band `shutdown` (or
    /// [`Router::initiate_shutdown`]) stops the router.
    pub fn join(self) {
        self.accept_thread.join().expect("accept loop panicked");
    }
}

fn accept_loop(router: &Arc<Router>, listener: &TcpListener, live: &Arc<AtomicUsize>) {
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        // Reap finished sessions on every pass so a long-lived router
        // holds handles only for connections that are actually open.
        sessions.retain(|session| !session.is_finished());
        live.store(sessions.len(), Ordering::SeqCst);
        if router.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let session_router = router.clone();
                match std::thread::Builder::new()
                    .name("mg-router-session".into())
                    .spawn(move || tcp_session(&session_router, stream))
                {
                    Ok(handle) => sessions.push(handle),
                    Err(_) => break,
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for session in sessions {
        let _ = session.join();
    }
    live.store(0, Ordering::SeqCst);
}

/// One TCP connection: a timeout-aware read loop on this thread, the
/// response writer on a second thread over a cloned stream handle (the
/// same split as an `mg-server` TCP session).
fn tcp_session(router: &Arc<Router>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut driver = router.open_session();
    let shared = driver.shared();
    let writer = std::thread::Builder::new()
        .name("mg-router-writer".into())
        .spawn(move || {
            let mut out = write_half;
            write_router_responses(&shared, &mut out)
        });
    let Ok(writer) = writer else {
        driver.finish();
        return;
    };

    // Raw reads into the unit scanner: a request split across packets (or
    // across read timeouts) stays buffered until its terminator — or its
    // declared frame length — arrives, whatever the codec.
    let mut scanner = UnitScanner::new();
    let mut chunk = [0u8; 16 * 1024];
    'session: loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Client closed the connection. A final request without
                // its `\n` terminator is still a request — process the
                // buffered remainder instead of silently dropping it.
                if let Some(tail) = scanner.take_eof_remainder() {
                    driver.handle_unit(UnitKind::Line, &tail);
                }
                break;
            }
            Ok(n) => {
                scanner.push(&chunk[..n]);
                loop {
                    match scanner.next_unit() {
                        Ok(Some((kind, range))) => {
                            let go = driver.handle_unit(kind, scanner.bytes(&range));
                            if let Some(codec) = driver.take_codec_switch() {
                                scanner.set_codec(codec);
                            }
                            if !go {
                                break 'session;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Unresynchronisable framing violation: answer
                            // with a typed error, then end the session.
                            driver.protocol_error(&e.message);
                            break 'session;
                        }
                    }
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if router.is_shutting_down() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    driver.finish();
    if let Ok(written) = writer.join() {
        driver.record_responses(written);
    }
}

//! Router transports: the same JSON-lines protocol over a stdio pipe or
//! a threaded TCP listener — the exact scheme `mg-server` uses, so a
//! client cannot tell a router from a shard by transport behaviour.

use crate::router::{write_router_responses, Router, RouterSummary};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Runs one routed session over arbitrary reader/writer halves (pipe
/// mode). Returns when the input is exhausted or an in-band `shutdown`
/// arrives.
pub fn serve_pipe<R: BufRead, W: Write + Send>(
    router: &Router,
    input: R,
    output: W,
) -> RouterSummary {
    router.run_session(input, output)
}

/// Runs a routed session over the process's stdin/stdout.
pub fn serve_stdio(router: &Router) -> RouterSummary {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    router.run_session(stdin.lock(), stdout)
}

/// A running TCP front end for the router.
pub struct RouterTcpServer {
    /// The bound address (useful with port 0).
    pub local_addr: SocketAddr,
    accept_thread: std::thread::JoinHandle<()>,
}

impl RouterTcpServer {
    /// Binds `addr` and starts accepting connections, one routed session
    /// thread per connection over the shared cache and pools.
    pub fn bind(router: Arc<Router>, addr: &str) -> std::io::Result<RouterTcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let accept_thread = std::thread::Builder::new()
            .name("mg-router-accept".into())
            .spawn(move || accept_loop(&router, &listener))?;
        Ok(RouterTcpServer {
            local_addr,
            accept_thread,
        })
    }

    /// Waits for the accept loop (and every session it spawned) to end —
    /// that is, until an in-band `shutdown` (or
    /// [`Router::initiate_shutdown`]) stops the router.
    pub fn join(self) {
        self.accept_thread.join().expect("accept loop panicked");
    }
}

fn accept_loop(router: &Arc<Router>, listener: &TcpListener) {
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if router.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let session_router = router.clone();
                match std::thread::Builder::new()
                    .name("mg-router-session".into())
                    .spawn(move || tcp_session(&session_router, stream))
                {
                    Ok(handle) => sessions.push(handle),
                    Err(_) => break,
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for session in sessions {
        let _ = session.join();
    }
}

/// One TCP connection: a timeout-aware read loop on this thread, the
/// response writer on a second thread over a cloned stream handle (the
/// same split as an `mg-server` TCP session).
fn tcp_session(router: &Arc<Router>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut driver = router.open_session();
    let shared = driver.shared();
    let writer = std::thread::Builder::new()
        .name("mg-router-writer".into())
        .spawn(move || {
            let mut out = write_half;
            write_router_responses(&shared, &mut out)
        });
    let Ok(writer) = writer else {
        driver.finish();
        return;
    };

    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break,
            Ok(_) => {
                let line = String::from_utf8_lossy(&buf);
                let go = driver.handle_line(line.trim_end_matches(['\r', '\n']));
                buf.clear();
                if !go {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if router.is_shutting_down() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    driver.finish();
    if let Ok(written) = writer.join() {
        driver.record_responses(written);
    }
}

//! Topology configuration: the shard list and its validation.
//!
//! A topology is an ordered list of [`ShardSpec`]s. The order matters
//! only for display; placement depends on the shard *ids* and weights
//! (rendezvous hashing, see [`crate::placement`]), so appending a shard
//! never remaps traffic between the existing ones.

use std::fmt;

/// One downstream `mg-server` shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Stable identity of the shard — the rendezvous hash input, so
    /// renaming a shard remaps its keys while re-addressing (moving the
    /// same id to a new host:port) does not.
    pub id: String,
    /// TCP address (`host:port`) the shard listens on.
    pub addr: String,
    /// Relative capacity weight (≥ 1); a shard with capacity 2 attracts
    /// roughly twice the keys of a capacity-1 shard.
    pub capacity: u32,
}

/// A validated shard list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    shards: Vec<ShardSpec>,
}

/// Typed topology configuration errors — all fatal at startup, never
/// discovered on the first request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No shards configured (an empty `--shards` list).
    Empty,
    /// Two shards share an id; placement would be ambiguous.
    DuplicateId(String),
    /// Two shards share an address; one process would own 2× the keys
    /// silently.
    DuplicateAddr(String),
    /// A shard capacity outside `1..=`[`MAX_SHARD_CAPACITY`]: capacity 0
    /// can never win a rendezvous score (the shard would silently attract
    /// no keys), and absurdly large capacities degrade the weighted-score
    /// arithmetic (capacities are squared for heavy jobs).
    InvalidCapacity {
        /// The offending shard's id.
        id: String,
        /// The rejected capacity as written.
        capacity: u64,
    },
    /// A `--shards` element that does not parse as `[id=]host:port[*cap]`.
    BadSpec(String),
}

/// Largest accepted shard capacity. Far above any sane weight ratio, yet
/// small enough that capacity² (the heavy-job bias) stays comfortably
/// inside exact `f64` integer range.
pub const MAX_SHARD_CAPACITY: u32 = 1_000_000;

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology has zero shards"),
            TopologyError::DuplicateId(id) => {
                write!(f, "topology lists shard id {id:?} more than once")
            }
            TopologyError::DuplicateAddr(addr) => {
                write!(f, "topology lists shard address {addr:?} more than once")
            }
            TopologyError::InvalidCapacity { id, capacity } => {
                write!(
                    f,
                    "shard {id:?} has invalid capacity {capacity}; capacities must be \
                     between 1 and {MAX_SHARD_CAPACITY}"
                )
            }
            TopologyError::BadSpec(spec) => {
                write!(
                    f,
                    "bad shard spec {spec:?}; expected [id=]host:port[*capacity]"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

impl Topology {
    /// Validates and adopts a shard list.
    pub fn new(shards: Vec<ShardSpec>) -> Result<Topology, TopologyError> {
        if shards.is_empty() {
            return Err(TopologyError::Empty);
        }
        let mut ids = std::collections::HashSet::new();
        let mut addrs = std::collections::HashSet::new();
        for shard in &shards {
            if shard.capacity == 0 || shard.capacity > MAX_SHARD_CAPACITY {
                return Err(TopologyError::InvalidCapacity {
                    id: shard.id.clone(),
                    capacity: u64::from(shard.capacity),
                });
            }
            if !ids.insert(shard.id.as_str()) {
                return Err(TopologyError::DuplicateId(shard.id.clone()));
            }
            if !addrs.insert(shard.addr.as_str()) {
                return Err(TopologyError::DuplicateAddr(shard.addr.clone()));
            }
        }
        Ok(Topology { shards })
    }

    /// Parses a `--shards` list: comma-separated `[id=]host:port[*capacity]`
    /// elements. Ids default to `s0`, `s1`, … in list order; capacities
    /// default to 1.
    pub fn parse(list: &str) -> Result<Topology, TopologyError> {
        let mut shards = Vec::new();
        for (index, raw) in list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .enumerate()
        {
            let (id, rest) = match raw.split_once('=') {
                Some((id, rest)) if !id.is_empty() && !id.contains(':') => (id.to_string(), rest),
                Some(_) => return Err(TopologyError::BadSpec(raw.to_string())),
                None => (format!("s{index}"), raw),
            };
            let (addr, capacity) = match rest.split_once('*') {
                Some((addr, cap)) => {
                    // Parse wide so `*0` and absurdly large capacities
                    // both fail as *capacity* errors (not generic parse
                    // errors); Topology::new range-checks the narrow copy.
                    let wide: u64 = cap
                        .parse()
                        .map_err(|_| TopologyError::BadSpec(raw.to_string()))?;
                    if wide == 0 || wide > u64::from(MAX_SHARD_CAPACITY) {
                        return Err(TopologyError::InvalidCapacity { id, capacity: wide });
                    }
                    (addr, wide as u32)
                }
                None => (rest, 1),
            };
            if !addr.contains(':') || addr.is_empty() {
                return Err(TopologyError::BadSpec(raw.to_string()));
            }
            shards.push(ShardSpec {
                id,
                addr: addr.to_string(),
                capacity,
            });
        }
        Topology::new(shards)
    }

    /// The shards, in configuration order.
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always `false`: an empty topology does not validate.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Index of the shard with `id`, if any.
    pub fn index_of(&self, id: &str) -> Option<usize> {
        self.shards.iter().position(|s| s.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_address_lists_with_default_ids() {
        let t = Topology::parse("127.0.0.1:7101, 127.0.0.1:7102").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.shards()[0].id, "s0");
        assert_eq!(t.shards()[1].id, "s1");
        assert_eq!(t.shards()[1].addr, "127.0.0.1:7102");
        assert_eq!(t.shards()[0].capacity, 1);
    }

    #[test]
    fn parses_named_and_weighted_shards() {
        let t = Topology::parse("big=10.0.0.1:7077*4,small=10.0.0.2:7077").unwrap();
        assert_eq!(t.shards()[0].id, "big");
        assert_eq!(t.shards()[0].capacity, 4);
        assert_eq!(t.shards()[1].capacity, 1);
        assert_eq!(t.index_of("small"), Some(1));
        assert_eq!(t.index_of("absent"), None);
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        assert_eq!(Topology::parse(""), Err(TopologyError::Empty));
        assert_eq!(Topology::parse(" , ,"), Err(TopologyError::Empty));
        assert_eq!(Topology::new(vec![]), Err(TopologyError::Empty));
    }

    #[test]
    fn duplicate_ids_and_addresses_are_typed_errors() {
        assert_eq!(
            Topology::parse("a=h:1,a=h:2"),
            Err(TopologyError::DuplicateId("a".into()))
        );
        assert_eq!(
            Topology::parse("a=h:1,b=h:1"),
            Err(TopologyError::DuplicateAddr("h:1".into()))
        );
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in ["noport", "x=*2", "a=h:1*many", "a=h:1*-3", "=h:1"] {
            assert!(
                matches!(Topology::parse(bad), Err(TopologyError::BadSpec(_))),
                "{bad:?} should be a BadSpec"
            );
        }
    }

    #[test]
    fn out_of_range_capacities_are_typed_invalid_capacity_errors() {
        // Zero would never win a rendezvous score; absurdly large values
        // degrade the weighting arithmetic. Both reject as InvalidCapacity.
        assert_eq!(
            Topology::parse("a=h:1*0"),
            Err(TopologyError::InvalidCapacity {
                id: "a".into(),
                capacity: 0,
            })
        );
        assert_eq!(
            Topology::parse("h:1*18446744073709551615"),
            Err(TopologyError::InvalidCapacity {
                id: "s0".into(),
                capacity: u64::MAX,
            })
        );
        assert_eq!(
            Topology::parse(&format!("big=h:1*{}", u64::from(MAX_SHARD_CAPACITY) + 1)),
            Err(TopologyError::InvalidCapacity {
                id: "big".into(),
                capacity: u64::from(MAX_SHARD_CAPACITY) + 1,
            })
        );
        // The boundary itself is accepted.
        let t = Topology::parse(&format!("h:1*{MAX_SHARD_CAPACITY}")).unwrap();
        assert_eq!(t.shards()[0].capacity, MAX_SHARD_CAPACITY);
        // The constructed (non-parsed) path range-checks too.
        let direct = Topology::new(vec![ShardSpec {
            id: "x".into(),
            addr: "h:9".into(),
            capacity: 0,
        }]);
        assert_eq!(
            direct,
            Err(TopologyError::InvalidCapacity {
                id: "x".into(),
                capacity: 0,
            })
        );
        assert!(TopologyError::InvalidCapacity {
            id: "x".into(),
            capacity: 0,
        }
        .to_string()
        .contains("invalid capacity 0"));
    }

    #[test]
    fn errors_render_their_context() {
        assert!(TopologyError::Empty.to_string().contains("zero shards"));
        assert!(TopologyError::DuplicateId("x".into())
            .to_string()
            .contains("\"x\""));
    }
}

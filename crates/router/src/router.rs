//! The routing engine: placement, per-shard connections with
//! reconnect-and-replay, the router-level response cache, and per-session
//! ordered response streams.
//!
//! ## Execution model
//!
//! A session (one per stdio pipe or TCP connection) decodes request
//! lines, answers what it can locally (parse errors, `ping`, `stats`,
//! router-cache hits), and forwards the rest — the *original raw line*,
//! so shards decode exactly what the client sent — to the shard that
//! [`crate::placement`] picks for the request's placement key. Each
//! session holds at most one connection per shard; responses come back in
//! FIFO order per connection and are re-sequenced into client submission
//! order by the same sliding-slot scheme `mg-server` uses.
//!
//! ## Failure handling
//!
//! Every forwarded-but-unanswered request stays in the connection's
//! pending queue. When a connection dies (EOF, read or write error), the
//! reader thread redials and replays the queue in order; if the shard
//! stays unreachable after the configured attempts, the pending requests
//! fail with typed `shard_unavailable` errors and later requests for that
//! shard attempt one fresh revival each. The pending queue is also the
//! backpressure bound: submissions block while `window` requests are in
//! flight to one shard.
//!
//! ## Determinism
//!
//! Placement is a pure function of the request, shards are configured
//! identically, and the router cache only ever serves a byte-rewrite
//! (fresh id, `cached: true`) of a line some shard produced — so a
//! session's response stream is the same for 1 shard and K shards at any
//! thread count (see `PROTOCOL.md` § Routing for the exact contract).

use crate::cache::{cached_true_of, with_id, RouterKey};
use crate::config::Topology;
use crate::placement::place;
use mg_core::service::{placement_key, ErrorCode, RequestOp};
use mg_core::{parse_backend, DEFAULT_BACKEND};
use mg_server::json::obj;
use mg_server::{protocol, Json, LruCache};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Configuration of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Largest number of forwarded-but-unanswered requests per shard
    /// connection; full ⇒ the session's reader blocks (backpressure).
    pub window: usize,
    /// Router-level LRU response cache capacity in entries; 0 disables.
    pub cache_capacity: usize,
    /// Backend assumed for cost estimation when a request carries no
    /// `backend` field. Must match the shards' default backend for the
    /// cost model to reflect what actually runs.
    pub default_backend: &'static str,
    /// Estimated-cost threshold ([`mg_core::PartitionBackend::estimated_cost`])
    /// above which a request counts shard capacity *squared* in placement,
    /// biasing heavy jobs toward larger shards.
    pub heavy_cost: u64,
    /// Dial attempts per connect/reconnect before a shard counts as down.
    pub connect_attempts: u32,
    /// Delay between dial attempts.
    pub retry_delay: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            window: 64,
            cache_capacity: 128,
            default_backend: DEFAULT_BACKEND,
            heavy_cost: 10_000_000,
            connect_attempts: 5,
            retry_delay: Duration::from_millis(200),
        }
    }
}

/// Per-session counters (the router-side analogue of
/// [`mg_server::SessionSummary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterSummary {
    /// Request lines decoded (including failed ones).
    pub received: u64,
    /// Responses written.
    pub responses: u64,
    /// Requests forwarded to a shard.
    pub forwarded: u64,
    /// Requests short-circuited by the router cache.
    pub cache_hits: u64,
    /// Locally answered error responses.
    pub errors: u64,
}

pub(crate) struct RouterCore {
    pub(crate) topology: Topology,
    pub(crate) config: RouterConfig,
    cache: Mutex<LruCache<RouterKey, String>>,
    /// Idle, reader-less connections per shard, reusable across sessions.
    pools: Vec<Mutex<Vec<TcpStream>>>,
    shutdown: AtomicBool,
    /// Guards the one-shot forwarding of `shutdown` to every shard.
    teardown_done: Mutex<bool>,
}

/// A running router: validated topology + shared cache + connection
/// pools. Sessions attach via [`Router::run_session`] (pipe transports)
/// or the TCP front end in [`crate::transport`].
pub struct Router {
    pub(crate) core: Arc<RouterCore>,
}

impl Router {
    /// Builds a router over a validated topology. Fails (with a message)
    /// only when `config.default_backend` is not a registered backend.
    pub fn new(topology: Topology, mut config: RouterConfig) -> Result<Router, String> {
        config.default_backend = parse_backend(config.default_backend)?.name();
        let pools = (0..topology.len())
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        Ok(Router {
            core: Arc::new(RouterCore {
                cache: Mutex::new(LruCache::new(config.cache_capacity)),
                pools,
                shutdown: AtomicBool::new(false),
                teardown_done: Mutex::new(false),
                topology,
                config,
            }),
        })
    }

    /// The validated topology.
    pub fn topology(&self) -> &Topology {
        &self.core.topology
    }

    /// Dials every shard once (with the configured retries), parking the
    /// connections in the pools — the startup barrier of `mgpart route`,
    /// so a mistyped address fails before the first request.
    pub fn connect_all(&self) -> Result<(), String> {
        for (index, shard) in self.core.topology.shards().iter().enumerate() {
            let stream = self.core.dial(index).map_err(|e| {
                format!("connecting to shard {:?} at {}: {e}", shard.id, shard.addr)
            })?;
            self.core.pools[index]
                .lock()
                .expect("pool mutex poisoned")
                .push(stream);
        }
        Ok(())
    }

    /// `true` once an in-band `shutdown` has been observed.
    pub fn is_shutting_down(&self) -> bool {
        self.core.shutdown.load(Ordering::SeqCst)
    }

    /// Stops accepting forwarded work (the out-of-band analogue of the
    /// `shutdown` op; does not contact the shards).
    pub fn initiate_shutdown(&self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
    }

    /// Runs one full session over a generic line transport: requests are
    /// read from `input` on the calling thread, responses stream to
    /// `output` from a writer thread in submission order. Returns when
    /// the input is exhausted (EOF or in-band `shutdown`) and every
    /// response has been written.
    pub fn run_session<R: BufRead, W: Write + Send>(
        &self,
        input: R,
        mut output: W,
    ) -> RouterSummary {
        let mut driver = RouterSessionDriver::new(self.core.clone());
        let shared = driver.shared();
        crossbeam::scope(|scope| {
            let out = &mut output;
            let writer = scope.spawn(move |_| write_router_responses(&shared, out));
            for line in input.lines() {
                let Ok(line) = line else { break };
                if !driver.handle_line(&line) {
                    break;
                }
            }
            driver.finish();
            driver.summary.responses = writer.join().expect("router writer panicked");
        })
        .expect("router session scope");
        driver.summary
    }

    /// Opens a session driver for a custom transport (the TCP front end);
    /// most callers want [`Router::run_session`].
    pub(crate) fn open_session(&self) -> RouterSessionDriver {
        RouterSessionDriver::new(self.core.clone())
    }
}

impl RouterCore {
    fn dial(&self, shard: usize) -> std::io::Result<TcpStream> {
        let addr = &self.topology.shards()[shard].addr;
        let mut last = None;
        for attempt in 0..self.config.connect_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.config.retry_delay);
            }
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("no attempts made")))
    }

    /// A connection for `shard`: pooled if available, freshly dialed
    /// otherwise.
    fn take_connection(&self, shard: usize) -> std::io::Result<TcpStream> {
        if let Some(stream) = self.pools[shard].lock().expect("pool mutex poisoned").pop() {
            return Ok(stream);
        }
        self.dial(shard)
    }

    fn return_connection(&self, shard: usize, stream: TcpStream) {
        self.pools[shard]
            .lock()
            .expect("pool mutex poisoned")
            .push(stream);
    }

    fn cache_get(&self, key: &RouterKey) -> Option<String> {
        self.cache
            .lock()
            .expect("cache mutex poisoned")
            .get(key)
            .cloned()
    }

    fn cache_put(&self, key: RouterKey, line: String) {
        self.cache
            .lock()
            .expect("cache mutex poisoned")
            .insert(key, line);
    }

    /// Forwards `shutdown` to every shard exactly once (whichever session
    /// gets there first wins), draining each: the shard answers all
    /// earlier requests on the connection, acks the shutdown, and exits.
    /// `session_conns` donates the calling session's live (drained)
    /// connections so shards are not redialed needlessly.
    fn teardown_shards(&self, mut session_conns: Vec<Option<TcpStream>>) {
        let mut done = self.teardown_done.lock().expect("teardown mutex poisoned");
        if *done {
            return;
        }
        *done = true;
        session_conns.resize_with(self.topology.len(), || None);
        for (index, slot) in session_conns.iter_mut().enumerate() {
            let stream = slot
                .take()
                .or_else(|| self.pools[index].lock().expect("pool mutex poisoned").pop())
                .or_else(|| self.dial(index).ok());
            let Some(mut stream) = stream else { continue };
            if stream.write_all(b"{\"op\":\"shutdown\"}\n").is_err() || stream.flush().is_err() {
                continue;
            }
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            // Await the ack so the shard has fully drained before we
            // report our own shutdown; the content is irrelevant.
            let mut ack = String::new();
            let _ = BufReader::new(stream).read_line(&mut ack);
        }
    }
}

/// One forwarded-but-unanswered request.
struct PendingEntry {
    /// Session submission index (the response slot to fill).
    index: u64,
    /// The original request line, byte-for-byte — what a replay resends.
    raw: String,
    /// Router-cache key for cacheable (partition) requests.
    key: Option<RouterKey>,
    /// The request id, kept so a failure response can echo it without
    /// re-parsing the raw line.
    id: Json,
}

/// State shared between a session and one shard-connection reader thread.
struct ConnShared {
    /// The live stream; the reader swaps it on reconnect, the session
    /// writes requests through it. Lock order: `stream` before `pending`.
    stream: Mutex<TcpStream>,
    pending: Mutex<VecDeque<PendingEntry>>,
    /// Signalled whenever `pending` shrinks (window space / drain).
    space: Condvar,
    /// Session is over; exit once `pending` is empty.
    stop: AtomicBool,
    /// The connection failed for good (reconnects exhausted); pending
    /// requests were failed with `shard_unavailable`.
    dead: AtomicBool,
}

struct ShardConn {
    shared: Arc<ConnShared>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl ShardConn {
    /// Stops the reader (it notices within its read timeout) and joins
    /// it, returning the stream if the connection is still clean enough
    /// to pool (no pending, not dead).
    fn retire(mut self) -> Option<TcpStream> {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        let clean = !self.shared.dead.load(Ordering::SeqCst)
            && self
                .shared
                .pending
                .lock()
                .expect("pending mutex poisoned")
                .is_empty();
        if !clean {
            return None;
        }
        let stream = self.shared.stream.lock().expect("stream mutex poisoned");
        stream.try_clone().ok()
    }
}

/// Response slots of one router session (the sliding-window scheme of
/// `mg-server`, with deferred `stats` slots so the counters cover exactly
/// the delivered prefix).
enum RSlot {
    Pending,
    Ready {
        line: String,
        /// The response says `cached: true` (shard- or router-served).
        cached: bool,
        /// The response is an error line.
        error: bool,
    },
    Stats {
        id: Json,
        received: u64,
    },
}

impl RSlot {
    fn is_resolved(&self) -> bool {
        !matches!(self, RSlot::Pending)
    }
}

#[derive(Default)]
struct RouterSlots {
    base: u64,
    slots: VecDeque<RSlot>,
    input_done: bool,
}

#[derive(Default)]
pub(crate) struct RouterShared {
    state: Mutex<RouterSlots>,
    ready: Condvar,
}

impl RouterShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, RouterSlots> {
        self.state.lock().expect("router session mutex poisoned")
    }

    fn push_pending(&self) {
        self.lock().slots.push_back(RSlot::Pending);
    }

    fn set(&self, index: u64, slot: RSlot) {
        let mut state = self.lock();
        let offset = (index - state.base) as usize;
        state.slots[offset] = slot;
        self.ready.notify_all();
    }

    fn set_line(&self, index: u64, line: String, cached: bool, error: bool) {
        self.set(
            index,
            RSlot::Ready {
                line,
                cached,
                error,
            },
        );
    }

    fn finish_input(&self) {
        self.lock().input_done = true;
        self.ready.notify_all();
    }
}

/// Writer half of a router session: emits responses in submission order,
/// tallying `cached: true` and error lines as they pass so a deferred
/// `stats` slot reports exactly its prefix. Returns the number of
/// responses written.
pub(crate) fn write_router_responses<W: Write>(shared: &RouterShared, output: &mut W) -> u64 {
    let mut written = 0u64;
    let mut cache_hits = 0u64;
    let mut errors = 0u64;
    loop {
        let slot = {
            let mut state = shared.lock();
            loop {
                if matches!(state.slots.front(), Some(slot) if slot.is_resolved()) {
                    break;
                }
                if state.input_done && state.slots.front().is_none() {
                    return written;
                }
                state = shared
                    .ready
                    .wait(state)
                    .expect("router session mutex poisoned");
            }
            state.base += 1;
            state.slots.pop_front().expect("checked front")
        };
        let line = match slot {
            RSlot::Pending => unreachable!("writer only pops resolved slots"),
            RSlot::Ready {
                line,
                cached,
                error,
            } => {
                if cached {
                    cache_hits += 1;
                }
                if error {
                    errors += 1;
                }
                line
            }
            RSlot::Stats { id, received } => obj(vec![
                ("id", id),
                ("status", Json::Str("ok".into())),
                ("op", Json::Str("stats".into())),
                ("received", Json::UInt(received)),
                ("cache_hits", Json::UInt(cache_hits)),
                ("errors", Json::UInt(errors)),
            ])
            .to_string(),
        };
        if output.write_all(line.as_bytes()).is_ok()
            && output.write_all(b"\n").is_ok()
            && output.flush().is_ok()
        {
            written += 1;
        }
    }
}

/// Reader half of one shard connection: pairs response lines with the
/// FIFO pending queue, fills session slots, feeds the router cache, and
/// owns reconnect-and-replay.
fn reader_loop(
    core: Arc<RouterCore>,
    shard: usize,
    conn: Arc<ConnShared>,
    slots: Arc<RouterShared>,
) {
    'connection: loop {
        let handle = {
            let stream = conn.stream.lock().expect("stream mutex poisoned");
            match stream.try_clone() {
                Ok(h) => h,
                Err(_) => {
                    fail_connection(&core, shard, &conn, &slots);
                    return;
                }
            }
        };
        let _ = handle.set_read_timeout(Some(Duration::from_millis(50)));
        let mut reader = BufReader::new(handle);
        let mut buf: Vec<u8> = Vec::new();
        loop {
            let idle = conn
                .pending
                .lock()
                .expect("pending mutex poisoned")
                .is_empty();
            if conn.stop.load(Ordering::SeqCst) && idle {
                return;
            }
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => {
                    // Shard closed the connection. Idle close (e.g. a
                    // shard restarting) just retires this reader; a close
                    // with pending work triggers reconnect-and-replay.
                    // `dead` is set under the pending lock so a racing
                    // `forward` either sees the flag before enqueueing or
                    // its entry is seen here — never an orphaned request.
                    let retired = {
                        let pending = conn.pending.lock().expect("pending mutex poisoned");
                        if pending.is_empty() {
                            conn.dead.store(true, Ordering::SeqCst);
                            true
                        } else {
                            false
                        }
                    };
                    if retired {
                        return;
                    }
                    if !reconnect_and_replay(&core, shard, &conn) {
                        fail_connection(&core, shard, &conn, &slots);
                        return;
                    }
                    buf.clear();
                    continue 'connection;
                }
                Ok(_) => {
                    if buf.last() != Some(&b'\n') {
                        // Timeout mid-line: keep the prefix and retry.
                        continue;
                    }
                    let line = String::from_utf8_lossy(&buf)
                        .trim_end_matches(['\r', '\n'])
                        .to_string();
                    buf.clear();
                    deliver_response(&core, &conn, &slots, &line);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    if !reconnect_and_replay(&core, shard, &conn) {
                        fail_connection(&core, shard, &conn, &slots);
                        return;
                    }
                    buf.clear();
                    continue 'connection;
                }
            }
        }
    }
}

/// Matches one shard response line with the oldest pending request:
/// stores cacheable successes in the router cache (as their
/// `cached: true` variant) and resolves the session slot.
fn deliver_response(core: &RouterCore, conn: &ConnShared, slots: &RouterShared, line: &str) {
    let entry = {
        let mut pending = conn.pending.lock().expect("pending mutex poisoned");
        let entry = pending.pop_front();
        conn.space.notify_all();
        entry
    };
    let Some(entry) = entry else {
        // A response with no matching request: protocol violation; drop
        // the line rather than corrupting slot order.
        return;
    };
    // One parse per response line: metadata and the cache-stored rewrite
    // both come from this document.
    let doc = Json::parse(line).ok();
    let status = doc
        .as_ref()
        .and_then(|d| d.get("status"))
        .and_then(Json::as_str)
        .unwrap_or("");
    let cached = doc
        .as_ref()
        .and_then(|d| d.get("cached"))
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let error = status == "error";
    if status == "ok" {
        if let (Some(key), Some(doc)) = (entry.key, &doc) {
            if let Some(stored) = cached_true_of(doc) {
                core.cache_put(key, stored);
            }
        }
    }
    slots.set_line(entry.index, line.to_string(), cached, error);
}

/// Redials the shard and replays the pending queue in order. Returns
/// `false` when the shard stayed unreachable through the configured
/// attempts.
fn reconnect_and_replay(core: &RouterCore, shard: usize, conn: &ConnShared) -> bool {
    let Ok(fresh) = core.dial(shard) else {
        return false;
    };
    let mut stream = conn.stream.lock().expect("stream mutex poisoned");
    let pending = conn.pending.lock().expect("pending mutex poisoned");
    for entry in pending.iter() {
        if fresh.peer_addr().is_err() {
            return false;
        }
        let mut w = &fresh;
        if w.write_all(entry.raw.as_bytes()).is_err()
            || w.write_all(b"\n").is_err()
            || w.flush().is_err()
        {
            return false;
        }
    }
    *stream = fresh;
    true
}

/// Fails every pending request of a lost connection with a typed
/// `shard_unavailable` error and marks the connection dead.
fn fail_connection(core: &RouterCore, shard: usize, conn: &ConnShared, slots: &RouterShared) {
    conn.dead.store(true, Ordering::SeqCst);
    let spec = &core.topology.shards()[shard];
    let mut pending = conn.pending.lock().expect("pending mutex poisoned");
    while let Some(entry) = pending.pop_front() {
        let line = protocol::error_response(
            &entry.id,
            ErrorCode::ShardUnavailable,
            &format!(
                "shard {:?} at {} became unreachable; request lost after replay attempts",
                spec.id, spec.addr
            ),
            Some(&spec.id),
        );
        slots.set_line(entry.index, line, false, true);
    }
    conn.space.notify_all();
}

/// Reader half of a router session, usable from any transport: feed it
/// request lines, run [`write_router_responses`] from a writer thread,
/// and call [`RouterSessionDriver::finish`] when the input ends.
pub(crate) struct RouterSessionDriver {
    core: Arc<RouterCore>,
    shared: Arc<RouterShared>,
    conns: Vec<Option<ShardConn>>,
    pub(crate) summary: RouterSummary,
    next_index: u64,
}

impl RouterSessionDriver {
    fn new(core: Arc<RouterCore>) -> Self {
        let shards = core.topology.len();
        RouterSessionDriver {
            core,
            shared: Arc::new(RouterShared::default()),
            conns: (0..shards).map(|_| None).collect(),
            summary: RouterSummary::default(),
            next_index: 0,
        }
    }

    pub(crate) fn shared(&self) -> Arc<RouterShared> {
        self.shared.clone()
    }

    /// Decodes and routes one request line. Returns `false` when the
    /// session should stop reading (an in-band `shutdown`).
    pub(crate) fn handle_line(&mut self, raw: &str) -> bool {
        let line = raw.trim();
        if line.is_empty() {
            return true;
        }
        let index = self.next_index;
        self.next_index += 1;
        self.summary.received += 1;
        self.shared.push_pending();

        let request = match protocol::parse_request_line(line) {
            Ok(request) => request,
            Err(e) => {
                self.local_error(index, &e.id, e.code, &e.message, None);
                return true;
            }
        };
        match request.op {
            RequestOp::Ping => {
                self.shared.set_line(
                    index,
                    protocol::op_response(&request.id, "ping"),
                    false,
                    false,
                );
                true
            }
            RequestOp::Stats => {
                self.handle_stats(index, line, request.id, request.shard);
                true
            }
            RequestOp::Shutdown => {
                self.handle_shutdown(index, request.id);
                false
            }
            RequestOp::Partition => {
                let spec = request.spec.expect("partition requests carry a spec");
                self.route_partition(index, line, request.id, spec);
                true
            }
        }
    }

    fn local_error(
        &mut self,
        index: u64,
        id: &Json,
        code: ErrorCode,
        message: &str,
        shard: Option<&str>,
    ) {
        self.summary.errors += 1;
        self.shared.set_line(
            index,
            protocol::error_response(id, code, message, shard),
            false,
            true,
        );
    }

    /// `stats` without a `shard` field is answered by the router itself
    /// (topology-independent, deferred to the writer); with one — decoded
    /// and validated by the protocol codec — the raw line is forwarded to
    /// the named shard, whose response carries its own counters and
    /// `shard` tag.
    fn handle_stats(&mut self, index: u64, raw: &str, id: Json, shard: Option<String>) {
        match shard {
            None => {
                let received = self.summary.received;
                self.shared.set(index, RSlot::Stats { id, received });
            }
            Some(name) => match self.core.topology.index_of(&name) {
                Some(shard) => self.forward(index, shard, raw, None, &id),
                None => {
                    let message = format!(
                        "no shard named {name:?} in the topology ({})",
                        self.core
                            .topology
                            .shards()
                            .iter()
                            .map(|s| s.id.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    self.local_error(index, &id, ErrorCode::UnknownShard, &message, None);
                }
            },
        }
    }

    fn route_partition(
        &mut self,
        index: u64,
        raw: &str,
        id: Json,
        spec: mg_core::service::PartitionSpec,
    ) {
        if self.core.shutdown.load(Ordering::SeqCst) {
            self.local_error(
                index,
                &id,
                ErrorCode::ShuttingDown,
                "router is draining; request rejected",
                None,
            );
            return;
        }
        let placement = match placement_key(&spec.matrix) {
            Ok(placement) => placement,
            Err((code, message)) => {
                self.local_error(index, &id, code, &message, None);
                return;
            }
        };
        let key: RouterKey = (
            placement.key,
            spec.method,
            spec.backend,
            spec.epsilon.to_bits(),
            spec.seed,
            spec.include_partition,
        );
        if let Some(stored) = self.core.cache_get(&key) {
            if let Some(line) = with_id(&stored, &id) {
                self.summary.cache_hits += 1;
                self.shared.set_line(index, line, true, false);
                return;
            }
        }
        // Pre-validated: the request field by the protocol decoder, the
        // default by Router::new.
        let backend = parse_backend(spec.backend.unwrap_or(self.core.config.default_backend))
            .expect("backend names are validated at decode/config time");
        let heavy = placement
            .matrix
            .as_ref()
            .is_some_and(|m| backend.estimated_cost(m) >= self.core.config.heavy_cost);
        let shard = place(placement.key, self.core.topology.shards(), heavy);
        self.forward(index, shard, raw, Some(key), &id);
    }

    /// Forwards the raw request line to `shard`, blocking while the
    /// in-flight window is full.
    fn forward(&mut self, index: u64, shard: usize, raw: &str, key: Option<RouterKey>, id: &Json) {
        let conn = match self.connection(shard) {
            Ok(conn) => conn,
            Err(e) => {
                let spec = &self.core.topology.shards()[shard];
                let message = format!("shard {:?} at {} is unreachable: {e}", spec.id, spec.addr);
                let shard_id = spec.id.clone();
                self.local_error(
                    index,
                    id,
                    ErrorCode::ShardUnavailable,
                    &message,
                    Some(&shard_id),
                );
                return;
            }
        };
        // Window backpressure: wait for room (the reader signals `space`
        // as responses land or the connection fails).
        let window = self.core.config.window.max(1);
        {
            let mut pending = conn.pending.lock().expect("pending mutex poisoned");
            while pending.len() >= window && !conn.dead.load(Ordering::SeqCst) {
                pending = conn.space.wait(pending).expect("pending mutex poisoned");
            }
        }
        // Enqueue *then* write, both under the stream lock, so the wire
        // order always equals the pending order (what a replay resends).
        // The dead-check happens under the pending lock, mirroring the
        // reader's idle-EOF retirement, so no entry lands on a retired
        // connection unseen.
        let stream = conn.stream.lock().expect("stream mutex poisoned");
        {
            let mut pending = conn.pending.lock().expect("pending mutex poisoned");
            if conn.dead.load(Ordering::SeqCst) {
                drop(pending);
                drop(stream);
                let spec = &self.core.topology.shards()[shard];
                let message = format!(
                    "shard {:?} at {} became unreachable; request not forwarded",
                    spec.id, spec.addr
                );
                let shard_id = spec.id.clone();
                self.local_error(
                    index,
                    id,
                    ErrorCode::ShardUnavailable,
                    &message,
                    Some(&shard_id),
                );
                return;
            }
            pending.push_back(PendingEntry {
                index,
                raw: raw.to_string(),
                key,
                id: id.clone(),
            });
        }
        let mut w = &*stream;
        let write_ok =
            w.write_all(raw.as_bytes()).is_ok() && w.write_all(b"\n").is_ok() && w.flush().is_ok();
        drop(stream);
        self.summary.forwarded += 1;
        if !write_ok {
            // Poke the reader: shut the read half down so it stops
            // waiting on a dead socket and runs reconnect-and-replay
            // (the entry is already pending, so the replay resends it).
            let stream = conn.stream.lock().expect("stream mutex poisoned");
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }

    /// The session's connection to `shard`, creating or reviving it as
    /// needed (pool first, fresh dial second).
    fn connection(&mut self, shard: usize) -> std::io::Result<Arc<ConnShared>> {
        if let Some(conn) = &self.conns[shard] {
            if !conn.shared.dead.load(Ordering::SeqCst) {
                return Ok(conn.shared.clone());
            }
            // Revive: retire the dead reader before replacing it.
            if let Some(conn) = self.conns[shard].take() {
                conn.retire();
            }
        }
        let stream = self.core.take_connection(shard)?;
        let shared = Arc::new(ConnShared {
            stream: Mutex::new(stream),
            pending: Mutex::new(VecDeque::new()),
            space: Condvar::new(),
            stop: AtomicBool::new(false),
            dead: AtomicBool::new(false),
        });
        let reader = std::thread::Builder::new()
            .name(format!("mg-router-shard-{shard}"))
            .spawn({
                let core = self.core.clone();
                let conn = shared.clone();
                let slots = self.shared.clone();
                move || reader_loop(core, shard, conn, slots)
            })?;
        self.conns[shard] = Some(ShardConn {
            shared: shared.clone(),
            reader: Some(reader),
        });
        Ok(shared)
    }

    /// Blocks until every forwarded request of this session has been
    /// answered (or failed).
    fn drain_pending(&self) {
        for conn in self.conns.iter().flatten() {
            let mut pending = conn.shared.pending.lock().expect("pending mutex poisoned");
            while !pending.is_empty() {
                pending = conn
                    .shared
                    .space
                    .wait(pending)
                    .expect("pending mutex poisoned");
            }
        }
    }

    /// The in-band `shutdown`: reject new work router-wide, drain this
    /// session's forwards, forward the shutdown to every shard (drain
    /// semantics, once per router), then ack.
    fn handle_shutdown(&mut self, index: u64, id: Json) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        self.drain_pending();
        let streams: Vec<Option<TcpStream>> = self
            .conns
            .iter_mut()
            .map(|slot| slot.take().and_then(ShardConn::retire))
            .collect();
        self.core.teardown_shards(streams);
        self.shared
            .set_line(index, protocol::op_response(&id, "shutdown"), false, false);
    }

    /// Ends the session: waits out in-flight forwards, retires the
    /// connections (pooling the clean ones), and releases the writer.
    pub(crate) fn finish(&mut self) {
        self.drain_pending();
        for (shard, slot) in self.conns.iter_mut().enumerate() {
            if let Some(conn) = slot.take() {
                if let Some(stream) = conn.retire() {
                    if !self.core.shutdown.load(Ordering::SeqCst) {
                        self.core.return_connection(shard, stream);
                    }
                }
            }
        }
        self.shared.finish_input();
    }

    /// Sets the final `responses` count (transports that pump the writer
    /// themselves feed the [`write_router_responses`] return value here).
    pub(crate) fn record_responses(&mut self, written: u64) {
        self.summary.responses = written;
    }
}

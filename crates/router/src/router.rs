//! The routing engine: placement, per-shard connections with
//! reconnect-and-replay, replica-set failover, the router-level response
//! cache, and per-session ordered response streams.
//!
//! ## Execution model
//!
//! A session (one per stdio pipe or TCP connection) decodes request
//! lines, answers what it can locally (parse errors, `ping`, `stats`,
//! router-cache hits), and forwards the rest — the *original raw line*,
//! so shards decode exactly what the client sent — to the shard that
//! [`crate::placement`] picks for the request's placement key. Each
//! session holds at most one connection per shard; responses come back in
//! FIFO order per connection and are re-sequenced into client submission
//! order by the same sliding-slot scheme `mg-server` uses.
//!
//! ## Replication and failure handling
//!
//! With `--replicas R` (R > 1), placement returns the top-R rendezvous
//! ranks of a key instead of just the winner; a request goes to its
//! top-ranked replica that is currently believed alive. Liveness is
//! tracked per shard by a background prober (the protocol's `ping` op
//! under a read deadline) and by connection outcomes.
//!
//! Every forwarded-but-unanswered request stays in the connection's
//! pending queue. When a connection dies (EOF, read or write error, or —
//! when configured — an expired per-connection read deadline), the
//! reader thread redials and replays the queue in order; if the shard
//! stays unreachable through the configured attempts, the shard is
//! marked dead and each pending request **fails over**: it is replayed,
//! still in order, against its next-ranked live replica. Only when a
//! request exhausts its replica set does it fail with a typed
//! `shard_unavailable` error. The pending queue is also the backpressure
//! bound: submissions block while `window` requests are in flight to one
//! shard.
//!
//! ## Determinism
//!
//! Placement is a pure function of the request, shards are configured
//! identically, and the router cache only ever serves a byte-rewrite
//! (fresh id, `cached: true`) of a line some shard produced — so a
//! session's response stream is the same for 1 shard and K shards at any
//! thread count, **and failover is invisible**: any replica computes
//! byte-identical response bytes for a request, so a replayed request
//! returns exactly the line the dead replica would have produced (see
//! `PROTOCOL.md` § Routing for the exact contract).

use crate::cache::{cached_true_of, with_id, RouterKey};
use crate::config::Topology;
use crate::metrics::{
    dispatch_counter, health_transition, router_metrics, router_request_seconds, set_replicas,
    set_shard_alive,
};
use crate::placement::place_replicas;
use mg_core::service::{placement_key, ErrorCode, RequestOp};
use mg_core::{parse_backend, DEFAULT_BACKEND};
use mg_obs::trace::{self, TraceContext};
use mg_server::codec::{self, UnitKind, UnitScanner, WireCodec};
use mg_server::json::obj;
use mg_server::{protocol, Json, LruCache};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the data from a poisoned lock: a panicking
/// worker must degrade to a typed `internal` error for its own request,
/// never abort every other session sharing the router state.
fn lock_ok<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_ok`].
fn wait_ok<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Configuration of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Largest number of forwarded-but-unanswered requests per shard
    /// connection; full ⇒ the session's reader blocks (backpressure).
    pub window: usize,
    /// Router-level LRU response cache capacity in entries; 0 disables.
    pub cache_capacity: usize,
    /// Backend assumed for cost estimation when a request carries no
    /// `backend` field. Must match the shards' default backend for the
    /// cost model to reflect what actually runs.
    pub default_backend: &'static str,
    /// Estimated-cost threshold ([`mg_core::PartitionBackend::estimated_cost`])
    /// above which a request counts shard capacity *squared* in placement,
    /// biasing heavy jobs toward larger shards.
    pub heavy_cost: u64,
    /// Dial attempts per connect/reconnect before a shard counts as down.
    pub connect_attempts: u32,
    /// Delay between dial attempts.
    pub retry_delay: Duration,
    /// Replication factor R: each key's top-R rendezvous ranks form its
    /// replica set. 1 (the default) preserves single-owner placement
    /// bit-for-bit and disables the health prober.
    pub replicas: usize,
    /// Period of the background health prober (`ping` per shard). Only
    /// runs when `replicas > 1`; `Duration::ZERO` disables it outright.
    pub probe_interval: Duration,
    /// Per-connection read deadline: a forwarded request unanswered this
    /// long marks the replica dead and triggers failover (or typed
    /// errors at `replicas == 1`). `None` (the default) waits forever,
    /// preserving historical behaviour. Set it above the worst-case job
    /// latency of the workload. Also bounds each probe's response wait.
    pub read_deadline: Option<Duration>,
    /// Slow-request trace sampler: an untraced partition request gets a
    /// speculative trace, kept only when its end-to-end latency reaches
    /// this threshold (`Duration::ZERO` keeps every request). `None`
    /// (the default) disables the sampler; explicitly traced requests
    /// are always recorded regardless.
    pub trace_slow: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            window: 64,
            cache_capacity: 128,
            default_backend: DEFAULT_BACKEND,
            heavy_cost: 10_000_000,
            connect_attempts: 5,
            retry_delay: Duration::from_millis(200),
            replicas: 1,
            probe_interval: Duration::from_millis(500),
            read_deadline: None,
            trace_slow: None,
        }
    }
}

impl RouterConfig {
    /// How long a probe waits for its `ping` reply.
    fn probe_deadline(&self) -> Duration {
        self.read_deadline.unwrap_or(Duration::from_secs(2))
    }
}

/// Per-session counters (the router-side analogue of
/// [`mg_server::SessionSummary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterSummary {
    /// Request lines decoded (including failed ones).
    pub received: u64,
    /// Responses written.
    pub responses: u64,
    /// Requests forwarded to a shard.
    pub forwarded: u64,
    /// Requests short-circuited by the router cache.
    pub cache_hits: u64,
    /// Locally answered error responses.
    pub errors: u64,
}

pub(crate) struct RouterCore {
    pub(crate) topology: Topology,
    pub(crate) config: RouterConfig,
    cache: Mutex<LruCache<RouterKey, String>>,
    /// Idle, reader-less connections per shard, reusable across sessions.
    pools: Vec<Mutex<Vec<TcpStream>>>,
    /// Believed liveness per shard: written by the prober and by
    /// connection outcomes, read by placement and failover.
    health: Vec<AtomicBool>,
    /// Total requests replayed onto a lower-ranked replica.
    failovers: AtomicU64,
    /// Open sessions on this router. The `stats` op samples it at decode
    /// time, so its value is deterministic per session script: a session
    /// always counts at least itself.
    sessions: AtomicU64,
    shutdown: AtomicBool,
    /// Guards the one-shot forwarding of `shutdown` to every shard.
    teardown_done: Mutex<bool>,
}

/// The background health prober's lifecycle handle.
struct Prober {
    /// `true` under the mutex once the router wants the prober gone; the
    /// condvar wakes it out of its between-rounds sleep immediately.
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Prober {
    fn stop(&mut self) {
        let (flag, wake) = &*self.stop;
        *lock_ok(flag) = true;
        wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A running router: validated topology + shared cache + connection
/// pools + (with `replicas > 1`) a background health prober. Sessions
/// attach via [`Router::run_session`] (pipe transports) or the TCP front
/// end in [`crate::transport`].
pub struct Router {
    pub(crate) core: Arc<RouterCore>,
    prober: Option<Prober>,
}

impl Router {
    /// Builds a router over a validated topology. Fails (with a message)
    /// when `config.default_backend` is not a registered backend or
    /// `config.replicas` is 0.
    pub fn new(topology: Topology, mut config: RouterConfig) -> Result<Router, String> {
        config.default_backend = parse_backend(config.default_backend)?.name();
        if config.replicas == 0 {
            return Err("replicas must be at least 1".into());
        }
        let pools = (0..topology.len())
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let health = (0..topology.len()).map(|_| AtomicBool::new(true)).collect();
        let spawn_prober = config.replicas > 1 && !config.probe_interval.is_zero();
        let core = Arc::new(RouterCore {
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            pools,
            health,
            failovers: AtomicU64::new(0),
            sessions: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            teardown_done: Mutex::new(false),
            topology,
            config,
        });
        // Register the router's metric families eagerly: the exposition
        // endpoint reports failover/replica/liveness diagnostics from
        // startup, unconditionally — unlike the deterministic `stats`
        // line, which only mentions replicas once something is dead.
        let _ = router_metrics();
        set_replicas(core.config.replicas);
        for shard in core.topology.shards() {
            set_shard_alive(&shard.id, true);
        }
        let prober = if spawn_prober {
            let stop = Arc::new((Mutex::new(false), Condvar::new()));
            let handle = std::thread::Builder::new()
                .name("mg-router-prober".into())
                .spawn({
                    let core = core.clone();
                    let stop = stop.clone();
                    move || probe_loop(&core, &stop)
                })
                .map_err(|e| format!("spawning health prober: {e}"))?;
            Some(Prober {
                stop,
                handle: Some(handle),
            })
        } else {
            None
        };
        Ok(Router { core, prober })
    }

    /// The validated topology.
    pub fn topology(&self) -> &Topology {
        &self.core.topology
    }

    /// The believed liveness of the shard named `id` (`None` when the id
    /// is not in the topology). Always `true` at `replicas == 1` startup;
    /// flips with prober results and connection outcomes.
    pub fn shard_alive(&self, id: &str) -> Option<bool> {
        let index = self.core.topology.index_of(id)?;
        Some(self.core.health[index].load(Ordering::SeqCst))
    }

    /// Total requests replayed onto a lower-ranked replica so far
    /// (router-wide, monotone).
    pub fn failovers(&self) -> u64 {
        self.core.failovers.load(Ordering::SeqCst)
    }

    /// Dials every shard once (with the configured retries), parking the
    /// connections in the pools — the startup barrier of `mgpart route`,
    /// so a mistyped address fails before the first request.
    pub fn connect_all(&self) -> Result<(), String> {
        for (index, shard) in self.core.topology.shards().iter().enumerate() {
            let stream = self.core.dial(index).map_err(|e| {
                format!("connecting to shard {:?} at {}: {e}", shard.id, shard.addr)
            })?;
            lock_ok(&self.core.pools[index]).push(stream);
        }
        Ok(())
    }

    /// `true` once an in-band `shutdown` has been observed.
    pub fn is_shutting_down(&self) -> bool {
        self.core.shutdown.load(Ordering::SeqCst)
    }

    /// Stops accepting forwarded work (the out-of-band analogue of the
    /// `shutdown` op; does not contact the shards).
    pub fn initiate_shutdown(&self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
    }

    /// Runs one full session over a generic line transport: requests are
    /// read from `input` on the calling thread, responses stream to
    /// `output` from a writer thread in submission order. Returns when
    /// the input is exhausted (EOF or in-band `shutdown`) and every
    /// response has been written.
    pub fn run_session<R: BufRead, W: Write + Send>(
        &self,
        mut input: R,
        mut output: W,
    ) -> RouterSummary {
        let mut driver = RouterSessionDriver::new(self.core.clone());
        let shared = driver.shared();
        let _ = crossbeam::scope(|scope| {
            let out = &mut output;
            let writer = scope.spawn(move |_| write_router_responses(&shared, out));
            let mut scanner = UnitScanner::new();
            'session: loop {
                let consumed = match input.fill_buf() {
                    Ok([]) => {
                        // A final request without its `\n` terminator is
                        // still a request.
                        if let Some(tail) = scanner.take_eof_remainder() {
                            driver.handle_unit(UnitKind::Line, &tail);
                        }
                        break;
                    }
                    Ok(chunk) => {
                        scanner.push(chunk);
                        chunk.len()
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                };
                input.consume(consumed);
                loop {
                    match scanner.next_unit() {
                        Ok(Some((kind, range))) => {
                            let go = driver.handle_unit(kind, scanner.bytes(&range));
                            if let Some(codec) = driver.take_codec_switch() {
                                scanner.set_codec(codec);
                            }
                            if !go {
                                break 'session;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            driver.protocol_error(&e.message);
                            break 'session;
                        }
                    }
                }
            }
            driver.finish();
            // A panicked writer is an internal failure of this session
            // only; the summary just reports zero written responses.
            driver.summary.responses = writer.join().unwrap_or(0);
        });
        driver.summary
    }

    /// Opens a session driver for a custom transport (the TCP front end);
    /// most callers want [`Router::run_session`].
    pub(crate) fn open_session(&self) -> RouterSessionDriver {
        RouterSessionDriver::new(self.core.clone())
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if let Some(prober) = &mut self.prober {
            prober.stop();
        }
    }
}

impl RouterCore {
    fn dial(&self, shard: usize) -> std::io::Result<TcpStream> {
        let addr = &self.topology.shards()[shard].addr;
        let mut last = None;
        for attempt in 0..self.config.connect_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.config.retry_delay);
            }
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("no attempts made")))
    }

    /// A connection for `shard`: pooled if available, freshly dialed
    /// otherwise.
    fn take_connection(&self, shard: usize) -> std::io::Result<TcpStream> {
        if let Some(stream) = lock_ok(&self.pools[shard]).pop() {
            return Ok(stream);
        }
        self.dial(shard)
    }

    fn return_connection(&self, shard: usize, stream: TcpStream) {
        lock_ok(&self.pools[shard]).push(stream);
    }

    fn alive(&self, shard: usize) -> bool {
        self.health[shard].load(Ordering::SeqCst)
    }

    fn mark_alive(&self, shard: usize, alive: bool) {
        let was = self.health[shard].swap(alive, Ordering::SeqCst);
        if was != alive {
            let id = &self.topology.shards()[shard].id;
            health_transition(id, alive);
            let level = if alive {
                mg_obs::Level::Info
            } else {
                mg_obs::Level::Warn
            };
            mg_obs::log::event(
                level,
                "shard_health",
                &[("shard", id.as_str().into()), ("alive", alive.into())],
            );
        }
    }

    /// Ids of the shards currently believed dead, in topology order.
    fn dead_ids(&self) -> Vec<String> {
        self.topology
            .shards()
            .iter()
            .enumerate()
            .filter(|(index, _)| !self.alive(*index))
            .map(|(_, spec)| spec.id.clone())
            .collect()
    }

    fn cache_get(&self, key: &RouterKey) -> Option<String> {
        lock_ok(&self.cache).get(key).cloned()
    }

    fn cache_put(&self, key: RouterKey, line: String) {
        lock_ok(&self.cache).insert(key, line);
    }

    /// Forwards `shutdown` to every shard exactly once (whichever session
    /// gets there first wins), draining each: the shard answers all
    /// earlier requests on the connection, acks the shutdown, and exits.
    /// `session_conns` donates the calling session's live (drained)
    /// connections so shards are not redialed needlessly. Shards believed
    /// dead are skipped rather than redialed — a torn-down topology must
    /// not stall on its casualties.
    fn teardown_shards(&self, mut session_conns: Vec<Option<TcpStream>>) {
        let mut done = lock_ok(&self.teardown_done);
        if *done {
            return;
        }
        *done = true;
        session_conns.resize_with(self.topology.len(), || None);
        for (index, slot) in session_conns.iter_mut().enumerate() {
            let stream = slot
                .take()
                .or_else(|| lock_ok(&self.pools[index]).pop())
                .or_else(|| {
                    if self.alive(index) {
                        self.dial(index).ok()
                    } else {
                        None
                    }
                });
            let Some(mut stream) = stream else { continue };
            if stream.write_all(b"{\"op\":\"shutdown\"}\n").is_err() || stream.flush().is_err() {
                continue;
            }
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            // Await the ack so the shard has fully drained before we
            // report our own shutdown; the content is irrelevant.
            let mut ack = String::new();
            let _ = BufReader::new(stream).read_line(&mut ack);
        }
    }
}

/// The background health prober: one `ping` per shard per round over the
/// prober's own connections (never the session pools), each answered
/// within [`RouterConfig::probe_deadline`] or the shard is marked dead.
/// A later successful probe re-admits a flapped replica.
fn probe_loop(core: &Arc<RouterCore>, stop: &Arc<(Mutex<bool>, Condvar)>) {
    let mut conns: Vec<Option<BufReader<TcpStream>>> = Vec::new();
    conns.resize_with(core.topology.len(), || None);
    loop {
        for (shard, slot) in conns.iter_mut().enumerate() {
            if *lock_ok(&stop.0) {
                return;
            }
            let alive = probe_once(core, shard, slot);
            core.mark_alive(shard, alive);
        }
        let (flag, wake) = &**stop;
        let guard = lock_ok(flag);
        let (guard, _) = wake
            .wait_timeout(guard, core.config.probe_interval)
            .unwrap_or_else(PoisonError::into_inner);
        if *guard {
            return;
        }
    }
}

/// One probe: dial (if needed), send `ping`, await any response line
/// under the probe deadline. Any failure drops the probe connection so
/// the next round starts from a clean dial.
fn probe_once(core: &RouterCore, shard: usize, slot: &mut Option<BufReader<TcpStream>>) -> bool {
    if slot.is_none() {
        let Ok(stream) = TcpStream::connect(&core.topology.shards()[shard].addr) else {
            return false;
        };
        let _ = stream.set_nodelay(true);
        *slot = Some(BufReader::new(stream));
    }
    let reader = slot.as_mut().expect("just installed");
    let _ = reader
        .get_ref()
        .set_read_timeout(Some(core.config.probe_deadline()));
    let mut w = reader.get_ref();
    let written = w.write_all(b"{\"op\":\"ping\"}\n").is_ok() && w.flush().is_ok();
    let mut line = String::new();
    let alive = written && matches!(reader.read_line(&mut line), Ok(n) if n > 0);
    if !alive {
        *slot = None;
    }
    alive
}

/// Trace state of one routed request: the router's root `request` span
/// context plus the sampler verdict flag. Carried from decode to the
/// delivery (or failure) that closes the root span.
#[derive(Clone, Copy)]
struct ReqTrace {
    /// The router-side root span: `span_id` is the `request` span,
    /// `parent_id` the client's span when the request arrived traced.
    ctx: TraceContext,
    /// Opened by the slow-request sampler; committed or discarded
    /// against [`RouterConfig::trace_slow`] when the request resolves.
    speculative: bool,
    /// UNIX-epoch µs at decode — the root span's start timestamp.
    start_us: u64,
    /// Monotonic decode instant — the root span's duration clock.
    started: Instant,
}

/// One dispatch leg of a traced entry: the span covering
/// enqueue-on-a-connection through delivery. Failover opens a fresh leg
/// parented under its `failover_replay` span.
#[derive(Clone, Copy)]
struct EntryTrace {
    req: ReqTrace,
    /// Pre-allocated `dispatch` span id — stamped into the forwarded
    /// line so shard-side spans parent under this leg.
    dispatch_span: u64,
    dispatch_parent: u64,
    dispatch_us: u64,
    dispatch_at: Instant,
}

/// One forwarded-but-unanswered request.
struct PendingEntry {
    /// Session submission index (the response slot to fill).
    index: u64,
    /// The request line a replay resends: the original bytes, except
    /// that traced entries carry the router's propagated `trace` field.
    raw: String,
    /// Router-cache key for cacheable (partition) requests.
    key: Option<RouterKey>,
    /// The request id, kept so a failure response can echo it without
    /// re-parsing the raw line.
    id: Json,
    /// Lower-ranked replicas still untried, best first — where this
    /// request fails over if the current shard dies. Empty at
    /// `replicas == 1`.
    fallbacks: Vec<usize>,
    /// When the entry was (re)written to the current connection; the
    /// read-deadline clock.
    enqueued: Instant,
    /// When the session admitted the entry; the latency-histogram clock.
    started: Instant,
    /// Trace state, present when the request is explicitly traced or
    /// the slow-request sampler is on.
    trace: Option<EntryTrace>,
}

/// Returns `raw` with its top-level `"trace"` field inserted or
/// replaced by the router's propagation context, so shard-side spans
/// parent under the router's `dispatch` leg. Falls back to the
/// unstamped line if `raw` fails to re-parse (the shard then records a
/// trace rooted at the client's context, or none at all).
fn stamp_trace(raw: &str, trace_id: u128, parent: u64) -> String {
    let Ok(mut doc) = Json::parse(raw) else {
        return raw.to_string();
    };
    let Json::Obj(fields) = &mut doc else {
        return raw.to_string();
    };
    let stamped = obj(vec![
        ("id", Json::Str(trace::trace_id_hex(trace_id))),
        ("parent", Json::Str(trace::span_id_hex(parent))),
    ]);
    match fields.iter_mut().find(|(k, _)| k == "trace") {
        Some((_, v)) => *v = stamped,
        None => fields.push(("trace".into(), stamped)),
    }
    doc.to_string()
}

/// Closes a routed request's root `request` span and settles the
/// sampler verdict: a speculative trace survives only when the request
/// took at least [`RouterConfig::trace_slow`].
fn close_req_trace(core: &RouterCore, rt: &ReqTrace) {
    let total = rt.started.elapsed();
    trace::record_span(
        rt.ctx.trace_id,
        rt.ctx.span_id,
        rt.ctx.parent_id,
        "request",
        rt.start_us,
        total,
    );
    if rt.speculative {
        if core
            .config
            .trace_slow
            .is_some_and(|threshold| total >= threshold)
        {
            trace::collector().commit(rt.ctx.trace_id);
        } else {
            trace::collector().discard(rt.ctx.trace_id);
        }
    }
}

/// Records the current `dispatch` leg of a traced entry — called
/// exactly once per leg, where the leg ends (delivery, connection
/// death, or reader failure).
fn record_entry_dispatch(entry: &PendingEntry) {
    if let Some(t) = &entry.trace {
        trace::record_span(
            t.req.ctx.trace_id,
            t.dispatch_span,
            Some(t.dispatch_parent),
            "dispatch",
            t.dispatch_us,
            t.dispatch_at.elapsed(),
        );
    }
}

/// State shared between a session and one shard-connection reader thread.
struct ConnShared {
    /// The live stream; the reader swaps it on reconnect, the session
    /// writes requests through it. Lock order: `stream` before `pending`.
    stream: Mutex<TcpStream>,
    pending: Mutex<VecDeque<PendingEntry>>,
    /// Signalled whenever `pending` shrinks (window space / drain).
    space: Condvar,
    /// Session is over; exit once `pending` is empty.
    stop: AtomicBool,
    /// The connection failed for good (reconnects exhausted); pending
    /// requests were failed over or failed with `shard_unavailable`.
    dead: AtomicBool,
}

struct ShardConn {
    shared: Arc<ConnShared>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl ShardConn {
    /// Stops the reader (it notices within its read timeout) and joins
    /// it, returning the stream if the connection is still clean enough
    /// to pool (no pending, not dead).
    fn retire(mut self) -> Option<TcpStream> {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        let clean =
            !self.shared.dead.load(Ordering::SeqCst) && lock_ok(&self.shared.pending).is_empty();
        if !clean {
            return None;
        }
        let stream = lock_ok(&self.shared.stream);
        stream.try_clone().ok()
    }
}

/// Response slots of one router session (the sliding-window scheme of
/// `mg-server`, with deferred `stats` slots so the counters cover exactly
/// the delivered prefix).
enum RSlot {
    Pending,
    Ready {
        line: String,
        /// The response says `cached: true` (shard- or router-served).
        cached: bool,
        /// The response is an error line.
        error: bool,
        /// A `hello` negotiation: the writer emits this line in the old
        /// codec, then switches.
        switch: Option<WireCodec>,
    },
    Stats {
        id: Json,
        received: u64,
        /// Open sessions on the router, sampled at decode time (≥ 1:
        /// the asking session counts itself).
        sessions: u64,
        /// Present when the router runs replicated (`replicas > 1`):
        /// lets the writer sample replica health at delivery time, after
        /// every earlier response (and thus every failover that produced
        /// one) has resolved.
        core: Option<Arc<RouterCore>>,
    },
}

impl RSlot {
    fn is_resolved(&self) -> bool {
        !matches!(self, RSlot::Pending)
    }
}

#[derive(Default)]
struct RouterSlots {
    base: u64,
    slots: VecDeque<RSlot>,
    input_done: bool,
}

#[derive(Default)]
pub(crate) struct RouterShared {
    state: Mutex<RouterSlots>,
    ready: Condvar,
    /// Forwarded-but-unresolved requests of this session. The writer
    /// samples it when it renders a `stats` slot — by then the whole
    /// preceding prefix has resolved, so in any script where no
    /// partition request trails the `stats` request the value is
    /// deterministically 0 (see `PROTOCOL.md` § Diagnostics).
    outstanding: AtomicU64,
}

impl RouterShared {
    fn lock(&self) -> MutexGuard<'_, RouterSlots> {
        lock_ok(&self.state)
    }

    fn push_pending(&self) {
        self.lock().slots.push_back(RSlot::Pending);
    }

    fn set(&self, index: u64, slot: RSlot) {
        let mut state = self.lock();
        let offset = (index - state.base) as usize;
        state.slots[offset] = slot;
        self.ready.notify_all();
    }

    fn set_line(&self, index: u64, line: String, cached: bool, error: bool) {
        self.set(
            index,
            RSlot::Ready {
                line,
                cached,
                error,
                switch: None,
            },
        );
    }

    fn set_switch(&self, index: u64, line: String, codec: WireCodec) {
        self.set(
            index,
            RSlot::Ready {
                line,
                cached: false,
                error: false,
                switch: Some(codec),
            },
        );
    }

    fn finish_input(&self) {
        self.lock().input_done = true;
        self.ready.notify_all();
    }

    /// Blocks until every slot except (optionally) `skip` is resolved —
    /// the session-level drain. Covers requests in failover limbo (popped
    /// from one pending queue, not yet re-enqueued on the next replica),
    /// which per-connection queues alone would miss.
    fn drain_resolved(&self, skip: Option<u64>) {
        let mut state = self.lock();
        loop {
            let base = state.base;
            let unresolved =
                state.slots.iter().enumerate().any(|(offset, slot)| {
                    !slot.is_resolved() && Some(base + offset as u64) != skip
                });
            if !unresolved {
                return;
            }
            state = wait_ok(&self.ready, state);
        }
    }
}

/// Writer half of a router session: emits responses in submission order,
/// tallying `cached: true` and error lines as they pass so a deferred
/// `stats` slot reports exactly its prefix. Returns the number of
/// responses written.
pub(crate) fn write_router_responses<W: Write>(shared: &RouterShared, output: &mut W) -> u64 {
    let mut written = 0u64;
    let mut wire = WireCodec::JsonLines;
    let mut cache_hits = 0u64;
    let mut errors = 0u64;
    loop {
        let slot = {
            let mut state = shared.lock();
            loop {
                if matches!(state.slots.front(), Some(slot) if slot.is_resolved()) {
                    break;
                }
                if state.input_done && state.slots.front().is_none() {
                    return written;
                }
                state = wait_ok(&shared.ready, state);
            }
            state.base += 1;
            state.slots.pop_front().expect("checked front")
        };
        let mut switch = None;
        let line = match slot {
            RSlot::Pending => unreachable!("writer only pops resolved slots"),
            RSlot::Ready {
                line,
                cached,
                error,
                switch: slot_switch,
            } => {
                if cached {
                    cache_hits += 1;
                }
                if error {
                    errors += 1;
                }
                switch = slot_switch;
                line
            }
            RSlot::Stats {
                id,
                received,
                sessions,
                core,
            } => {
                let mut fields = vec![
                    ("id", id),
                    ("status", Json::Str("ok".into())),
                    ("op", Json::Str("stats".into())),
                    ("received", Json::UInt(received)),
                    ("cache_hits", Json::UInt(cache_hits)),
                    ("errors", Json::UInt(errors)),
                    ("sessions", Json::UInt(sessions)),
                    (
                        "queue_depth",
                        Json::UInt(shared.outstanding.load(Ordering::SeqCst)),
                    ),
                ];
                // Replica diagnostics, only when something is actually
                // dead: a healthy replicated topology reports byte-
                // identically to an unreplicated one.
                if let Some(core) = core {
                    let dead = core.dead_ids();
                    if !dead.is_empty() {
                        fields.push(("replicas", Json::UInt(core.config.replicas as u64)));
                        fields.push(("dead", Json::Arr(dead.into_iter().map(Json::Str).collect())));
                        fields.push((
                            "failovers",
                            Json::UInt(core.failovers.load(Ordering::SeqCst)),
                        ));
                    }
                }
                obj(fields).to_string()
            }
        };
        // Shard responses are forwarded opaquely: whatever codec the
        // *client* negotiated, the response document's text is the shard
        // line byte-for-byte — only the framing around it changes.
        if codec::write_response_unit(output, wire, &line).is_ok() {
            written += 1;
        }
        if let Some(next) = switch {
            wire = next;
        }
    }
}

/// The connection table of one session, shared with its reader threads
/// so a dying connection can fail its pending requests over to other
/// replicas (which may need fresh connections) from the reader itself.
struct SessionState {
    core: Arc<RouterCore>,
    slots: Arc<RouterShared>,
    conns: Mutex<Vec<Option<ShardConn>>>,
}

impl SessionState {
    /// The session's connection to `shard`, creating or reviving it as
    /// needed (pool first, fresh dial second). Callable from the session
    /// thread and from failing-over reader threads alike.
    fn connection(self: &Arc<Self>, shard: usize) -> std::io::Result<Arc<ConnShared>> {
        loop {
            let stale = {
                let mut conns = lock_ok(&self.conns);
                match &conns[shard] {
                    Some(conn) if !conn.shared.dead.load(Ordering::SeqCst) => {
                        return Ok(conn.shared.clone());
                    }
                    // Revive: retire the dead reader outside the table
                    // lock (retire joins the reader, which may itself be
                    // waiting on the table while failing over).
                    Some(_) => conns[shard].take(),
                    None => None,
                }
            };
            if let Some(stale) = stale {
                stale.retire();
                continue;
            }
            let stream = self.core.take_connection(shard)?;
            let shared = Arc::new(ConnShared {
                stream: Mutex::new(stream),
                pending: Mutex::new(VecDeque::new()),
                space: Condvar::new(),
                stop: AtomicBool::new(false),
                dead: AtomicBool::new(false),
            });
            let reader = std::thread::Builder::new()
                .name(format!("mg-router-shard-{shard}"))
                .spawn({
                    let session = self.clone();
                    let conn = shared.clone();
                    move || reader_thread(&session, shard, &conn)
                })?;
            let ours = ShardConn {
                shared: shared.clone(),
                reader: Some(reader),
            };
            let stale = {
                let mut conns = lock_ok(&self.conns);
                match &conns[shard] {
                    // Lost an install race against another thread whose
                    // connection is live: keep theirs, retire ours.
                    Some(existing) if !existing.shared.dead.load(Ordering::SeqCst) => {
                        let winner = existing.shared.clone();
                        drop(conns);
                        if let Some(stream) = ours.retire() {
                            self.core.return_connection(shard, stream);
                        }
                        return Ok(winner);
                    }
                    _ => {
                        let stale = conns[shard].take();
                        conns[shard] = Some(ours);
                        stale
                    }
                }
            };
            if let Some(stale) = stale {
                stale.retire();
            }
            return Ok(shared);
        }
    }

    /// Fails a lost connection: marks the shard dead (for placement and
    /// the prober to re-admit later), drains the pending queue, and
    /// replays each entry against its next-ranked live replica — typed
    /// `shard_unavailable` errors only for entries whose replica set is
    /// exhausted.
    fn fail_over(self: &Arc<Self>, shard: usize, conn: &ConnShared) {
        self.core.mark_alive(shard, false);
        let drained: Vec<PendingEntry> = {
            // `dead` is set under the pending lock so a racing `forward`
            // either sees the flag before enqueueing or its entry is
            // drained here — never an orphaned request.
            let mut pending = lock_ok(&conn.pending);
            conn.dead.store(true, Ordering::SeqCst);
            pending.drain(..).collect()
        };
        conn.space.notify_all();
        for entry in drained {
            self.dispatch_failover(entry, shard);
        }
    }

    /// Replays one orphaned entry on the best remaining replica, walking
    /// down the ranking as candidates fail.
    fn dispatch_failover(self: &Arc<Self>, mut entry: PendingEntry, mut last_shard: usize) {
        // The leg on the dead connection ends here, whatever happens to
        // the entry next.
        record_entry_dispatch(&entry);
        loop {
            let Some(next) = next_candidate(&self.core, &mut entry.fallbacks) else {
                self.fail_entry(entry, last_shard);
                return;
            };
            let from = last_shard;
            last_shard = next;
            // A traced replay rides under a `failover_replay` span: a
            // fresh dispatch leg parented to it, restamped into the
            // resent line so the surviving shard's spans link back
            // through the replay.
            let replay = if let Some(t) = entry.trace {
                let span = t.req.ctx.child();
                let replay_at = Instant::now();
                let replay_us = trace::now_us();
                let leg = EntryTrace {
                    req: t.req,
                    dispatch_span: trace::next_span_id(),
                    dispatch_parent: span.span_id,
                    dispatch_us: replay_us,
                    dispatch_at: replay_at,
                };
                entry.raw = stamp_trace(&entry.raw, t.req.ctx.trace_id, leg.dispatch_span);
                entry.trace = Some(leg);
                Some((span, replay_us, replay_at))
            } else {
                None
            };
            match self.replay_entry(next, entry) {
                Ok(()) => {
                    if let Some((span, start_us, at)) = replay {
                        trace::record_span(
                            span.trace_id,
                            span.span_id,
                            span.parent_id,
                            "failover_replay",
                            start_us,
                            at.elapsed(),
                        );
                    }
                    self.core.failovers.fetch_add(1, Ordering::SeqCst);
                    router_metrics().failovers.inc();
                    mg_obs::log::warn(
                        "router_failover",
                        &[
                            (
                                "from_shard",
                                self.core.topology.shards()[from].id.as_str().into(),
                            ),
                            (
                                "to_shard",
                                self.core.topology.shards()[next].id.as_str().into(),
                            ),
                        ],
                    );
                    return;
                }
                Err(returned) => {
                    self.core.mark_alive(next, false);
                    entry = *returned;
                }
            }
        }
    }

    /// Enqueues and writes an already-admitted entry on `shard`'s
    /// connection. No window wait: the entry consumed its backpressure
    /// budget when the session first admitted it, and failover must not
    /// park one reader thread on another connection's window.
    fn replay_entry(
        self: &Arc<Self>,
        shard: usize,
        mut entry: PendingEntry,
    ) -> Result<(), Box<PendingEntry>> {
        let Ok(conn) = self.connection(shard) else {
            return Err(Box::new(entry));
        };
        let raw = entry.raw.clone();
        let stream = lock_ok(&conn.stream);
        {
            let mut pending = lock_ok(&conn.pending);
            if conn.dead.load(Ordering::SeqCst) {
                return Err(Box::new(entry));
            }
            entry.enqueued = Instant::now();
            pending.push_back(entry);
        }
        let mut w = &*stream;
        let write_ok =
            w.write_all(raw.as_bytes()).is_ok() && w.write_all(b"\n").is_ok() && w.flush().is_ok();
        drop(stream);
        if !write_ok {
            // The entry is pending on the new connection; poke its reader
            // so reconnect-and-replay (or a further failover) picks it up.
            let stream = lock_ok(&conn.stream);
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        Ok(())
    }

    /// Resolves an entry whose replica set is exhausted with the typed
    /// `shard_unavailable` error naming the last shard that owned it.
    fn fail_entry(&self, entry: PendingEntry, shard: usize) {
        let spec = &self.core.topology.shards()[shard];
        let line = protocol::error_response(
            &entry.id,
            ErrorCode::ShardUnavailable,
            &format!(
                "shard {:?} at {} became unreachable; request lost after replay attempts",
                spec.id, spec.addr
            ),
            Some(&spec.id),
        );
        // The current leg was already recorded by `dispatch_failover`;
        // only the root span and the sampler verdict remain.
        if let Some(t) = &entry.trace {
            close_req_trace(&self.core, &t.req);
        }
        router_request_seconds(&spec.id).observe(entry.started.elapsed().as_secs_f64());
        // Decrement before resolving, as in `deliver_response`.
        self.slots.outstanding.fetch_sub(1, Ordering::SeqCst);
        router_metrics().pending.dec();
        self.slots.set_line(entry.index, line, false, true);
    }

    /// Resolves every pending entry of a conn with a typed `internal`
    /// error — the degraded (but draining) outcome of a panicked reader.
    fn fail_internal(&self, shard: usize, conn: &ConnShared) {
        let spec = &self.core.topology.shards()[shard];
        let drained: Vec<PendingEntry> = {
            let mut pending = lock_ok(&conn.pending);
            conn.dead.store(true, Ordering::SeqCst);
            pending.drain(..).collect()
        };
        conn.space.notify_all();
        for entry in drained {
            let line = protocol::error_response(
                &entry.id,
                ErrorCode::Internal,
                &format!("router worker for shard {:?} failed; request lost", spec.id),
                Some(&spec.id),
            );
            record_entry_dispatch(&entry);
            if let Some(t) = &entry.trace {
                close_req_trace(&self.core, &t.req);
            }
            router_request_seconds(&spec.id).observe(entry.started.elapsed().as_secs_f64());
            // Decrement before resolving, as in `deliver_response`.
            self.slots.outstanding.fetch_sub(1, Ordering::SeqCst);
            router_metrics().pending.dec();
            self.slots.set_line(entry.index, line, false, true);
        }
    }
}

/// Removes and returns the best remaining candidate: the first replica
/// currently believed alive, or — when everything looks dead — the first
/// remaining one (the dial will be the judge). `None` when exhausted.
fn next_candidate(core: &RouterCore, fallbacks: &mut Vec<usize>) -> Option<usize> {
    if fallbacks.is_empty() {
        return None;
    }
    let position = fallbacks
        .iter()
        .position(|&shard| core.alive(shard))
        .unwrap_or(0);
    Some(fallbacks.remove(position))
}

/// Reader half of one shard connection, with a panic firewall: a
/// panicking reader resolves its pending requests with typed `internal`
/// errors instead of hanging the session (the writer would otherwise
/// wait forever on the orphaned slots).
fn reader_thread(session: &Arc<SessionState>, shard: usize, conn: &Arc<ConnShared>) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        reader_loop(session, shard, conn);
    }));
    if outcome.is_err() {
        session.fail_internal(shard, conn);
    }
}

/// Reader loop body: pairs response lines with the FIFO pending queue,
/// fills session slots, feeds the router cache, and owns
/// reconnect-and-replay plus the failover hand-off.
fn reader_loop(session: &Arc<SessionState>, shard: usize, conn: &Arc<ConnShared>) {
    let core = &session.core;
    'connection: loop {
        let handle = {
            let stream = lock_ok(&conn.stream);
            match stream.try_clone() {
                Ok(h) => h,
                Err(_) => {
                    session.fail_over(shard, conn);
                    return;
                }
            }
        };
        let _ = handle.set_read_timeout(Some(Duration::from_millis(50)));
        let mut reader = BufReader::new(handle);
        let mut buf: Vec<u8> = Vec::new();
        loop {
            let idle = lock_ok(&conn.pending).is_empty();
            if conn.stop.load(Ordering::SeqCst) && idle {
                return;
            }
            // Read-deadline: a connection that owes its oldest response
            // for longer than the deadline is hung — mark the replica
            // dead and fail over (a hung shard accepts connections, so
            // reconnect-and-replay would just hang again).
            if let Some(deadline) = core.config.read_deadline {
                let expired = lock_ok(&conn.pending)
                    .front()
                    .is_some_and(|entry| entry.enqueued.elapsed() > deadline);
                if expired {
                    session.fail_over(shard, conn);
                    return;
                }
            }
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => {
                    // Shard closed the connection. Idle close (e.g. a
                    // shard restarting) just retires this reader; a close
                    // with pending work triggers reconnect-and-replay.
                    // `dead` is set under the pending lock so a racing
                    // `forward` either sees the flag before enqueueing or
                    // its entry is seen here — never an orphaned request.
                    let retired = {
                        let pending = lock_ok(&conn.pending);
                        if pending.is_empty() {
                            conn.dead.store(true, Ordering::SeqCst);
                            true
                        } else {
                            false
                        }
                    };
                    if retired {
                        return;
                    }
                    if !reconnect_and_replay(core, shard, conn) {
                        session.fail_over(shard, conn);
                        return;
                    }
                    buf.clear();
                    continue 'connection;
                }
                Ok(_) => {
                    if buf.last() != Some(&b'\n') {
                        // Timeout mid-line: keep the prefix and retry.
                        continue;
                    }
                    let line = String::from_utf8_lossy(&buf)
                        .trim_end_matches(['\r', '\n'])
                        .to_string();
                    buf.clear();
                    deliver_response(core, shard, conn, &session.slots, &line);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    if !reconnect_and_replay(core, shard, conn) {
                        session.fail_over(shard, conn);
                        return;
                    }
                    buf.clear();
                    continue 'connection;
                }
            }
        }
    }
}

/// Matches one shard response line with the oldest pending request:
/// stores cacheable successes in the router cache (as their
/// `cached: true` variant), closes the entry's trace spans, observes
/// the per-shard latency histogram, and resolves the session slot.
fn deliver_response(
    core: &RouterCore,
    shard: usize,
    conn: &ConnShared,
    slots: &RouterShared,
    line: &str,
) {
    let entry = {
        let mut pending = lock_ok(&conn.pending);
        let entry = pending.pop_front();
        conn.space.notify_all();
        entry
    };
    let Some(entry) = entry else {
        // A response with no matching request: protocol violation; drop
        // the line rather than corrupting slot order.
        return;
    };
    // One parse per response line: metadata and the cache-stored rewrite
    // both come from this document.
    let doc = Json::parse(line).ok();
    let status = doc
        .as_ref()
        .and_then(|d| d.get("status"))
        .and_then(Json::as_str)
        .unwrap_or("");
    let cached = doc
        .as_ref()
        .and_then(|d| d.get("cached"))
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let error = status == "error";
    if status == "ok" {
        if let (Some(key), Some(doc)) = (entry.key, &doc) {
            if let Some(stored) = cached_true_of(doc) {
                core.cache_put(key, stored);
            }
        }
    }
    record_entry_dispatch(&entry);
    if let Some(t) = &entry.trace {
        close_req_trace(core, &t.req);
    }
    router_request_seconds(&core.topology.shards()[shard].id)
        .observe(entry.started.elapsed().as_secs_f64());
    // Decrement *before* resolving the slot: the writer samples
    // `outstanding` when it renders a `stats` slot, which it can only
    // reach after every preceding slot resolved — so decrementing first
    // keeps the sampled value deterministic.
    slots.outstanding.fetch_sub(1, Ordering::SeqCst);
    router_metrics().pending.dec();
    slots.set_line(entry.index, line.to_string(), cached, error);
}

/// Redials the shard and replays the pending queue in order. Returns
/// `false` when the shard stayed unreachable through the configured
/// attempts.
fn reconnect_and_replay(core: &RouterCore, shard: usize, conn: &ConnShared) -> bool {
    let Ok(fresh) = core.dial(shard) else {
        return false;
    };
    let mut stream = lock_ok(&conn.stream);
    let mut pending = lock_ok(&conn.pending);
    let now = Instant::now();
    for entry in pending.iter_mut() {
        if fresh.peer_addr().is_err() {
            return false;
        }
        let mut w = &fresh;
        if w.write_all(entry.raw.as_bytes()).is_err()
            || w.write_all(b"\n").is_err()
            || w.flush().is_err()
        {
            return false;
        }
        // The deadline clock restarts with the rewrite.
        entry.enqueued = now;
    }
    *stream = fresh;
    true
}

/// Reader half of a router session, usable from any transport: feed it
/// request lines, run [`write_router_responses`] from a writer thread,
/// and call [`RouterSessionDriver::finish`] when the input ends.
pub(crate) struct RouterSessionDriver {
    session: Arc<SessionState>,
    pub(crate) summary: RouterSummary,
    next_index: u64,
    /// A `hello` just switched the *inbound* codec; the transport takes
    /// this and retunes its scanner before the next unit.
    pending_switch: Option<WireCodec>,
}

impl RouterSessionDriver {
    fn new(core: Arc<RouterCore>) -> Self {
        let shards = core.topology.len();
        core.sessions.fetch_add(1, Ordering::SeqCst);
        router_metrics().sessions_live.inc();
        RouterSessionDriver {
            session: Arc::new(SessionState {
                core,
                slots: Arc::new(RouterShared::default()),
                conns: Mutex::new((0..shards).map(|_| None).collect()),
            }),
            summary: RouterSummary::default(),
            next_index: 0,
            pending_switch: None,
        }
    }

    fn core(&self) -> &Arc<RouterCore> {
        &self.session.core
    }

    pub(crate) fn shared(&self) -> Arc<RouterShared> {
        self.session.slots.clone()
    }

    /// Allocates the next response slot in stream order.
    fn begin(&mut self) -> u64 {
        let index = self.next_index;
        self.next_index += 1;
        self.summary.received += 1;
        router_metrics().requests.inc();
        self.session.slots.push_pending();
        index
    }

    /// Handles one scanned protocol unit (a request line or a binary
    /// frame payload). Returns `false` when the session should stop
    /// reading (an in-band `shutdown`).
    pub(crate) fn handle_unit(&mut self, kind: UnitKind, bytes: &[u8]) -> bool {
        match kind {
            UnitKind::Line => self.handle_text(bytes),
            UnitKind::Frame => self.handle_frame(bytes),
        }
    }

    /// After a unit containing a `hello`: the codec the inbound scanner
    /// must switch to before the next unit.
    pub(crate) fn take_codec_switch(&mut self) -> Option<WireCodec> {
        self.pending_switch.take()
    }

    /// Reports a fatal framing violation as a typed error response; the
    /// transport closes the session after this.
    pub(crate) fn protocol_error(&mut self, message: &str) {
        let index = self.begin();
        self.local_error(index, &Json::Null, ErrorCode::BadRequest, message, None);
    }

    fn handle_text(&mut self, bytes: &[u8]) -> bool {
        match std::str::from_utf8(bytes) {
            Ok(text) => self.handle_line(text.trim_end_matches('\r')),
            Err(_) => {
                let index = self.begin();
                self.local_error(
                    index,
                    &Json::Null,
                    ErrorCode::BadRequest,
                    "request bytes are not valid UTF-8",
                    None,
                );
                true
            }
        }
    }

    /// A binary frame at the router's edge: JSON payloads re-enter the
    /// line path (and are forwarded as the original text); binary
    /// partition payloads are decoded once and forwarded to the (JSON-
    /// lines) shards as their canonical re-rendered line.
    fn handle_frame(&mut self, payload: &[u8]) -> bool {
        match payload.split_first() {
            None => {
                let index = self.begin();
                self.local_error(
                    index,
                    &Json::Null,
                    ErrorCode::BadRequest,
                    "empty frame",
                    None,
                );
                true
            }
            Some((&codec::KIND_JSON, body)) => self.handle_text(body),
            Some((&codec::KIND_PARTITION, body)) => {
                let index = self.begin();
                match codec::decode_partition_payload(body) {
                    Ok(request) => {
                        let line = codec::request_json_line(&request);
                        let spec = request.spec.expect("partition requests carry a spec");
                        // Binary frames carry no trace field; the slow
                        // sampler may still open one inside.
                        self.route_partition(index, &line, request.id, spec, request.trace);
                        true
                    }
                    Err(e) => {
                        self.local_error(index, &e.id, e.code, &e.message, None);
                        true
                    }
                }
            }
            Some((&codec::KIND_BATCH, body)) => match codec::batch_subframes(body) {
                Ok(subs) => {
                    for sub in subs {
                        if !self.handle_frame(&body[sub]) {
                            return false;
                        }
                    }
                    true
                }
                Err(message) => {
                    let index = self.begin();
                    self.local_error(index, &Json::Null, ErrorCode::BadRequest, &message, None);
                    true
                }
            },
            Some((&kind, _)) => {
                let index = self.begin();
                self.local_error(
                    index,
                    &Json::Null,
                    ErrorCode::BadRequest,
                    &format!("unknown frame kind 0x{kind:02x}"),
                    None,
                );
                true
            }
        }
    }

    /// Decodes and routes one request line. Returns `false` when the
    /// session should stop reading (an in-band `shutdown`).
    pub(crate) fn handle_line(&mut self, raw: &str) -> bool {
        let line = raw.trim();
        if line.is_empty() {
            return true;
        }
        let index = self.begin();
        let request = match protocol::parse_request_line(line) {
            Ok(request) => request,
            Err(e) => {
                self.local_error(index, &e.id, e.code, &e.message, None);
                return true;
            }
        };
        match request.op {
            RequestOp::Ping => {
                self.session.slots.set_line(
                    index,
                    protocol::op_response(&request.id, "ping"),
                    false,
                    false,
                );
                true
            }
            RequestOp::Stats => {
                self.handle_stats(index, line, request.id, request.shard);
                true
            }
            RequestOp::Shutdown => {
                self.handle_shutdown(index, request.id);
                false
            }
            RequestOp::Hello => {
                // Codec negotiation is strictly between client and
                // router; shard connections always speak JSON lines.
                let codec = request.codec.unwrap_or(WireCodec::JsonLines);
                self.pending_switch = Some(codec);
                self.session.slots.set_switch(
                    index,
                    protocol::hello_response(&request.id, codec),
                    codec,
                );
                true
            }
            RequestOp::Partition => {
                let spec = request.spec.expect("partition requests carry a spec");
                self.route_partition(index, line, request.id, spec, request.trace);
                true
            }
        }
    }

    fn local_error(
        &mut self,
        index: u64,
        id: &Json,
        code: ErrorCode,
        message: &str,
        shard: Option<&str>,
    ) {
        self.summary.errors += 1;
        self.session.slots.set_line(
            index,
            protocol::error_response(id, code, message, shard),
            false,
            true,
        );
    }

    /// `stats` without a `shard` field is answered by the router itself
    /// (topology-independent, deferred to the writer); with one — decoded
    /// and validated by the protocol codec — the raw line is forwarded to
    /// the named shard, whose response carries its own counters and
    /// `shard` tag.
    fn handle_stats(&mut self, index: u64, raw: &str, id: Json, shard: Option<String>) {
        match shard {
            None => {
                let received = self.summary.received;
                let sessions = self.core().sessions.load(Ordering::SeqCst);
                let core = (self.core().config.replicas > 1).then(|| self.core().clone());
                self.session.slots.set(
                    index,
                    RSlot::Stats {
                        id,
                        received,
                        sessions,
                        core,
                    },
                );
            }
            Some(name) => match self.core().topology.index_of(&name) {
                Some(shard) => self.forward(
                    &ForwardReq {
                        index,
                        raw,
                        key: None,
                        id: &id,
                        rt: None,
                    },
                    vec![shard],
                ),
                None => {
                    let message = format!(
                        "no shard named {name:?} in the topology ({})",
                        self.core()
                            .topology
                            .shards()
                            .iter()
                            .map(|s| s.id.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    self.local_error(index, &id, ErrorCode::UnknownShard, &message, None);
                }
            },
        }
    }

    /// Opens the trace for one partition request: the router's root
    /// `request` span, parented under the client's context when the
    /// request arrived traced, or a speculative sampler trace when
    /// [`RouterConfig::trace_slow`] is set.
    fn begin_trace(&self, wire: Option<mg_obs::WireTrace>, started: Instant) -> Option<ReqTrace> {
        let start_us = trace::now_us();
        match wire {
            Some(w) => Some(ReqTrace {
                ctx: TraceContext {
                    trace_id: w.trace_id,
                    span_id: trace::next_span_id(),
                    parent_id: w.parent,
                },
                speculative: false,
                start_us,
                started,
            }),
            None => self.core().config.trace_slow.map(|_| ReqTrace {
                ctx: trace::collector().begin_speculative(),
                speculative: true,
                start_us,
                started,
            }),
        }
    }

    fn route_partition(
        &mut self,
        index: u64,
        raw: &str,
        id: Json,
        spec: mg_core::service::PartitionSpec,
        wire: Option<mg_obs::WireTrace>,
    ) {
        let started = Instant::now();
        let rt = self.begin_trace(wire, started);
        if self.core().shutdown.load(Ordering::SeqCst) {
            self.local_error(
                index,
                &id,
                ErrorCode::ShuttingDown,
                "router is draining; request rejected",
                None,
            );
            if let Some(rt) = &rt {
                close_req_trace(self.core(), rt);
            }
            return;
        }
        let placement = match placement_key(&spec.matrix) {
            Ok(placement) => placement,
            Err((code, message)) => {
                self.local_error(index, &id, code, &message, None);
                if let Some(rt) = &rt {
                    close_req_trace(self.core(), rt);
                }
                return;
            }
        };
        // The `route` span covers the synchronous routing decision:
        // placement, cache lookup, replica ranking.
        let route_span = rt.as_ref().map(|rt| rt.ctx.child());
        let key: RouterKey = (
            placement.key,
            spec.method,
            spec.backend,
            spec.epsilon.to_bits(),
            spec.seed,
            spec.include_partition,
        );
        let lookup_us = trace::now_us();
        let lookup_at = Instant::now();
        let stored = self.core().cache_get(&key);
        if let Some(rs) = &route_span {
            trace::record_child(rs, "cache_lookup", lookup_us, lookup_at.elapsed());
        }
        if let Some(stored) = stored {
            if let Some(line) = with_id(&stored, &id) {
                self.summary.cache_hits += 1;
                router_metrics().cache_hits.inc();
                self.session.slots.set_line(index, line, true, false);
                if let Some(rt) = &rt {
                    let rs = route_span.expect("route span exists whenever rt does");
                    trace::record_span(
                        rs.trace_id,
                        rs.span_id,
                        rs.parent_id,
                        "route",
                        rt.start_us,
                        rt.started.elapsed(),
                    );
                    close_req_trace(self.core(), rt);
                }
                router_request_seconds("router").observe(started.elapsed().as_secs_f64());
                return;
            }
        }
        // Pre-validated: the request field by the protocol decoder, the
        // default by Router::new.
        let backend = parse_backend(spec.backend.unwrap_or(self.core().config.default_backend))
            .expect("backend names are validated at decode/config time");
        let heavy = placement
            .matrix
            .as_ref()
            .is_some_and(|m| backend.estimated_cost(m) >= self.core().config.heavy_cost);
        let replicas = self.core().config.replicas;
        let ranked = place_replicas(
            placement.key,
            self.core().topology.shards(),
            heavy,
            replicas,
        );
        // Close `route` before the forward: the dispatch leg owns the
        // enqueue-through-delivery window, and a speculative trace may
        // be settled by the reader the moment the write lands.
        if let Some(rt) = &rt {
            let rs = route_span.expect("route span exists whenever rt does");
            trace::record_span(
                rs.trace_id,
                rs.span_id,
                rs.parent_id,
                "route",
                rt.start_us,
                rt.started.elapsed(),
            );
        }
        self.forward(
            &ForwardReq {
                index,
                raw,
                key: Some(key),
                id: &id,
                rt,
            },
            ranked,
        );
    }

    /// Forwards the raw request line to the best live candidate shard,
    /// blocking while the in-flight window is full. Walks down the
    /// ranking as candidates fail to connect; a typed `shard_unavailable`
    /// error only once the whole replica set is exhausted.
    fn forward(&mut self, req: &ForwardReq, candidates: Vec<usize>) {
        let primary = candidates[0];
        let mut remaining = candidates;
        loop {
            let Some(shard) = next_candidate(self.core(), &mut remaining) else {
                unreachable!("forward always receives at least one candidate");
            };
            match self.try_forward(req, shard, &remaining) {
                ForwardOutcome::Sent => {
                    if shard != primary {
                        // Dispatched away from its top rank — whether the
                        // primary is believed dead or just failed to
                        // connect, this request failed over.
                        self.core().failovers.fetch_add(1, Ordering::SeqCst);
                        router_metrics().failovers.inc();
                    }
                    self.summary.forwarded += 1;
                    return;
                }
                ForwardOutcome::ShardLost(message) => {
                    self.core().mark_alive(shard, false);
                    if remaining.is_empty() {
                        let shard_id = self.core().topology.shards()[shard].id.clone();
                        self.local_error(
                            req.index,
                            req.id,
                            ErrorCode::ShardUnavailable,
                            &message,
                            Some(&shard_id),
                        );
                        if let Some(rt) = &req.rt {
                            close_req_trace(self.core(), rt);
                        }
                        return;
                    }
                }
            }
        }
    }

    /// One forwarding attempt against one shard.
    fn try_forward(
        &mut self,
        req: &ForwardReq,
        shard: usize,
        fallbacks: &[usize],
    ) -> ForwardOutcome {
        let conn = match self.session.connection(shard) {
            Ok(conn) => conn,
            Err(e) => {
                let spec = &self.core().topology.shards()[shard];
                return ForwardOutcome::ShardLost(format!(
                    "shard {:?} at {} is unreachable: {e}",
                    spec.id, spec.addr
                ));
            }
        };
        // Window backpressure: wait for room (the reader signals `space`
        // as responses land or the connection fails).
        let window = self.core().config.window.max(1);
        {
            let mut pending = lock_ok(&conn.pending);
            if pending.len() >= window {
                router_metrics().window_stalls.inc();
            }
            while pending.len() >= window && !conn.dead.load(Ordering::SeqCst) {
                pending = wait_ok(&conn.space, pending);
            }
        }
        // A traced forward opens its `dispatch` leg here and stamps the
        // propagated context into the line it sends, so the shard's
        // spans parent under this leg. Untraced lines are forwarded
        // byte-for-byte.
        let trace = req.rt.map(|rt| EntryTrace {
            req: rt,
            dispatch_span: trace::next_span_id(),
            dispatch_parent: rt.ctx.span_id,
            dispatch_us: trace::now_us(),
            dispatch_at: Instant::now(),
        });
        let send = match &trace {
            Some(t) => stamp_trace(req.raw, t.req.ctx.trace_id, t.dispatch_span),
            None => req.raw.to_string(),
        };
        // Enqueue *then* write, both under the stream lock, so the wire
        // order always equals the pending order (what a replay resends).
        // The dead-check happens under the pending lock, mirroring the
        // reader's idle-EOF retirement, so no entry lands on a retired
        // connection unseen.
        let stream = lock_ok(&conn.stream);
        {
            let mut pending = lock_ok(&conn.pending);
            if conn.dead.load(Ordering::SeqCst) {
                drop(pending);
                drop(stream);
                let spec = &self.core().topology.shards()[shard];
                return ForwardOutcome::ShardLost(format!(
                    "shard {:?} at {} became unreachable; request not forwarded",
                    spec.id, spec.addr
                ));
            }
            pending.push_back(PendingEntry {
                index: req.index,
                raw: send.clone(),
                key: req.key,
                id: req.id.clone(),
                fallbacks: fallbacks.to_vec(),
                enqueued: Instant::now(),
                started: req.rt.map_or_else(Instant::now, |rt| rt.started),
                trace,
            });
            self.session
                .slots
                .outstanding
                .fetch_add(1, Ordering::SeqCst);
            router_metrics().pending.inc();
            dispatch_counter(&self.core().topology.shards()[shard].id).inc();
        }
        let mut w = &*stream;
        let write_ok =
            w.write_all(send.as_bytes()).is_ok() && w.write_all(b"\n").is_ok() && w.flush().is_ok();
        drop(stream);
        if !write_ok {
            // Poke the reader: shut the read half down so it stops
            // waiting on a dead socket and runs reconnect-and-replay
            // (the entry is already pending, so the replay resends it —
            // or fails it over to the next replica).
            let stream = lock_ok(&conn.stream);
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        ForwardOutcome::Sent
    }

    /// Blocks until every response slot of this session has been resolved
    /// (answered, failed over and answered, or failed) — including
    /// requests momentarily in failover limbo between two pending queues.
    fn drain_pending(&self, skip: Option<u64>) {
        self.session.slots.drain_resolved(skip);
    }

    /// The in-band `shutdown`: reject new work router-wide, drain this
    /// session's forwards, forward the shutdown to every shard (drain
    /// semantics, once per router), then ack.
    fn handle_shutdown(&mut self, index: u64, id: Json) {
        self.core().shutdown.store(true, Ordering::SeqCst);
        self.drain_pending(Some(index));
        let streams: Vec<Option<TcpStream>> = {
            let mut conns = lock_ok(&self.session.conns);
            let taken: Vec<Option<ShardConn>> =
                conns.iter_mut().map(std::option::Option::take).collect();
            drop(conns);
            taken
                .into_iter()
                .map(|slot| slot.and_then(ShardConn::retire))
                .collect()
        };
        self.core().teardown_shards(streams);
        self.session
            .slots
            .set_line(index, protocol::op_response(&id, "shutdown"), false, false);
    }

    /// Ends the session: waits out in-flight forwards, retires the
    /// connections (pooling the clean ones), and releases the writer.
    pub(crate) fn finish(&mut self) {
        self.drain_pending(None);
        let taken: Vec<Option<ShardConn>> = {
            let mut conns = lock_ok(&self.session.conns);
            conns.iter_mut().map(std::option::Option::take).collect()
        };
        for (shard, slot) in taken.into_iter().enumerate() {
            if let Some(conn) = slot {
                if let Some(stream) = conn.retire() {
                    if !self.core().shutdown.load(Ordering::SeqCst) {
                        self.core().return_connection(shard, stream);
                    }
                }
            }
        }
        self.session.slots.finish_input();
    }

    /// Sets the final `responses` count (transports that pump the writer
    /// themselves feed the [`write_router_responses`] return value here).
    pub(crate) fn record_responses(&mut self, written: u64) {
        self.summary.responses = written;
    }
}

impl Drop for RouterSessionDriver {
    fn drop(&mut self) {
        self.session.core.sessions.fetch_sub(1, Ordering::SeqCst);
        router_metrics().sessions_live.dec();
    }
}

/// One client request on its way to a shard: the session index, the
/// line to forward, the router-cache key, the echoed id, and the
/// optional trace handle.
struct ForwardReq<'a> {
    index: u64,
    raw: &'a str,
    key: Option<RouterKey>,
    id: &'a Json,
    rt: Option<ReqTrace>,
}

/// Result of one forwarding attempt.
enum ForwardOutcome {
    /// Enqueued and written (or poked for replay) — the request will be
    /// answered or failed over by the reader.
    Sent,
    /// The shard could not accept the request at all; the message is the
    /// would-be `shard_unavailable` diagnostic.
    ShardLost(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_locks_recover_instead_of_cascading() {
        let shared = Arc::new(Mutex::new(41u64));
        let poisoner = shared.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(shared.is_poisoned(), "the panic must have poisoned it");
        // lock_ok recovers the inner data where .lock().expect() would
        // abort the caller.
        let mut guard = lock_ok(&shared);
        assert_eq!(*guard, 41);
        *guard += 1;
        drop(guard);
        assert_eq!(*lock_ok(&shared), 42);
    }

    #[test]
    fn poisoned_condvar_waits_recover_too() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let poisoner = state.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.0.lock().unwrap();
            panic!("poison the condvar mutex");
        })
        .join();
        let flipper = state.clone();
        std::thread::spawn(move || {
            *lock_ok(&flipper.0) = true;
            flipper.1.notify_all();
        });
        let mut guard = lock_ok(&state.0);
        while !*guard {
            guard = wait_ok(&state.1, guard);
        }
    }

    #[test]
    fn next_candidate_prefers_live_replicas_in_rank_order() {
        let topology = Topology::parse("a=h:1,b=h:2,c=h:3").unwrap();
        let router = Router::new(topology, RouterConfig::default()).unwrap();
        let core = &router.core;
        let mut fallbacks = vec![1, 2, 0];
        core.mark_alive(1, false);
        assert_eq!(next_candidate(core, &mut fallbacks), Some(2));
        assert_eq!(fallbacks, vec![1, 0]);
        core.mark_alive(0, false);
        // Only dead ones left alive-wise? 1 and 0 are dead: take the
        // best-ranked anyway and let the dial decide.
        assert_eq!(next_candidate(core, &mut fallbacks), Some(1));
        assert_eq!(next_candidate(core, &mut fallbacks), Some(0));
        assert_eq!(next_candidate(core, &mut fallbacks), None);
    }

    #[test]
    fn stamp_trace_inserts_or_replaces_the_trace_field() {
        let raw = r#"{"op":"partition","id":7,"matrix":{"rows":1,"cols":1,"entries":[[0,0]]}}"#;
        let stamped = stamp_trace(raw, 0xabc, 0x123);
        let doc = Json::parse(&stamped).expect("stamped line parses");
        let t = doc.get("trace").expect("trace field present");
        assert_eq!(
            t.get("id").and_then(Json::as_str),
            Some("00000000000000000000000000000abc")
        );
        assert_eq!(
            t.get("parent").and_then(Json::as_str),
            Some("0000000000000123")
        );
        // Everything else survives the re-render.
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(7));
        // Restamping (the failover path) replaces, never duplicates.
        let restamped = stamp_trace(&stamped, 0xabc, 0x456);
        let doc = Json::parse(&restamped).expect("restamped line parses");
        let Json::Obj(fields) = &doc else {
            panic!("object")
        };
        assert_eq!(fields.iter().filter(|(k, _)| k == "trace").count(), 1);
        assert_eq!(
            doc.get("trace")
                .and_then(|t| t.get("parent"))
                .and_then(Json::as_str),
            Some("0000000000000456")
        );
    }

    #[test]
    fn zero_replicas_is_a_config_error() {
        let topology = Topology::parse("127.0.0.1:1").unwrap();
        let config = RouterConfig {
            replicas: 0,
            ..RouterConfig::default()
        };
        assert!(Router::new(topology, config).is_err());
    }
}

//! Router-cache line surgery.
//!
//! The router cache stores *response lines*, not outcomes: the stored
//! value is the shard's success line rewritten to `cached: true`, and a
//! hit re-issues it under the new request's id. Both rewrites go through
//! the deterministic [`Json`] parser/writer pair, whose serialisation of
//! its own output is byte-stable — so a router-cache hit is
//! byte-identical to the line the owning shard would have produced for
//! the repeat (its own cache answers repeats with the same fields and
//! `cached: true`).

use mg_core::Method;
use mg_server::Json;

/// The request-level identity of a cacheable partition request:
/// (placement key, method, explicit backend, ε bits, explicit seed,
/// include_partition). Server-side defaults (backend, master seed) are
/// deliberately *not* resolved here — all shards share one configuration,
/// so requests agreeing on this key receive identical response payloads.
pub type RouterKey = (u64, Method, Option<&'static str>, u64, Option<u64>, bool);

/// Rewrites one top-level field of a parsed response document,
/// re-serialising the rest byte-identically (the writer round-trips its
/// own output exactly). `None` when the document is not an object or
/// lacks the field.
fn rewrite_field_doc(doc: &Json, field: &str, value: Json) -> Option<String> {
    let mut doc = doc.clone();
    let Json::Obj(fields) = &mut doc else {
        return None;
    };
    let slot = fields.iter_mut().find(|(k, _)| k == field)?;
    slot.1 = value;
    Some(doc.to_string())
}

fn rewrite_field(line: &str, field: &str, value: Json) -> Option<String> {
    rewrite_field_doc(&Json::parse(line).ok()?, field, value)
}

/// The stored variant of a fresh success document: `cached` flipped to
/// `true`. Takes the already-parsed document so the delivery path parses
/// each response line exactly once.
pub(crate) fn cached_true_of(doc: &Json) -> Option<String> {
    rewrite_field_doc(doc, "cached", Json::Bool(true))
}

/// Line-level variant of [`cached_true_of`] (tests and one-off callers).
#[cfg(test)]
pub(crate) fn with_cached_true(line: &str) -> Option<String> {
    rewrite_field(line, "cached", Json::Bool(true))
}

/// Re-issues a stored line under a new request id.
pub(crate) fn with_id(line: &str, id: &Json) -> Option<String> {
    rewrite_field(line, "id", id.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "{\"id\":5,\"status\":\"ok\",\
         \"matrix\":{\"rows\":2,\"cols\":3,\"nnz\":4,\"fingerprint\":\"00000000000000ab\"},\
         \"backend\":\"mondriaan\",\
         \"method\":\"mg-ir\",\"epsilon\":0.03,\"seed\":99,\"volume\":1,\"imbalance\":0,\
         \"ir_iterations\":2,\"part_nnz\":[2,2],\"cached\":false}";

    #[test]
    fn cached_flag_flips_without_touching_other_bytes() {
        let stored = with_cached_true(LINE).unwrap();
        assert_eq!(stored, LINE.replace("\"cached\":false", "\"cached\":true"));
    }

    #[test]
    fn reissue_swaps_only_the_id() {
        let stored = with_cached_true(LINE).unwrap();
        let reissued = with_id(&stored, &Json::Str("r-2".into())).unwrap();
        assert!(reissued.starts_with("{\"id\":\"r-2\",\"status\":\"ok\""));
        assert_eq!(reissued.replace("{\"id\":\"r-2\",", "{\"id\":5,"), stored);
    }

    #[test]
    fn rewrites_round_trip_the_float_fields_exactly() {
        // ε 0.03 and imbalance 0 must survive parse → write untouched —
        // the property the byte-identity contract rests on.
        let twice = with_id(&with_id(LINE, &Json::Null).unwrap(), &Json::UInt(5)).unwrap();
        assert_eq!(twice, LINE);
    }

    #[test]
    fn unparseable_lines_refuse_rewriting() {
        assert!(with_cached_true("not json").is_none());
        assert!(
            with_cached_true("{\"status\":\"ok\"}").is_none(),
            "no cached field"
        );
        assert!(with_id("[1,2]", &Json::Null).is_none(), "not an object");
    }
}

//! Router-side metric handles in the process-global `mg-obs` registry.
//!
//! Observability only: the deterministic `stats` line reads
//! session/core-local counters in `router.rs`, never these globals
//! (several routers in one process — tests, the harness — share the
//! registry). Unlike the stats line, the exposition endpoint reports
//! `failovers`/`dead`/`replicas` state unconditionally, so healthy-run
//! failover counts are observable.

use mg_obs::{registry, Counter, Gauge, Histogram, PHASE_BOUNDS};
use std::sync::OnceLock;

pub(crate) struct RouterMetrics {
    /// Every decoded request unit, including ones that fail to parse.
    pub requests: Counter,
    /// Requests short-circuited by the router-level LRU.
    pub cache_hits: Counter,
    /// Requests replayed or dispatched away from their primary replica.
    pub failovers: Counter,
    /// Forward attempts that blocked on a full per-shard window.
    pub window_stalls: Counter,
    /// Forwarded-but-unanswered requests across all sessions (replay
    /// depth: what a failover would need to replay right now).
    pub pending: Gauge,
    /// Open router sessions.
    pub sessions_live: Gauge,
}

/// The shared handle set, registered on first use.
pub(crate) fn router_metrics() -> &'static RouterMetrics {
    static METRICS: OnceLock<RouterMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = registry();
        RouterMetrics {
            requests: r.counter("mgpart_router_requests_total", &[]),
            cache_hits: r.counter("mgpart_router_cache_hits_total", &[]),
            failovers: r.counter("mgpart_router_failovers_total", &[]),
            window_stalls: r.counter("mgpart_router_window_stalls_total", &[]),
            pending: r.gauge("mgpart_router_pending_requests", &[]),
            sessions_live: r.gauge("mgpart_router_sessions_live", &[]),
        }
    })
}

/// Per-shard dispatch counter (`shard=` is the topology id).
pub(crate) fn dispatch_counter(shard_id: &str) -> Counter {
    registry().counter("mgpart_router_dispatches_total", &[("shard", shard_id)])
}

/// End-to-end routed-request latency by resolving shard, decode through
/// delivery (`shard="router"` for requests answered from the router's
/// own cache). Shares the phase bucket ladder so router, shard, and
/// phase latencies read on one scale.
pub(crate) fn router_request_seconds(shard_id: &str) -> Histogram {
    registry().histogram(
        "mgpart_router_request_seconds",
        &[("shard", shard_id)],
        PHASE_BOUNDS,
    )
}

/// Records a probe/health state transition for one shard: bumps the
/// `to="up"|"down"` transition counter and sets the liveness gauge.
pub(crate) fn health_transition(shard_id: &str, alive: bool) {
    let to = if alive { "up" } else { "down" };
    registry()
        .counter(
            "mgpart_router_probe_transitions_total",
            &[("shard", shard_id), ("to", to)],
        )
        .inc();
    set_shard_alive(shard_id, alive);
}

/// Sets the per-shard liveness gauge (1 = believed alive).
pub(crate) fn set_shard_alive(shard_id: &str, alive: bool) {
    registry()
        .gauge("mgpart_router_shard_alive", &[("shard", shard_id)])
        .set(u64::from(alive));
}

/// Records the configured replication factor.
pub(crate) fn set_replicas(replicas: usize) {
    registry()
        .gauge("mgpart_router_replicas", &[])
        .set(replicas as u64);
}

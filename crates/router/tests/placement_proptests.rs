//! Property tests of the placement function (the satellite contract):
//! every fingerprint maps to exactly one live shard, the distribution
//! over random fingerprints stays within 2× of uniform for equal
//! weights, and removing one of K shards remaps only ~1/K of the keys.

use mg_router::{place, rendezvous, ShardSpec};
use proptest::prelude::*;

fn shards(k: usize) -> Vec<ShardSpec> {
    (0..k)
        .map(|i| ShardSpec {
            id: format!("shard-{i}"),
            addr: format!("10.0.0.{i}:7077"),
            capacity: 1,
        })
        .collect()
}

/// A deterministic stream of well-spread fingerprints (the real keys are
/// `mix64` outputs, i.e. uniform u64s).
fn fingerprints(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            // xorshift64* — independent of the placement hash family.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        })
        .collect()
}

proptest! {
    #[test]
    fn every_fingerprint_maps_to_exactly_one_live_shard(
        key in any::<u64>(),
        k in 1usize..9,
        heavy in any::<bool>(),
    ) {
        let topology = shards(k);
        let shard = place(key, &topology, heavy);
        prop_assert!(shard < k, "picked shard {shard} of {k}");
        // Exactly one: placement is a function (same inputs, same pick).
        prop_assert_eq!(shard, place(key, &topology, heavy));
    }

    #[test]
    fn distribution_stays_within_2x_of_uniform_for_equal_weights(
        seed in any::<u64>(),
        k in 2usize..7,
    ) {
        let topology = shards(k);
        let n = 1000usize;
        let mut counts = vec![0usize; k];
        for key in fingerprints(seed, n) {
            counts[place(key, &topology, false)] += 1;
        }
        let uniform = n / k;
        for (shard, &count) in counts.iter().enumerate() {
            prop_assert!(
                count <= 2 * uniform,
                "shard {shard} got {count} of {n} keys over {k} shards (2x bound {})",
                2 * uniform
            );
            prop_assert!(
                count >= uniform / 2,
                "shard {shard} starved with {count} of {n} keys over {k} shards"
            );
        }
    }

    #[test]
    fn removing_one_of_k_shards_remaps_only_its_keys(
        seed in any::<u64>(),
        k in 2usize..7,
        victim_index in any::<u8>(),
    ) {
        let full = shards(k);
        let victim = victim_index as usize % k;
        let mut survivors = full.clone();
        let removed = survivors.remove(victim);

        let n = 1000usize;
        let mut owned_by_victim = 0usize;
        for key in fingerprints(seed, n) {
            let before = &full[place(key, &full, false)];
            let after = &survivors[place(key, &survivors, false)];
            if before.id == removed.id {
                owned_by_victim += 1;
            } else {
                // Rendezvous minimality: a surviving shard's keys never
                // move when another shard leaves.
                prop_assert_eq!(&before.id, &after.id);
            }
        }
        // Only the victim's ~n/k keys remapped (2x tolerance, same as the
        // distribution bound).
        prop_assert!(
            owned_by_victim <= 2 * n / k,
            "victim owned {owned_by_victim} of {n} keys over {k} shards"
        );
    }

    #[test]
    fn rendezvous_ignores_weight_rescaling(
        key in any::<u64>(),
        k in 1usize..6,
        scale in 1u32..50,
    ) {
        // Multiplying every weight by one constant must not change any
        // pick — the property that makes capacities *relative*.
        let ids: Vec<String> = (0..k).map(|i| format!("n{i}")).collect();
        let base: Vec<(&str, f64)> =
            ids.iter().map(|id| (id.as_str(), 3.0)).collect();
        let scaled: Vec<(&str, f64)> = ids
            .iter()
            .map(|id| (id.as_str(), 3.0 * f64::from(scale)))
            .collect();
        prop_assert_eq!(rendezvous(key, &base), rendezvous(key, &scaled));
    }
}

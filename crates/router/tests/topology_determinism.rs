//! The routing determinism contract (the acceptance criterion of the
//! sharding tentpole): one session's response byte stream is a pure
//! function of its request byte stream for **any shard count at any
//! worker-thread count** — 1, 2 and 4 identically-configured shards, each
//! at 1, 2 and 4 threads, must produce the same bytes, because placement
//! is a pure function of the request, every job is seeded from its key,
//! and the router cache only re-issues shard-produced lines.

use mg_collection::{CollectionScale, CollectionSpec};
use mg_router::{LocalCluster, RouterConfig};
use mg_server::ServiceConfig;
use mg_sparse::{gen, io, Coo};

fn inline_payload(a: &Coo) -> String {
    let entries: Vec<String> = a.iter().map(|(i, j)| format!("[{i},{j}]")).collect();
    format!(
        "{{\"rows\":{},\"cols\":{},\"entries\":[{}]}}",
        a.rows(),
        a.cols(),
        entries.join(",")
    )
}

fn mtx_payload(a: &Coo) -> String {
    let mut text = Vec::new();
    io::write_matrix_market(a, &mut text).unwrap();
    let text = String::from_utf8(text).unwrap();
    format!(
        "{{\"mtx\":\"{}\"}}",
        text.replace('\\', "\\\\")
            .replace('\n', "\\n")
            .replace('"', "\\\"")
    )
}

/// A script that spreads distinct matrices over the keyspace (so K > 1
/// actually shards the work), repeats keys (cache hits), crosses payload
/// kinds, selects backends, provokes every locally- and shard-answered
/// error, and exercises the auxiliary ops.
fn script() -> String {
    let matrices = [
        gen::laplacian_2d(9, 7),
        gen::arrow(40, 3),
        gen::laplacian_2d_9pt(8, 6),
        gen::laplacian_2d(12, 5),
        gen::arrow(25, 2),
        gen::laplacian_2d(6, 6),
    ];
    let mut lines: Vec<String> = Vec::new();
    let mut id = 0u64;
    // Distinct fresh jobs, spread across shards by content fingerprint.
    for a in &matrices {
        lines.push(format!(
            "{{\"id\":{id},\"matrix\":{},\"method\":\"mg-ir\"}}",
            inline_payload(a)
        ));
        id += 1;
    }
    // The same matrix as a Matrix Market payload: same fingerprint, same
    // shard, answered as a repeat.
    lines.push(format!(
        "{{\"id\":{id},\"matrix\":{},\"method\":\"mg-ir\"}}",
        mtx_payload(&matrices[0])
    ));
    id += 1;
    // Collection matrices route by name fingerprint.
    for name in ["laplace2d_00_k20", "arrow_00_n287_b2"] {
        lines.push(format!(
            "{{\"id\":{id},\"matrix\":{{\"collection\":{name:?}}},\"method\":\"lb\"}}"
        ));
        id += 1;
    }
    // Straight repeats → cached: true (router LRU or shard cache; the
    // bytes agree either way).
    lines.push(format!(
        "{{\"id\":{id},\"matrix\":{},\"method\":\"mg-ir\"}}",
        inline_payload(&matrices[1])
    ));
    id += 1;
    lines.push(format!(
        "{{\"id\":{id},\"matrix\":{{\"collection\":\"laplace2d_00_k20\"}},\"method\":\"lb\"}}"
    ));
    id += 1;
    // Another backend on a known matrix: separate key, computed fresh.
    lines.push(format!(
        "{{\"id\":{id},\"matrix\":{},\"backend\":\"geometric\"}}",
        inline_payload(&matrices[2])
    ));
    id += 1;
    // Full assignment requested (its own key at both cache levels).
    lines.push(format!(
        "{{\"id\":{id},\"matrix\":{},\"include_partition\":true}}",
        inline_payload(&matrices[3])
    ));
    id += 1;
    // Errors: local parse/validation failures and shard-side failures.
    lines.push("not json at all".to_string());
    lines.push(format!(
        "{{\"id\":{id},\"matrix\":{{\"collection\":\"no_such_matrix\"}}}}"
    ));
    id += 1;
    lines.push(format!(
        "{{\"id\":{id},\"matrix\":{{\"rows\":2,\"cols\":2,\"entries\":[[0,0]]}},\"backend\":\"quantum\"}}"
    ));
    id += 1;
    lines.push(format!(
        "{{\"id\":{id},\"matrix\":{{\"rows\":2,\"cols\":2,\"entries\":[[7,0]]}}}}"
    ));
    id += 1;
    // Auxiliary ops; stats is router-local and topology-independent.
    lines.push(format!("{{\"id\":{id},\"op\":\"ping\"}}"));
    id += 1;
    lines.push(format!("{{\"id\":{id},\"op\":\"stats\"}}"));
    id += 1;
    // In-band shutdown: drains the session, then every shard.
    lines.push(format!("{{\"id\":{id},\"op\":\"shutdown\"}}"));
    let mut text = lines.join("\n");
    text.push('\n');
    text
}

/// Identical shard configuration at every index — the determinism
/// contract's precondition (untagged: shard ids would legitimately
/// differ across topologies on error diagnostics).
fn shard_config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        threads,
        collection: CollectionSpec {
            seed: 11,
            scale: CollectionScale::Smoke,
        },
        ..ServiceConfig::default()
    }
}

fn run(shards: usize, threads: usize) -> String {
    let cluster = LocalCluster::spawn(shards, |_| shard_config(threads));
    let router = cluster.router(RouterConfig::default());
    let mut out = Vec::new();
    let summary = router.run_session(script().as_bytes(), &mut out);
    cluster.shutdown();
    assert_eq!(summary.received, summary.responses);
    String::from_utf8(out).unwrap()
}

#[test]
fn response_stream_is_identical_for_1_2_4_shards_at_1_2_4_threads() {
    let baseline = run(1, 1);
    assert!(baseline.contains("\"cached\":true"));
    assert!(baseline.contains("\"status\":\"error\""));
    assert!(baseline.contains("\"op\":\"stats\""));
    assert!(baseline.contains("\"op\":\"shutdown\""));
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 2, 4] {
            if (shards, threads) == (1, 1) {
                continue;
            }
            assert_eq!(
                baseline,
                run(shards, threads),
                "response stream diverged at {shards} shards / {threads} threads"
            );
        }
    }
}

#[test]
fn routed_streams_match_a_direct_server_session() {
    // The same script (minus the shutdown ack semantics, which are
    // identical anyway) through one un-routed server must produce the
    // same bytes — the router adds no observable layer.
    let direct_service = mg_server::Service::start(shard_config(2));
    let mut direct = Vec::new();
    direct_service.run_session(script().as_bytes(), &mut direct);
    direct_service.shutdown_and_join();
    let direct = String::from_utf8(direct).unwrap();
    let routed = run(2, 2);
    // The stats line is the only divergence: the server reports richer
    // counters (cache_misses, per-backend completions) than the router.
    let differing: Vec<(&str, &str)> = direct
        .lines()
        .zip(routed.lines())
        .filter(|(a, b)| a != b)
        .collect();
    assert_eq!(
        differing.len(),
        1,
        "only the stats line may differ: {differing:#?}"
    );
    assert!(differing[0].0.contains("\"op\":\"stats\""));
    assert!(differing[0].1.contains("\"op\":\"stats\""));
}

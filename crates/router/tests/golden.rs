//! The checked-in router smoke script and golden response stream,
//! replayed in-process over the multi-shard harness. CI runs the same
//! pair through the real binaries (`router-smoke` in
//! `.github/workflows/ci.yml`: two `mgpart serve` shard processes plus
//! `mgpart route` in stdio mode); this test catches drift locally under
//! plain `cargo test`.
//!
//! The script's first five lines are exactly
//! `crates/server/tests/data/smoke_requests.jsonl`, and the golden's
//! first five lines must match the single-server golden byte-for-byte —
//! the router adds no observable layer over the overlap.

use mg_collection::{CollectionScale, CollectionSpec};
use mg_router::{LocalCluster, RouterConfig};
use mg_server::ServiceConfig;

const REQUESTS: &str = include_str!("data/route_requests.jsonl");
const GOLDEN: &str = include_str!("data/route_golden.jsonl");
const SERVER_REQUESTS: &str = include_str!("../../server/tests/data/smoke_requests.jsonl");
const SERVER_GOLDEN: &str = include_str!("../../server/tests/data/smoke_golden.jsonl");

/// The `mgpart serve` default configuration (what the CI shards run
/// with, shard thread count varied — the stream must not depend on it).
fn shard_config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        threads,
        collection: CollectionSpec {
            seed: 11,
            scale: CollectionScale::Smoke,
        },
        ..ServiceConfig::default()
    }
}

fn run(shards: usize, threads: usize) -> String {
    run_with(shards, threads, RouterConfig::default())
}

fn run_with(shards: usize, threads: usize, config: RouterConfig) -> String {
    let cluster = LocalCluster::spawn(shards, |_| shard_config(threads));
    let router = cluster.router(config);
    let mut out = Vec::new();
    router.run_session(REQUESTS.as_bytes(), &mut out);
    drop(router);
    cluster.shutdown();
    String::from_utf8(out).unwrap()
}

#[test]
fn route_script_reproduces_the_checked_in_golden_stream() {
    for (shards, threads) in [(1usize, 4usize), (2, 1), (2, 4), (3, 2)] {
        assert_eq!(
            run(shards, threads),
            GOLDEN,
            "response stream drifted from tests/data/route_golden.jsonl \
             (shards={shards}, threads={threads}); if the change is \
             intentional, regenerate with two `mgpart serve --listen` \
             shards and `mgpart route` as in the router-smoke CI job"
        );
    }
}

/// Replication is invisible while everyone is healthy: `--replicas 2`
/// (and 3) over a healthy cluster replays the checked-in golden
/// byte-for-byte — the acceptance pin that turning replication on never
/// perturbs a stream, and that `--replicas 1` is the exact status quo.
#[test]
fn healthy_replicated_topologies_reproduce_the_golden_stream() {
    for (shards, threads, replicas) in [(2usize, 2usize, 2usize), (3, 4, 2), (3, 1, 3)] {
        let config = RouterConfig {
            replicas,
            ..RouterConfig::default()
        };
        assert_eq!(
            run_with(shards, threads, config),
            GOLDEN,
            "replicated healthy stream drifted (shards={shards}, \
             threads={threads}, replicas={replicas})"
        );
    }
}

#[test]
fn route_script_extends_the_server_smoke_script() {
    let overlap = SERVER_REQUESTS.lines().count();
    assert_eq!(overlap, 5);
    for (i, (route, server)) in REQUESTS.lines().zip(SERVER_REQUESTS.lines()).enumerate() {
        assert_eq!(route, server, "request line {i} drifted");
    }
    for (i, (route, server)) in GOLDEN.lines().zip(SERVER_GOLDEN.lines()).enumerate() {
        assert_eq!(
            route, server,
            "routed response {i} differs from the direct-server golden"
        );
    }
    assert_eq!(SERVER_GOLDEN.lines().count(), overlap);
}

#[test]
fn golden_stream_has_the_router_features_visible() {
    let lines: Vec<&str> = GOLDEN.lines().collect();
    assert_eq!(lines.len(), 10);
    // Repeat answered as cached, whichever cache layer served it.
    assert!(lines[2].contains("\"cached\":true"));
    // Local decode error short-circuits at the router.
    assert!(lines[4].contains("\"code\":\"unknown_backend\""));
    // A second collection matrix routes by name fingerprint.
    assert!(lines[5].contains("\"nnz\":1995"));
    // include_partition is its own cache identity: computed fresh.
    assert!(lines[6].contains("\"cached\":false"));
    assert!(lines[6].contains("\"partition\":["));
    // Router-local ops.
    assert!(lines[7].ends_with("\"op\":\"ping\"}"));
    assert!(lines[8].contains("\"op\":\"stats\",\"received\":9,\"cache_hits\":1,\"errors\":1"));
    assert!(lines[9].ends_with("\"op\":\"shutdown\"}"));
}

//! Failure handling and shard diagnostics: reconnect-and-replay against
//! a flaky shard, replica-set failover (kill the top replica mid-stream,
//! stream stays byte-identical), prober flap re-admission, typed
//! `shard_unavailable` errors for a lost shard, `unknown_shard` for bad
//! addressing, shard-tagged stats/error responses, and the
//! topology-validation seam.

use mg_core::service::placement_key;
use mg_router::{
    place_replicas, LocalCluster, Router, RouterConfig, ShardSpec, Topology, TopologyError,
};
use mg_server::{protocol, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Read};
use std::net::TcpListener;
use std::time::{Duration, Instant};

const PING: &str = "{\"id\":1,\"op\":\"ping\"}\n";
const PARTITION: &str =
    "{\"id\":7,\"matrix\":{\"rows\":4,\"cols\":4,\"entries\":[[0,0],[1,1],[2,2],[3,3],[0,3]]}}\n";

fn fast_config() -> RouterConfig {
    RouterConfig {
        connect_attempts: 2,
        retry_delay: Duration::from_millis(50),
        ..RouterConfig::default()
    }
}

/// A script source that fires a callback right before the session reads
/// line `kill_at` (0-based) — i.e. after every earlier line has been
/// routed — so tests can sever a shard at an exact point in the stream.
struct ScriptReader<F: FnMut()> {
    lines: Vec<Vec<u8>>,
    next: usize,
    offset: usize,
    kill_at: usize,
    kill: Option<F>,
}

impl<F: FnMut()> ScriptReader<F> {
    fn new(script: &[&str], kill_at: usize, kill: F) -> BufReader<Self> {
        BufReader::new(ScriptReader {
            lines: script
                .iter()
                .map(|l| format!("{l}\n").into_bytes())
                .collect(),
            next: 0,
            offset: 0,
            kill_at,
            kill: Some(kill),
        })
    }
}

impl<F: FnMut()> Read for ScriptReader<F> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.next >= self.lines.len() {
            return Ok(0);
        }
        if self.offset == 0 && self.next == self.kill_at {
            if let Some(mut kill) = self.kill.take() {
                kill();
            }
        }
        let line = &self.lines[self.next];
        let n = (line.len() - self.offset).min(buf.len());
        buf[..n].copy_from_slice(&line[self.offset..self.offset + n]);
        self.offset += n;
        if self.offset == line.len() {
            self.next += 1;
            self.offset = 0;
        }
        Ok(n)
    }
}

/// The replica set a partition request line maps to under the given
/// topology — computed through the same public seams the router uses.
fn replica_set(line: &str, topology: &Topology, r: usize) -> Vec<usize> {
    let request = protocol::parse_request_line(line).expect("test script line parses");
    let spec = request.spec.expect("partition line carries a spec");
    let placement = placement_key(&spec.matrix).expect("placement key");
    place_replicas(placement.key, topology.shards(), false, r)
}

/// Six distinct small matrices (no repeats, so every response is
/// deterministically `cached: false`) plus a ping — the kill-mid-stream
/// script.
fn distinct_script() -> Vec<String> {
    let mut lines: Vec<String> = (0..6u64)
        .map(|i| {
            let n = 3 + i;
            let entries: Vec<String> = (0..n)
                .map(|d| format!("[{d},{d}]"))
                .chain((1..n).map(|d| format!("[{},{}]", d - 1, d)))
                .collect();
            format!(
                "{{\"id\":{i},\"matrix\":{{\"rows\":{n},\"cols\":{n},\"entries\":[{}]}}}}",
                entries.join(",")
            )
        })
        .collect();
    lines.push("{\"id\":\"bye\",\"op\":\"ping\"}".to_string());
    lines
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The tentpole acceptance pin: with `--replicas 2` over three shards,
/// SIGKILL-equivalently severing the top replica of an in-flight stream
/// leaves the client's response bytes identical to a healthy
/// single-shard run — at shard thread counts 1, 2 and 4.
#[test]
fn killing_the_top_replica_mid_stream_keeps_the_stream_byte_identical() {
    let script = distinct_script();
    let script_refs: Vec<&str> = script.iter().map(String::as_str).collect();
    // Healthy reference: one plain shard, default (replicas = 1) router.
    let reference = {
        let cluster = LocalCluster::spawn(1, |_| ServiceConfig::default());
        let router = cluster.router(RouterConfig::default());
        let mut out = Vec::new();
        let input = script.iter().map(|l| format!("{l}\n")).collect::<String>();
        router.run_session(input.as_bytes(), &mut out);
        drop(router);
        cluster.shutdown();
        String::from_utf8(out).unwrap()
    };
    assert_eq!(reference.lines().count(), script.len());

    for threads in [1usize, 2, 4] {
        let mut cluster = LocalCluster::spawn_killable(3, |_| ServiceConfig {
            threads,
            ..ServiceConfig::default()
        });
        let topology = cluster.topology();
        let router = cluster.router(RouterConfig {
            replicas: 2,
            connect_attempts: 2,
            retry_delay: Duration::from_millis(50),
            probe_interval: Duration::from_millis(100),
            ..RouterConfig::default()
        });
        // Sever the primary of the line that will be read right after
        // the kill: that request *must* fail over to its rank-2 replica,
        // and any unanswered earlier request on the same shard must be
        // replayed too.
        let kill_at = 3usize;
        let victim = replica_set(&script[kill_at], &topology, 2)[0];
        let victim_id = topology.shards()[victim].id.clone();
        let shard = &mut cluster.shards[victim];
        let input = ScriptReader::new(&script_refs, kill_at, || shard.kill());
        let mut out = Vec::new();
        let summary = router.run_session(input, &mut out);
        assert_eq!(summary.received, script.len() as u64);
        assert_eq!(
            router.shard_alive(&victim_id),
            Some(false),
            "the killed replica is marked dead (threads={threads})"
        );
        drop(router);
        cluster.shutdown();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            reference,
            "failover must be invisible in the stream (threads={threads}, victim={victim_id})"
        );
    }
}

/// Dead replicas surface in the router-local stats line (and the public
/// accessors), while healthy replicated runs report byte-identically to
/// unreplicated ones.
#[test]
fn dead_replicas_surface_in_router_stats() {
    let mut cluster = LocalCluster::spawn_killable(2, |_| ServiceConfig::default());
    let topology = cluster.topology();
    let router = cluster.router(RouterConfig {
        replicas: 2,
        connect_attempts: 2,
        retry_delay: Duration::from_millis(50),
        probe_interval: Duration::from_millis(100),
        ..RouterConfig::default()
    });
    // Kill the request's primary before any traffic and let the prober
    // notice, so the session deterministically dispatches to the rank-2
    // replica and the stats line (written only after every earlier slot
    // resolved) reports the casualty.
    let victim = replica_set(PARTITION.trim(), &topology, 2)[0];
    let victim_id = topology.shards()[victim].id.clone();
    cluster.shards[victim].kill();
    wait_until(
        "the prober to mark the shard dead",
        Duration::from_secs(10),
        || router.shard_alive(&victim_id) == Some(false),
    );
    let script = format!("{PARTITION}{{\"id\":8,\"op\":\"stats\"}}\n");
    let mut out = Vec::new();
    router.run_session(script.as_bytes(), &mut out);
    let text = String::from_utf8(out).unwrap();
    let stats = text.lines().last().unwrap();
    assert!(
        text.lines()
            .next()
            .unwrap()
            .contains("\"id\":7,\"status\":\"ok\""),
        "the failed-over request is still answered for real: {text}"
    );
    assert!(stats.contains("\"replicas\":2"), "{stats}");
    assert!(
        stats.contains(&format!("\"dead\":[\"{victim_id}\"]")),
        "stats names the dead replica: {stats}"
    );
    assert!(stats.contains("\"failovers\":"), "{stats}");
    assert!(router.failovers() >= 1);
    drop(router);
    cluster.shutdown();
}

/// The health prober marks a killed replica dead and — once it flaps
/// back — re-admits it, so traffic returns to the primary.
#[test]
fn prober_flaps_readmit_a_revived_replica() {
    let mut cluster = LocalCluster::spawn_killable(2, |_| ServiceConfig::default());
    let router = cluster.router(RouterConfig {
        replicas: 2,
        connect_attempts: 2,
        retry_delay: Duration::from_millis(25),
        probe_interval: Duration::from_millis(25),
        ..RouterConfig::default()
    });
    let id = cluster.shards[0].spec.id.clone();
    assert_eq!(router.shard_alive(&id), Some(true));
    assert_eq!(router.shard_alive("nope"), None);
    cluster.shards[0].kill();
    wait_until(
        "the prober to mark the shard dead",
        Duration::from_secs(10),
        || router.shard_alive(&id) == Some(false),
    );
    cluster.shards[0].revive();
    wait_until(
        "the prober to re-admit the shard",
        Duration::from_secs(10),
        || router.shard_alive(&id) == Some(true),
    );
    // The re-admitted replica serves again: a fresh session works no
    // matter which shard owns the key.
    let mut out = Vec::new();
    let summary = router.run_session(PARTITION.as_bytes(), &mut out);
    assert_eq!(summary.errors, 0);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("\"id\":7,\"status\":\"ok\""), "{text}");
    drop(router);
    cluster.shutdown();
}

/// A shard whose first connection reads one request and drops dead
/// mid-flight; subsequent connections are served by a real engine. The
/// router must reconnect and replay, and the client must still see the
/// real answer.
#[test]
fn reconnect_and_replay_survives_a_dropped_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let flaky = std::thread::spawn(move || {
        // First connection: swallow one request line, then hang up.
        let (first, _) = listener.accept().unwrap();
        {
            let mut line = String::new();
            let mut reader = BufReader::new(first.try_clone().unwrap());
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"id\":7"), "swallowed: {line}");
            drop(reader);
            drop(first);
        }
        // Second connection: a real serving engine takes over.
        let service = Service::start(ServiceConfig::default());
        let (second, _) = listener.accept().unwrap();
        let reader = BufReader::new(second.try_clone().unwrap());
        service.run_session(reader, second);
        service.shutdown_and_join();
    });

    let topology = Topology::parse(&addr).unwrap();
    let router = Router::new(topology, fast_config()).unwrap();
    let mut out = Vec::new();
    let summary = router.run_session(PARTITION.as_bytes(), &mut out);
    // Dropping the router closes the pooled connection; the fake shard's
    // session sees EOF and its thread can finish.
    drop(router);
    flaky.join().unwrap();

    let text = String::from_utf8(out).unwrap();
    assert_eq!(summary.forwarded, 1);
    assert!(
        text.contains("\"id\":7,\"status\":\"ok\"") && text.contains("\"volume\""),
        "replayed request must be answered for real: {text}"
    );
}

#[test]
fn a_lost_shard_yields_typed_shard_unavailable_errors() {
    // Bind and immediately drop a listener: the port is plausibly real
    // but refuses connections.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let topology = Topology::parse(&format!("lost={addr}")).unwrap();
    let router = Router::new(topology, fast_config()).unwrap();
    let mut out = Vec::new();
    let summary = router.run_session(PARTITION.as_bytes(), &mut out);
    let text = String::from_utf8(out).unwrap();
    assert_eq!(summary.errors, 1);
    assert!(text.contains("\"code\":\"shard_unavailable\""), "{text}");
    assert!(
        text.contains("\"shard\":\"lost\""),
        "the failing shard is named: {text}"
    );
    assert!(text.contains("\"id\":7"), "the id is echoed: {text}");
}

#[test]
fn shard_addressed_stats_carry_the_shard_tag() {
    let cluster = LocalCluster::spawn(2, |index| ServiceConfig {
        shard_id: Some(format!("shard-{index}")),
        ..ServiceConfig::default()
    });
    let router = cluster.router(RouterConfig::default());
    let script = concat!(
        "{\"id\":1,\"matrix\":{\"rows\":2,\"cols\":2,\"entries\":[[0,0],[1,1]]}}\n",
        "{\"id\":2,\"op\":\"stats\",\"shard\":\"shard-0\"}\n",
        "{\"id\":3,\"op\":\"stats\",\"shard\":\"shard-1\"}\n",
        "{\"id\":4,\"op\":\"stats\",\"shard\":\"nope\"}\n",
        "{\"id\":5,\"op\":\"stats\",\"shard\":7}\n",
        "{\"id\":6,\"op\":\"stats\"}\n",
    );
    let mut out = Vec::new();
    router.run_session(script.as_bytes(), &mut out);
    cluster.shutdown();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6);
    // Forwarded stats: per-shard counters, tagged with the shard id, and
    // carrying the new cache/backends fields.
    assert!(lines[1].contains("\"shard\":\"shard-0\""), "{}", lines[1]);
    assert!(lines[1].contains("\"cache_misses\":"), "{}", lines[1]);
    assert!(lines[1].contains("\"backends\":"), "{}", lines[1]);
    assert!(lines[2].contains("\"shard\":\"shard-1\""), "{}", lines[2]);
    // Exactly one of the two shards saw the partition request.
    let received: Vec<bool> = [1, 2]
        .iter()
        .map(|&i| lines[i].contains("\"received\":2"))
        .collect();
    assert_eq!(
        received.iter().filter(|&&r| r).count(),
        1,
        "the job landed on exactly one shard: {:?} / {:?}",
        lines[1],
        lines[2]
    );
    // Bad addressing: typed errors.
    assert!(
        lines[3].contains("\"code\":\"unknown_shard\""),
        "{}",
        lines[3]
    );
    assert!(
        lines[3].contains("shard-0"),
        "lists the topology: {}",
        lines[3]
    );
    assert!(
        lines[4].contains("\"code\":\"bad_request\""),
        "{}",
        lines[4]
    );
    // Router-local stats: topology-independent shape, no shard tag.
    assert!(
        lines[5].contains("\"op\":\"stats\",\"received\":6"),
        "{}",
        lines[5]
    );
    assert!(!lines[5].contains("\"shard\""), "{}", lines[5]);
}

#[test]
fn shard_tagged_errors_name_the_rejecting_shard() {
    let cluster = LocalCluster::spawn(1, |_| ServiceConfig {
        shard_id: Some("only".into()),
        ..ServiceConfig::default()
    });
    let router = cluster.router(RouterConfig::default());
    let mut out = Vec::new();
    router.run_session(
        &b"{\"id\":9,\"matrix\":{\"collection\":\"missing\"}}\n"[..],
        &mut out,
    );
    cluster.shutdown();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("\"code\":\"unknown_collection\""), "{text}");
    assert!(text.contains("\"shard\":\"only\""), "{text}");
}

#[test]
fn router_cache_short_circuits_repeats_without_recrossing_the_wire() {
    let cluster = LocalCluster::spawn(2, |_| ServiceConfig::default());
    let router = cluster.router(RouterConfig::default());
    // Session 1 computes; session 2 repeats the same request and must be
    // served from the router cache (the summary counts it), with the
    // response marked cached and re-issued under the new id.
    let mut first = Vec::new();
    let s1 = router.run_session(PARTITION.as_bytes(), &mut first);
    assert_eq!(s1.cache_hits, 0);
    assert_eq!(s1.forwarded, 1);
    let repeat = PARTITION.replace("\"id\":7", "\"id\":\"again\"");
    let mut second = Vec::new();
    let s2 = router.run_session(repeat.as_bytes(), &mut second);
    cluster.shutdown();
    assert_eq!(s2.cache_hits, 1, "router LRU must answer the repeat");
    assert_eq!(s2.forwarded, 0);
    let first = String::from_utf8(first).unwrap();
    let second = String::from_utf8(second).unwrap();
    assert!(second.contains("\"id\":\"again\""), "{second}");
    assert!(second.contains("\"cached\":true"), "{second}");
    assert_eq!(
        second.replace("\"id\":\"again\"", "\"id\":7"),
        first.replace("\"cached\":false", "\"cached\":true"),
        "a cache hit is the original line modulo id and cached flag"
    );
}

#[test]
fn in_band_shutdown_drains_the_shards_too() {
    let cluster = LocalCluster::spawn(2, |_| ServiceConfig::default());
    let router = cluster.router(RouterConfig::default());
    let script = format!("{PARTITION}{{\"id\":99,\"op\":\"shutdown\"}}\n");
    let mut out = Vec::new();
    router.run_session(script.as_bytes(), &mut out);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("\"id\":7,\"status\":\"ok\""), "{text}");
    assert!(
        text.ends_with("{\"id\":99,\"status\":\"ok\",\"op\":\"shutdown\"}\n"),
        "shutdown acks last: {text}"
    );
    assert!(router.is_shutting_down());
    // Every shard engine saw the forwarded shutdown: joining the TCP
    // front ends returns promptly instead of hanging on live accept
    // loops.
    for shard in &cluster.shards {
        assert!(shard.is_shutting_down());
    }
    cluster.shutdown();
}

#[test]
fn topology_validation_is_a_typed_seam() {
    assert_eq!(Topology::parse(""), Err(TopologyError::Empty));
    let dup = Topology::new(vec![
        ShardSpec {
            id: "a".into(),
            addr: "h:1".into(),
            capacity: 1,
        },
        ShardSpec {
            id: "a".into(),
            addr: "h:2".into(),
            capacity: 1,
        },
    ]);
    assert_eq!(dup, Err(TopologyError::DuplicateId("a".into())));
    // And a Router cannot be built around the seam: Topology is the only
    // way in, so an invalid topology never reaches Router::new.
    let ok = Topology::parse("127.0.0.1:1").unwrap();
    assert!(Router::new(ok, RouterConfig::default()).is_ok());
}

#[test]
fn sequential_sessions_reuse_pooled_connections() {
    let cluster = LocalCluster::spawn(1, |_| ServiceConfig::default());
    let router = cluster.router(RouterConfig::default());
    for i in 0..3 {
        let mut out = Vec::new();
        let script = PARTITION.replace("\"id\":7", &format!("\"id\":{i}"));
        let mut with_ping = script;
        with_ping.push_str(PING);
        let summary = router.run_session(with_ping.as_bytes(), &mut out);
        assert_eq!(summary.responses, 2, "session {i}");
    }
    cluster.shutdown();
}

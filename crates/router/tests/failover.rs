//! Failure handling and shard diagnostics: reconnect-and-replay against
//! a flaky shard, typed `shard_unavailable` errors for a lost shard,
//! `unknown_shard` for bad addressing, shard-tagged stats/error
//! responses, and the topology-validation seam.

use mg_router::{LocalCluster, Router, RouterConfig, ShardSpec, Topology, TopologyError};
use mg_server::{Service, ServiceConfig};
use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::time::Duration;

const PING: &str = "{\"id\":1,\"op\":\"ping\"}\n";
const PARTITION: &str =
    "{\"id\":7,\"matrix\":{\"rows\":4,\"cols\":4,\"entries\":[[0,0],[1,1],[2,2],[3,3],[0,3]]}}\n";

fn fast_config() -> RouterConfig {
    RouterConfig {
        connect_attempts: 2,
        retry_delay: Duration::from_millis(50),
        ..RouterConfig::default()
    }
}

/// A shard whose first connection reads one request and drops dead
/// mid-flight; subsequent connections are served by a real engine. The
/// router must reconnect and replay, and the client must still see the
/// real answer.
#[test]
fn reconnect_and_replay_survives_a_dropped_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let flaky = std::thread::spawn(move || {
        // First connection: swallow one request line, then hang up.
        let (first, _) = listener.accept().unwrap();
        {
            let mut line = String::new();
            let mut reader = BufReader::new(first.try_clone().unwrap());
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"id\":7"), "swallowed: {line}");
            drop(reader);
            drop(first);
        }
        // Second connection: a real serving engine takes over.
        let service = Service::start(ServiceConfig::default());
        let (second, _) = listener.accept().unwrap();
        let reader = BufReader::new(second.try_clone().unwrap());
        service.run_session(reader, second);
        service.shutdown_and_join();
    });

    let topology = Topology::parse(&addr).unwrap();
    let router = Router::new(topology, fast_config()).unwrap();
    let mut out = Vec::new();
    let summary = router.run_session(PARTITION.as_bytes(), &mut out);
    // Dropping the router closes the pooled connection; the fake shard's
    // session sees EOF and its thread can finish.
    drop(router);
    flaky.join().unwrap();

    let text = String::from_utf8(out).unwrap();
    assert_eq!(summary.forwarded, 1);
    assert!(
        text.contains("\"id\":7,\"status\":\"ok\"") && text.contains("\"volume\""),
        "replayed request must be answered for real: {text}"
    );
}

#[test]
fn a_lost_shard_yields_typed_shard_unavailable_errors() {
    // Bind and immediately drop a listener: the port is plausibly real
    // but refuses connections.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let topology = Topology::parse(&format!("lost={addr}")).unwrap();
    let router = Router::new(topology, fast_config()).unwrap();
    let mut out = Vec::new();
    let summary = router.run_session(PARTITION.as_bytes(), &mut out);
    let text = String::from_utf8(out).unwrap();
    assert_eq!(summary.errors, 1);
    assert!(text.contains("\"code\":\"shard_unavailable\""), "{text}");
    assert!(
        text.contains("\"shard\":\"lost\""),
        "the failing shard is named: {text}"
    );
    assert!(text.contains("\"id\":7"), "the id is echoed: {text}");
}

#[test]
fn shard_addressed_stats_carry_the_shard_tag() {
    let cluster = LocalCluster::spawn(2, |index| ServiceConfig {
        shard_id: Some(format!("shard-{index}")),
        ..ServiceConfig::default()
    });
    let router = cluster.router(RouterConfig::default());
    let script = concat!(
        "{\"id\":1,\"matrix\":{\"rows\":2,\"cols\":2,\"entries\":[[0,0],[1,1]]}}\n",
        "{\"id\":2,\"op\":\"stats\",\"shard\":\"shard-0\"}\n",
        "{\"id\":3,\"op\":\"stats\",\"shard\":\"shard-1\"}\n",
        "{\"id\":4,\"op\":\"stats\",\"shard\":\"nope\"}\n",
        "{\"id\":5,\"op\":\"stats\",\"shard\":7}\n",
        "{\"id\":6,\"op\":\"stats\"}\n",
    );
    let mut out = Vec::new();
    router.run_session(script.as_bytes(), &mut out);
    cluster.shutdown();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6);
    // Forwarded stats: per-shard counters, tagged with the shard id, and
    // carrying the new cache/backends fields.
    assert!(lines[1].contains("\"shard\":\"shard-0\""), "{}", lines[1]);
    assert!(lines[1].contains("\"cache_misses\":"), "{}", lines[1]);
    assert!(lines[1].contains("\"backends\":"), "{}", lines[1]);
    assert!(lines[2].contains("\"shard\":\"shard-1\""), "{}", lines[2]);
    // Exactly one of the two shards saw the partition request.
    let received: Vec<bool> = [1, 2]
        .iter()
        .map(|&i| lines[i].contains("\"received\":2"))
        .collect();
    assert_eq!(
        received.iter().filter(|&&r| r).count(),
        1,
        "the job landed on exactly one shard: {:?} / {:?}",
        lines[1],
        lines[2]
    );
    // Bad addressing: typed errors.
    assert!(
        lines[3].contains("\"code\":\"unknown_shard\""),
        "{}",
        lines[3]
    );
    assert!(
        lines[3].contains("shard-0"),
        "lists the topology: {}",
        lines[3]
    );
    assert!(
        lines[4].contains("\"code\":\"bad_request\""),
        "{}",
        lines[4]
    );
    // Router-local stats: topology-independent shape, no shard tag.
    assert!(
        lines[5].contains("\"op\":\"stats\",\"received\":6"),
        "{}",
        lines[5]
    );
    assert!(!lines[5].contains("\"shard\""), "{}", lines[5]);
}

#[test]
fn shard_tagged_errors_name_the_rejecting_shard() {
    let cluster = LocalCluster::spawn(1, |_| ServiceConfig {
        shard_id: Some("only".into()),
        ..ServiceConfig::default()
    });
    let router = cluster.router(RouterConfig::default());
    let mut out = Vec::new();
    router.run_session(
        &b"{\"id\":9,\"matrix\":{\"collection\":\"missing\"}}\n"[..],
        &mut out,
    );
    cluster.shutdown();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("\"code\":\"unknown_collection\""), "{text}");
    assert!(text.contains("\"shard\":\"only\""), "{text}");
}

#[test]
fn router_cache_short_circuits_repeats_without_recrossing_the_wire() {
    let cluster = LocalCluster::spawn(2, |_| ServiceConfig::default());
    let router = cluster.router(RouterConfig::default());
    // Session 1 computes; session 2 repeats the same request and must be
    // served from the router cache (the summary counts it), with the
    // response marked cached and re-issued under the new id.
    let mut first = Vec::new();
    let s1 = router.run_session(PARTITION.as_bytes(), &mut first);
    assert_eq!(s1.cache_hits, 0);
    assert_eq!(s1.forwarded, 1);
    let repeat = PARTITION.replace("\"id\":7", "\"id\":\"again\"");
    let mut second = Vec::new();
    let s2 = router.run_session(repeat.as_bytes(), &mut second);
    cluster.shutdown();
    assert_eq!(s2.cache_hits, 1, "router LRU must answer the repeat");
    assert_eq!(s2.forwarded, 0);
    let first = String::from_utf8(first).unwrap();
    let second = String::from_utf8(second).unwrap();
    assert!(second.contains("\"id\":\"again\""), "{second}");
    assert!(second.contains("\"cached\":true"), "{second}");
    assert_eq!(
        second.replace("\"id\":\"again\"", "\"id\":7"),
        first.replace("\"cached\":false", "\"cached\":true"),
        "a cache hit is the original line modulo id and cached flag"
    );
}

#[test]
fn in_band_shutdown_drains_the_shards_too() {
    let cluster = LocalCluster::spawn(2, |_| ServiceConfig::default());
    let router = cluster.router(RouterConfig::default());
    let script = format!("{PARTITION}{{\"id\":99,\"op\":\"shutdown\"}}\n");
    let mut out = Vec::new();
    router.run_session(script.as_bytes(), &mut out);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("\"id\":7,\"status\":\"ok\""), "{text}");
    assert!(
        text.ends_with("{\"id\":99,\"status\":\"ok\",\"op\":\"shutdown\"}\n"),
        "shutdown acks last: {text}"
    );
    assert!(router.is_shutting_down());
    // Every shard engine saw the forwarded shutdown: joining the TCP
    // front ends returns promptly instead of hanging on live accept
    // loops.
    for shard in &cluster.shards {
        assert!(shard.is_shutting_down());
    }
    cluster.shutdown();
}

#[test]
fn topology_validation_is_a_typed_seam() {
    assert_eq!(Topology::parse(""), Err(TopologyError::Empty));
    let dup = Topology::new(vec![
        ShardSpec {
            id: "a".into(),
            addr: "h:1".into(),
            capacity: 1,
        },
        ShardSpec {
            id: "a".into(),
            addr: "h:2".into(),
            capacity: 1,
        },
    ]);
    assert_eq!(dup, Err(TopologyError::DuplicateId("a".into())));
    // And a Router cannot be built around the seam: Topology is the only
    // way in, so an invalid topology never reaches Router::new.
    let ok = Topology::parse("127.0.0.1:1").unwrap();
    assert!(Router::new(ok, RouterConfig::default()).is_ok());
}

#[test]
fn sequential_sessions_reuse_pooled_connections() {
    let cluster = LocalCluster::spawn(1, |_| ServiceConfig::default());
    let router = cluster.router(RouterConfig::default());
    for i in 0..3 {
        let mut out = Vec::new();
        let script = PARTITION.replace("\"id\":7", &format!("\"id\":{i}"));
        let mut with_ping = script;
        with_ping.push_str(PING);
        let summary = router.run_session(with_ping.as_bytes(), &mut out);
        assert_eq!(summary.responses, 2, "session {i}");
    }
    cluster.shutdown();
}

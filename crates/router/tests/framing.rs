//! Binary framing through the router: a client that negotiates binary
//! frames gets the same response *texts* a JSON-lines client gets —
//! the router decodes compact partition payloads once, forwards the
//! canonical line to its (always JSON-lines) shards, and re-frames the
//! shard's response bytes untouched.

use mg_collection::{CollectionScale, CollectionSpec};
use mg_router::{LocalCluster, RouterConfig};
use mg_server::codec::{
    encode_frame, json_payload, partition_payload, request_json_line, KIND_JSON,
};
use mg_server::{parse_request_line, ServiceConfig};
use mg_sparse::{gen, Coo};

fn inline_payload(a: &Coo) -> String {
    let entries: Vec<String> = a.iter().map(|(i, j)| format!("[{i},{j}]")).collect();
    format!(
        "{{\"rows\":{},\"cols\":{},\"entries\":[{}]}}",
        a.rows(),
        a.cols(),
        entries.join(",")
    )
}

fn shard_config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        threads,
        collection: CollectionSpec {
            seed: 11,
            scale: CollectionScale::Smoke,
        },
        ..ServiceConfig::default()
    }
}

/// Request lines in canonical rendering (what the router forwards for a
/// binary-framed request), so the JSON-lines control run sends the
/// byte-identical lines to its shards.
fn canonical_requests() -> Vec<String> {
    let matrices = [
        gen::laplacian_2d(9, 7),
        gen::arrow(40, 3),
        gen::laplacian_2d(6, 6),
    ];
    let mut lines: Vec<String> = Vec::new();
    for (id, a) in matrices.iter().enumerate() {
        lines.push(format!(
            "{{\"id\":{id},\"matrix\":{},\"seed\":5}}",
            inline_payload(a)
        ));
    }
    // Repeat of id 0's key → a router cache hit in both codecs.
    lines.push(format!(
        "{{\"id\":9,\"matrix\":{},\"seed\":5}}",
        inline_payload(&matrices[0])
    ));
    lines.push("{\"id\":10,\"op\":\"ping\"}".to_string());
    lines.push("{\"id\":11,\"method\":\"zz\"}".to_string());
    lines
        .iter()
        .map(|line| match parse_request_line(line) {
            Ok(request) => request_json_line(&request),
            // Deliberately invalid requests can't be canonicalized; both
            // codecs answer them locally from the same text.
            Err(_) => line.clone(),
        })
        .collect()
}

fn response_texts(out: &[u8]) -> Vec<String> {
    let mut texts = Vec::new();
    let mut pos = 0;
    let mut binary = false;
    while pos < out.len() {
        let text = if binary {
            let len = u32::from_le_bytes(out[pos..pos + 4].try_into().unwrap()) as usize;
            assert_eq!(
                out[pos + 4],
                KIND_JSON,
                "responses are always JSON payloads"
            );
            let text = std::str::from_utf8(&out[pos + 5..pos + 4 + len]).unwrap();
            pos += 4 + len;
            text.to_string()
        } else {
            let nl = out[pos..]
                .iter()
                .position(|&b| b == b'\n')
                .expect("unterminated response line");
            let text = std::str::from_utf8(&out[pos..pos + nl])
                .unwrap()
                .to_string();
            pos += nl + 1;
            text
        };
        if text.contains("\"op\":\"hello\"") && text.contains("\"codec\":\"binary\"") {
            binary = true;
        }
        texts.push(text);
    }
    texts
}

#[test]
fn binary_clients_match_json_clients_through_the_router() {
    let requests = canonical_requests();

    // Control: a fresh 2-shard cluster, JSON lines end to end.
    let cluster = LocalCluster::spawn(2, |_| shard_config(2));
    let router = cluster.router(RouterConfig::default());
    let script: Vec<u8> = requests
        .iter()
        .flat_map(|r| format!("{r}\n").into_bytes())
        .collect();
    let mut json_out = Vec::new();
    let json_summary = router.run_session(script.as_slice(), &mut json_out);
    cluster.shutdown();
    let json_texts = response_texts(&json_out);

    // Same requests as binary frames through a fresh identical cluster:
    // compact kind-0x02 payloads for partitions, JSON payloads otherwise.
    let cluster = LocalCluster::spawn(2, |_| shard_config(2));
    let router = cluster.router(RouterConfig::default());
    let mut script = b"{\"id\":\"hs\",\"op\":\"hello\",\"codec\":\"binary\"}\n".to_vec();
    for line in &requests {
        let payload = parse_request_line(line)
            .ok()
            .and_then(|request| partition_payload(&request))
            .unwrap_or_else(|| json_payload(line));
        script.extend_from_slice(&encode_frame(&payload));
    }
    let mut binary_out = Vec::new();
    let binary_summary = router.run_session(script.as_slice(), &mut binary_out);
    cluster.shutdown();
    let binary_texts = response_texts(&binary_out);

    // Hello ack first (as a JSON line), then frame-for-line parity.
    assert_eq!(
        binary_texts[0],
        "{\"id\":\"hs\",\"status\":\"ok\",\"op\":\"hello\",\"codec\":\"binary\"}"
    );
    assert_eq!(json_texts, binary_texts[1..].to_vec());

    // Both runs did real routed work and hit the router cache alike.
    assert_eq!(json_summary.responses, requests.len() as u64);
    assert_eq!(binary_summary.responses, requests.len() as u64 + 1);
    assert_eq!(json_summary.forwarded, binary_summary.forwarded);
    // The repeat is served from a cache — the router's LRU when id 0
    // already resolved, the shard's otherwise; both runs pipeline the
    // same way, so the counters (and the bytes) agree regardless.
    assert_eq!(json_summary.cache_hits, binary_summary.cache_hits);
    assert_eq!(json_summary.errors, binary_summary.errors);
    let repeat = json_texts
        .iter()
        .find(|t| t.contains("\"id\":9"))
        .expect("repeat response");
    assert!(repeat.contains("\"cached\":true"), "{repeat}");
}

//! End-to-end observability: run a routed partition session while a
//! live `mg-obs` exposition endpoint is up, scrape it over real TCP,
//! and check that the per-phase partitioner timing histograms (paper
//! Fig. 5) recorded nonzero counts and that the router families are
//! present — all without perturbing the deterministic response stream.
//!
//! Counters are asserted with `≥` deltas: the registry is
//! process-global, so parallel tests in this binary may also bump them.

use mg_router::{LocalCluster, RouterConfig};
use mg_server::ServiceConfig;

/// A partition request big enough to exercise every multilevel phase.
fn partition_request(id: u64) -> String {
    let entries: Vec<String> = (0..40u64)
        .flat_map(|i| {
            let j = (i * 7 + 3) % 40;
            [format!("[{i},{i}]"), format!("[{i},{j}]")]
        })
        .collect();
    format!(
        "{{\"id\":{id},\"method\":\"mg-ir\",\"matrix\":{{\"rows\":40,\"cols\":40,\"entries\":[{}]}}}}\n",
        entries.join(",")
    )
}

#[test]
fn live_endpoint_reports_phase_histograms_during_a_routed_session() {
    let server = mg_obs::MetricsServer::bind("127.0.0.1:0").expect("bind metrics endpoint");
    let addr = server.local_addr.to_string();

    let before: Vec<(u64, f64)> = mg_obs::PHASES
        .iter()
        .map(|p| mg_obs::phase_stats(p))
        .collect();

    let cluster = LocalCluster::spawn(2, |_| ServiceConfig::default());
    let router = cluster.router(RouterConfig::default());
    let script = format!(
        "{}{}",
        partition_request(1),
        "{\"id\":2,\"op\":\"stats\"}\n"
    );
    let mut out = Vec::new();
    router.run_session(script.as_bytes(), &mut out);
    let text = String::from_utf8(out).unwrap();
    assert!(text.lines().count() == 2, "{text}");
    assert!(text.contains("\"status\":\"ok\""), "{text}");
    assert!(
        text.contains("\"sessions\":1,\"queue_depth\":0"),
        "stats reports the deterministic observability fields: {text}"
    );

    // Scrape the live endpoint over TCP while the cluster is still up.
    let scrape = mg_obs::scrape(&addr).expect("scrape metrics endpoint");
    assert!(
        scrape.contains("# TYPE mgpart_phase_seconds histogram"),
        "phase histogram family declared:\n{scrape}"
    );
    for (phase, (count_before, _)) in mg_obs::PHASES.iter().zip(&before) {
        let (count_after, seconds_after) = mg_obs::phase_stats(phase);
        assert!(
            count_after > *count_before,
            "phase {phase:?} recorded new observations ({count_before} -> {count_after})"
        );
        assert!(seconds_after >= 0.0);
        assert!(
            scrape.contains(&format!("mgpart_phase_seconds_count{{phase=\"{phase}\"}}")),
            "scrape carries the {phase:?} histogram:\n{scrape}"
        );
    }
    // Router families made it to the endpoint too.
    for family in [
        "mgpart_router_requests_total",
        "mgpart_router_dispatches_total",
        "mgpart_router_shard_alive",
        "mgpart_router_failovers_total",
        "mgpart_router_replicas",
    ] {
        assert!(scrape.contains(family), "{family} exposed:\n{scrape}");
    }

    // The scrape parses against the checked-in schema.
    let schema_text = include_str!("../../obs/metrics.schema");
    let schema = mg_obs::parse_schema(schema_text).expect("schema parses");
    let samples = mg_obs::validate_exposition(&scrape, &schema).expect("scrape validates");
    assert!(samples > 0);

    cluster.shutdown();
}

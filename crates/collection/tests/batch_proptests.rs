//! Property tests for the batch scheduler: no job lost, none duplicated,
//! output order independent of thread count, seeds a pure function of the
//! job key.

use mg_collection::batch::{expand_jobs, job_seed, run_batch};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

proptest! {
    #[test]
    fn every_index_executes_exactly_once(
        num_jobs in 0usize..180,
        threads in 1usize..24,
    ) {
        let counters: Vec<AtomicU32> = (0..num_jobs).map(|_| AtomicU32::new(0)).collect();
        let out = run_batch(num_jobs, threads, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        prop_assert_eq!(out.len(), num_jobs);
        for (i, c) in counters.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "job {} ran {} times",
                i, c.load(Ordering::Relaxed));
        }
    }

    #[test]
    fn results_are_in_job_order_for_any_thread_count(
        num_jobs in 0usize..150,
        threads in 1usize..24,
    ) {
        let out = run_batch(num_jobs, threads, |i| 3 * i + 1);
        prop_assert_eq!(out, (0..num_jobs).map(|i| 3 * i + 1).collect::<Vec<_>>());
    }

    #[test]
    fn expansion_is_a_bijection_onto_the_cross_product(
        matrices in 1usize..10,
        methods in 1usize..6,
        epsilons in 1usize..5,
        master in proptest::strategy::Just(0x5EEDu64),
    ) {
        let names: Vec<String> = (0..matrices).map(|i| format!("m{i}")).collect();
        let labels: Vec<String> = (0..methods).map(|i| format!("M{i}")).collect();
        let eps: Vec<f64> = (1..=epsilons).map(|i| i as f64 / 100.0).collect();
        let jobs = expand_jobs("backend", &names, &labels, &eps, master);
        prop_assert_eq!(jobs.len(), matrices * methods * epsilons);
        // Every cell appears exactly once and carries the seed of its key.
        let mut seen = std::collections::HashSet::new();
        for job in &jobs {
            prop_assert!(
                seen.insert((job.matrix_index, job.method_index, job.epsilon_index)),
                "cell ({}, {}, {}) duplicated",
                job.matrix_index, job.method_index, job.epsilon_index
            );
            prop_assert_eq!(
                job.seed,
                job_seed(master, &job.backend, &job.matrix, &job.method, job.epsilon)
            );
        }
    }

    #[test]
    fn scheduling_survives_wildly_uneven_job_costs(
        threads in 1usize..16,
    ) {
        // Job 0 is made much slower than the rest; stealing must still
        // produce the complete, ordered result set.
        let out = run_batch(40, threads, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        prop_assert_eq!(out, (0..40).collect::<Vec<_>>());
    }
}

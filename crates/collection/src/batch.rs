//! The batched sweep substrate: job expansion and a deterministic
//! work-stealing scheduler.
//!
//! An experiment sweep is a dense cross product of (matrix × method × ε)
//! cells. [`expand_jobs`] lays those cells out in a canonical order and
//! stamps each with a seed derived from a *stable hash of its key*
//! ([`job_seed`]), never from its position in the sweep — so adding a
//! method or reordering the ε list cannot perturb any other cell's RNG
//! stream. [`run_batch`] then executes the jobs on a shard-per-worker
//! pool with work stealing: each worker drains its own shard through an
//! atomic cursor and, when exhausted, steals from the remaining shards.
//! Results are returned in job order regardless of which worker ran what,
//! so the output is bit-for-bit identical for every thread count — the §V
//! determinism contract extended from a single split to a whole sweep.

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One (matrix × method × ε) cell of a sweep, run on a named backend.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchJob {
    /// Position in the canonical job order (matrix-major, then method,
    /// then ε). This is a convenience for slicing results, *not* a seed
    /// input.
    pub index: usize,
    /// Index of the matrix in the collection passed to [`expand_jobs`].
    pub matrix_index: usize,
    /// Index of the method label.
    pub method_index: usize,
    /// Index of the ε value.
    pub epsilon_index: usize,
    /// Canonical backend name (part of the seed key): cells run on
    /// different engines draw independent RNG streams, so adding a
    /// backend to a campaign cannot perturb any existing cell.
    pub backend: String,
    /// Matrix name (part of the seed key).
    pub matrix: String,
    /// Method label (part of the seed key).
    pub method: String,
    /// Load-imbalance parameter (part of the seed key).
    pub epsilon: f64,
    /// Stable per-job seed: [`job_seed`] of the (backend, matrix, method,
    /// ε) key.
    pub seed: u64,
}

/// SplitMix64 finaliser; mixes all input bits into all output bits.
fn splitmix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The stable seed of a sweep cell: FNV-1a over the (backend, matrix,
/// method, ε) key folded with the master seed. Depends only on the key,
/// never on where the cell sits in the job list.
pub fn job_seed(master: u64, backend: &str, matrix: &str, method: &str, epsilon: f64) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    for chunk in [
        backend.as_bytes(),
        &[0xFF],
        matrix.as_bytes(),
        &[0xFF],
        method.as_bytes(),
        &[0xFF],
    ] {
        for &b in chunk {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    for b in epsilon.to_bits().to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    splitmix(h ^ master)
}

/// Derives the seed of one repetition (`run`) within a job's stream.
pub fn run_seed(job: &BatchJob, run: u32) -> u64 {
    splitmix(job.seed ^ (u64::from(run) << 1 | 1))
}

/// Expands the (matrix × method × ε) cross product into the canonical job
/// list for one `backend`: matrix-major, then method, then ε.
pub fn expand_jobs(
    backend: &str,
    matrices: &[String],
    methods: &[String],
    epsilons: &[f64],
    master_seed: u64,
) -> Vec<BatchJob> {
    let mut jobs = Vec::with_capacity(matrices.len() * methods.len() * epsilons.len());
    for (matrix_index, matrix) in matrices.iter().enumerate() {
        for (method_index, method) in methods.iter().enumerate() {
            for (epsilon_index, &epsilon) in epsilons.iter().enumerate() {
                jobs.push(BatchJob {
                    index: jobs.len(),
                    matrix_index,
                    method_index,
                    epsilon_index,
                    backend: backend.to_string(),
                    matrix: matrix.clone(),
                    method: method.clone(),
                    epsilon,
                    seed: job_seed(master_seed, backend, matrix, method, epsilon),
                });
            }
        }
    }
    jobs
}

/// Resolves a requested worker count: positive values pass through, `0`
/// means one worker per available core (falling back to 4 when the
/// parallelism cannot be queried). The single resolution rule shared by
/// the sweep harness and the serving front end.
pub fn worker_count(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Evenly sized chunk ranges covering `0..len` (at least one, possibly
/// empty, range).
fn shard_ranges(len: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    let pieces = pieces.max(1);
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for p in 0..pieces {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `worker(job_index)` for every index in `0..num_jobs` on `threads`
/// workers and returns the results **in job order**.
///
/// Scheduling: the index space is cut into one contiguous shard per
/// worker; worker `w` drains shard `w` through an atomic cursor
/// (`fetch_add` claims each index exactly once), then walks the other
/// shards in cyclic order stealing whatever is left. A worker stuck on
/// one slow cell therefore cannot idle the rest of the pool, and no index
/// can be lost or claimed twice. The caller's `worker` must be a pure
/// function of the index for the output to be deterministic — seed it
/// from the job key, not from thread identity.
pub fn run_batch<T, F>(num_jobs: usize, threads: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(num_jobs.max(1));
    let ranges = shard_ranges(num_jobs, threads);
    let cursors: Vec<CachePadded<AtomicUsize>> = (0..threads)
        .map(|_| CachePadded::new(AtomicUsize::new(0)))
        .collect();

    let mut per_worker: Vec<Vec<(usize, T)>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let ranges = &ranges;
                let cursors = &cursors;
                let worker = &worker;
                scope.spawn(move |_| {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    for step in 0..threads {
                        let shard = (w + step) % threads;
                        let range = &ranges[shard];
                        loop {
                            let claimed = cursors[shard].fetch_add(1, Ordering::Relaxed);
                            if claimed >= range.len() {
                                break;
                            }
                            let index = range.start + claimed;
                            out.push((index, worker(index)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    })
    .expect("batch scope");

    let mut tagged: Vec<(usize, T)> = per_worker.drain(..).flatten().collect();
    debug_assert_eq!(tagged.len(), num_jobs);
    tagged.sort_by_key(|&(index, _)| index);
    debug_assert!(tagged.iter().enumerate().all(|(i, &(index, _))| i == index));
    tagged.into_iter().map(|(_, value)| value).collect()
}

/// [`run_batch`] with *streaming* delivery: `sink(index, result)` is
/// called in strict index order, each result handed over as soon as every
/// lower-indexed job has finished — not only when the whole batch is done.
///
/// Scheduling is identical to [`run_batch`] (shard-per-worker with
/// work stealing, every index claimed exactly once); out-of-order
/// completions park in a reorder buffer until their turn. The sink runs on
/// whichever worker thread completes the prefix, one call at a time (it is
/// behind a mutex), so it may block briefly but must not call back into
/// the pool. This is the serving front end's substrate: a session can
/// stream response `i` while jobs `> i` are still executing, and the
/// delivery order — hence the output byte stream — is independent of the
/// thread count.
pub fn run_batch_ordered<T, F, S>(num_jobs: usize, threads: usize, worker: F, sink: S)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    S: FnMut(usize, T) + Send,
{
    struct Reorder<T, S> {
        next: usize,
        parked: BTreeMap<usize, T>,
        sink: S,
    }
    let threads = threads.max(1).min(num_jobs.max(1));
    let ranges = shard_ranges(num_jobs, threads);
    let cursors: Vec<CachePadded<AtomicUsize>> = (0..threads)
        .map(|_| CachePadded::new(AtomicUsize::new(0)))
        .collect();
    let reorder = Mutex::new(Reorder {
        next: 0,
        parked: BTreeMap::new(),
        sink,
    });

    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let ranges = &ranges;
                let cursors = &cursors;
                let worker = &worker;
                let reorder = &reorder;
                scope.spawn(move |_| {
                    for step in 0..threads {
                        let shard = (w + step) % threads;
                        let range = &ranges[shard];
                        loop {
                            let claimed = cursors[shard].fetch_add(1, Ordering::Relaxed);
                            if claimed >= range.len() {
                                break;
                            }
                            let index = range.start + claimed;
                            let value = worker(index);
                            let guard = &mut *reorder.lock();
                            if index == guard.next {
                                (guard.sink)(index, value);
                                guard.next += 1;
                                while let Some(parked) = guard.parked.remove(&guard.next) {
                                    (guard.sink)(guard.next, parked);
                                    guard.next += 1;
                                }
                            } else {
                                guard.parked.insert(index, value);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("ordered batch worker panicked");
        }
    })
    .expect("ordered batch scope");

    let guard = reorder.into_inner();
    debug_assert_eq!(guard.next, num_jobs, "ordered delivery lost a result");
    debug_assert!(guard.parked.is_empty());
}

/// [`run_batch`] over an explicit job list: `worker(&jobs[i])` for every
/// job, results in job order.
pub fn run_jobs<T, F>(jobs: &[BatchJob], threads: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(&BatchJob) -> T + Sync,
{
    run_batch(jobs.len(), threads, |index| worker(&jobs[index]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn names(prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn expansion_covers_the_cross_product_in_canonical_order() {
        let jobs = expand_jobs("be", &names("m", 3), &names("M", 2), &[0.03, 0.1], 7);
        assert_eq!(jobs.len(), 12);
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
            assert_eq!(job.backend, "be");
        }
        // Matrix-major, then method, then epsilon.
        assert_eq!(jobs[0].matrix, "m0");
        assert_eq!(jobs[1].epsilon, 0.1);
        assert_eq!(jobs[2].method, "M1");
        assert_eq!(jobs[4].matrix, "m1");
    }

    #[test]
    fn seeds_depend_on_the_key_not_the_sweep_order() {
        let full = expand_jobs("be", &names("m", 3), &names("M", 3), &[0.03, 0.1], 42);
        // The same cell in a smaller sweep (fewer matrices, one method,
        // reversed epsilons) must get the same seed.
        let partial = expand_jobs(
            "be",
            &["m2".to_string()],
            &["M1".to_string()],
            &[0.1, 0.03],
            42,
        );
        let cell = full
            .iter()
            .find(|j| j.matrix == "m2" && j.method == "M1" && j.epsilon == 0.1)
            .unwrap();
        assert_eq!(cell.seed, partial[0].seed);
        assert_eq!(
            cell.seed,
            job_seed(42, "be", "m2", "M1", 0.1),
            "seed must be reproducible from the key alone"
        );
    }

    #[test]
    fn distinct_keys_get_distinct_seeds() {
        let jobs = expand_jobs("be", &names("m", 4), &names("M", 3), &[0.01, 0.03, 0.1], 9);
        let mut seeds: Vec<u64> = jobs.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), jobs.len());
    }

    #[test]
    fn distinct_backends_draw_independent_streams() {
        let a = job_seed(7, "mondriaan", "m0", "MG", 0.03);
        let b = job_seed(7, "patoh", "m0", "MG", 0.03);
        let c = job_seed(7, "geometric", "m0", "MG", 0.03);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn run_seed_streams_are_distinct_per_run() {
        let jobs = expand_jobs("be", &names("m", 1), &names("M", 1), &[0.03], 1);
        let a = run_seed(&jobs[0], 0);
        let b = run_seed(&jobs[0], 1);
        assert_ne!(a, b);
        assert_ne!(a, jobs[0].seed);
    }

    #[test]
    fn batch_results_come_back_in_job_order() {
        for threads in [1usize, 2, 3, 8, 19] {
            let out = run_batch(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicU32> = (0..57).map(|_| AtomicU32::new(0)).collect();
        let out = run_batch(counters.len(), 5, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), counters.len());
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn ordered_delivery_is_in_index_order_and_complete() {
        for threads in [1usize, 2, 3, 8] {
            let mut delivered: Vec<(usize, usize)> = Vec::new();
            run_batch_ordered(37, threads, |i| i * 3, |i, v| delivered.push((i, v)));
            assert_eq!(delivered.len(), 37, "threads={threads}");
            for (k, &(i, v)) in delivered.iter().enumerate() {
                assert_eq!(i, k);
                assert_eq!(v, k * 3);
            }
        }
    }

    #[test]
    fn ordered_delivery_matches_run_batch() {
        let batch = run_batch(29, 4, |i| i * i + 1);
        let mut streamed = Vec::new();
        run_batch_ordered(29, 4, |i| i * i + 1, |_, v| streamed.push(v));
        assert_eq!(batch, streamed);
    }

    #[test]
    fn ordered_delivery_streams_prefixes_before_the_batch_ends() {
        // Job 0 is slow; every other job must park and then flush in order
        // behind it. The sink asserts the prefix invariant: when index i is
        // delivered, exactly i results were delivered before it.
        let slow = AtomicU32::new(0);
        let mut count = 0usize;
        run_batch_ordered(
            16,
            4,
            |i| {
                if i == 0 {
                    while slow.load(Ordering::Relaxed) < 8 {
                        std::thread::yield_now();
                    }
                } else {
                    slow.fetch_add(1, Ordering::Relaxed);
                }
                i
            },
            |i, v| {
                assert_eq!(i, count);
                assert_eq!(v, count);
                count += 1;
            },
        );
        assert_eq!(count, 16);
    }

    #[test]
    fn ordered_delivery_handles_empty_batches() {
        let mut called = false;
        run_batch_ordered(0, 4, |i| i, |_, _| called = true);
        assert!(!called);
    }

    #[test]
    fn empty_batch_and_oversubscribed_pool() {
        assert!(run_batch(0, 8, |i| i).is_empty());
        assert_eq!(run_batch(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn shard_ranges_tile_the_index_space() {
        for len in [0usize, 1, 9, 64] {
            for pieces in [1usize, 2, 7, 16] {
                let ranges = shard_ranges(len, pieces);
                assert_eq!(ranges.len(), pieces.max(1));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }
}

//! # mg-collection — the synthetic evaluation collection
//!
//! The paper evaluates on 2264 matrices (500 – 5·10⁶ nonzeros) from the
//! University of Florida sparse matrix collection, split into three classes:
//! 582 rectangular, 1007 structurally symmetric, 675 square non-symmetric.
//! That collection cannot be redistributed here, so this crate generates a
//! *deterministic* population with the same class mix (≈26% / 44% / 30%)
//! and a comparable diversity of structure, drawn from the twelve generator
//! families of [`mg_sparse::gen`] (see DESIGN.md §5 for the substitution
//! argument).
//!
//! Everything is a pure function of the [`CollectionSpec`] seed, so the
//! whole experiment pipeline is reproducible bit-for-bit.

pub mod gd97b;
pub mod suite;

pub use gd97b::gd97b_twin;
pub use suite::{generate, CollectionEntry, CollectionScale, CollectionSpec};

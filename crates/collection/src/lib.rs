//! # mg-collection — the synthetic evaluation collection
//!
//! The paper evaluates on 2264 matrices (500 – 5·10⁶ nonzeros) from the
//! University of Florida sparse matrix collection, split into three classes:
//! 582 rectangular, 1007 structurally symmetric, 675 square non-symmetric.
//! That collection cannot be redistributed here, so this crate generates a
//! *deterministic* population with the same class mix (≈26% / 44% / 30%)
//! and a comparable diversity of structure, drawn from the twelve generator
//! families of [`mg_sparse::gen`] (see DESIGN.md §5 for the substitution
//! argument).
//!
//! Everything is a pure function of the [`CollectionSpec`] seed, so the
//! whole experiment pipeline is reproducible bit-for-bit.
//!
//! The [`batch`] module turns a collection into a sweep substrate: it
//! expands (matrix × method × ε) cells into a job list with stable
//! per-key seeds and schedules them over a work-stealing worker pool with
//! thread-count-independent results.

pub mod batch;
pub mod gd97b;
pub mod suite;

pub use batch::{
    expand_jobs, job_seed, run_batch, run_batch_ordered, run_jobs, run_seed, worker_count, BatchJob,
};
pub use gd97b::gd97b_twin;
pub use suite::{generate, CollectionEntry, CollectionScale, CollectionSpec};

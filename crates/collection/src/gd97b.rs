//! A deterministic stand-in for the `gd97_b` matrix of Fig 3.
//!
//! The original (University of Florida collection, Pajek group) is a
//! 47 × 47 structurally symmetric graph-drawing matrix with 264 nonzeros
//! whose optimal bipartition volume is 11 (shown in the paper's Fig 3 and
//! proved optimal in the first author's MSc thesis). We reproduce its
//! *shape*: 47 × 47, exactly 264 nonzeros, symmetric, connected — a ring
//! backbone (connectivity) plus seeded random chords. The optimal volume of
//! the twin is unknown, so the Fig 3 reproduction reports best-of-100-runs
//! per method rather than distance to a known optimum.

use mg_sparse::{Coo, Idx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dimensions of the twin (and the original).
pub const N: Idx = 47;
/// Nonzero count of the twin (and the original).
pub const NNZ: usize = 264;

/// Generates the `gd97_b` twin: 47 × 47, exactly 264 nonzeros, pattern
/// symmetric, no diagonal, connected.
pub fn gd97b_twin() -> Coo {
    let mut rng = StdRng::seed_from_u64(0x9d97b);
    let mut pairs: Vec<(Idx, Idx)> = Vec::new();
    // Ring backbone: 47 undirected edges keep the graph connected.
    for v in 0..N {
        pairs.push((v, (v + 1) % N));
    }
    // 132 − 47 = 85 random chords.
    while pairs.len() < NNZ / 2 {
        let i = rng.gen_range(0..N);
        let j = rng.gen_range(0..N);
        if i == j {
            continue;
        }
        let (lo, hi) = (i.min(j), i.max(j));
        if !pairs.contains(&(lo, hi)) && !pairs.contains(&(hi, lo)) {
            pairs.push((lo, hi));
        }
    }
    let mut entries = Vec::with_capacity(NNZ);
    for (i, j) in pairs {
        entries.push((i, j));
        entries.push((j, i));
    }
    Coo::new(N, N, entries).expect("twin entries in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_sparse::{MatrixClass, PatternStats};

    #[test]
    fn twin_matches_the_original_shape() {
        let a = gd97b_twin();
        assert_eq!(a.rows(), 47);
        assert_eq!(a.cols(), 47);
        assert_eq!(a.nnz(), 264);
        let s = PatternStats::compute(&a);
        assert_eq!(s.class(), MatrixClass::Symmetric);
        assert_eq!(s.diagonal_nnz, 0);
    }

    #[test]
    fn twin_is_connected() {
        let a = gd97b_twin();
        // BFS over the symmetric pattern.
        let csr = mg_sparse::Csr::from_coo(&a);
        let mut seen = [false; 47];
        let mut queue = std::collections::VecDeque::from([0u32]);
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for &u in csr.row(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    count += 1;
                    queue.push_back(u);
                }
            }
        }
        assert_eq!(count, 47);
    }

    #[test]
    fn twin_is_deterministic() {
        assert_eq!(gd97b_twin(), gd97b_twin());
    }
}

//! The matrix suite generator.
//!
//! [`generate`] expands a [`CollectionSpec`] into a deterministic list of
//! named matrices covering the paper's three classes in roughly the paper's
//! proportions (26% rectangular, 44% symmetric, 30% square non-symmetric).
//! Instance sizes are spread log-uniformly between the scale's bounds so
//! profiles aggregate over small and large problems alike, mirroring the
//! 500 – 5M nonzero span of the original test set (scaled down to keep the
//! full sweep tractable on one machine).

use mg_sparse::stats::{MatrixClass, PatternStats};
use mg_sparse::{gen, Coo, Idx};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How big a collection to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionScale {
    /// 16 small matrices (≤ ~4k nonzeros); used by tests and CI.
    Smoke,
    /// 96 matrices up to ~60k nonzeros; the default experiment set.
    Default,
    /// 144 matrices up to ~400k nonzeros; closer to the paper's span
    /// (a substantially longer sweep).
    Large,
}

impl CollectionScale {
    /// (instances per family variant, max nonzeros target)
    fn parameters(self) -> (usize, usize) {
        match self {
            CollectionScale::Smoke => (1, 4_000),
            CollectionScale::Default => (6, 60_000),
            CollectionScale::Large => (9, 400_000),
        }
    }
}

/// Specification of a deterministic collection.
#[derive(Debug, Clone)]
pub struct CollectionSpec {
    /// Master seed; every matrix derives its own stream from it.
    pub seed: u64,
    /// Size of the collection.
    pub scale: CollectionScale,
}

impl Default for CollectionSpec {
    fn default() -> Self {
        CollectionSpec {
            seed: 20140519, // IPDPS 2014, Phoenix, AZ — first day
            scale: CollectionScale::Default,
        }
    }
}

/// A named matrix of the collection.
#[derive(Debug, Clone)]
pub struct CollectionEntry {
    /// Unique name, e.g. `laplace2d_08_k40`.
    pub name: String,
    /// Generator family, e.g. `laplace2d`.
    pub family: &'static str,
    /// The matrix.
    pub matrix: Coo,
    /// The paper's class of this matrix.
    pub class: MatrixClass,
}

/// Log-uniform interpolation between `lo` and `hi` for step `i` of `n`.
fn log_interp(lo: usize, hi: usize, i: usize, n: usize) -> usize {
    if n <= 1 {
        return hi.min(lo.max(hi / 2));
    }
    let t = i as f64 / (n - 1) as f64;
    ((lo as f64).ln() + t * ((hi as f64).ln() - (lo as f64).ln()))
        .exp()
        .round() as usize
}

fn push(entries: &mut Vec<CollectionEntry>, family: &'static str, name: String, matrix: Coo) {
    let class = PatternStats::compute(&matrix).class();
    entries.push(CollectionEntry {
        name,
        family,
        matrix,
        class,
    });
}

/// Generates the collection for a spec. Deterministic in `spec`.
pub fn generate(spec: &CollectionSpec) -> Vec<CollectionEntry> {
    let (per_family, max_nnz) = spec.scale.parameters();
    let min_nnz = 500usize;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut entries: Vec<CollectionEntry> = Vec::new();

    // --- Symmetric families (target ≈ 44%). -----------------------------
    // 2D Laplacians, 5-point: nnz ≈ 5k².
    for i in 0..per_family {
        let nnz = log_interp(min_nnz, max_nnz, i, per_family);
        let k = (((nnz as f64) / 5.0).sqrt().round() as Idx).max(4);
        push(
            &mut entries,
            "laplace2d",
            format!("laplace2d_{i:02}_k{k}"),
            gen::laplacian_2d(k, k),
        );
    }
    // 2D Laplacians, 9-point, non-square grids.
    for i in 0..per_family {
        let nnz = log_interp(min_nnz, max_nnz, i, per_family);
        let kx = (((nnz as f64) / 9.0).sqrt().round() as Idx).max(4);
        let ky = (kx / 2).max(3);
        push(
            &mut entries,
            "laplace2d9",
            format!("laplace2d9_{i:02}_k{kx}x{ky}"),
            gen::laplacian_2d_9pt(kx, ky * 2),
        );
    }
    // 3D Laplacians: nnz ≈ 7k³.
    for i in 0..per_family {
        let nnz = log_interp(min_nnz, max_nnz, i, per_family);
        let k = (((nnz as f64) / 7.0).cbrt().round() as Idx).max(3);
        push(
            &mut entries,
            "laplace3d",
            format!("laplace3d_{i:02}_k{k}"),
            gen::laplacian_3d(k, k, k),
        );
    }
    // Random symmetric.
    for i in 0..per_family {
        let nnz = log_interp(min_nnz, max_nnz, i, per_family);
        let n = ((nnz / 8) as Idx).max(16);
        push(
            &mut entries,
            "randsym",
            format!("randsym_{i:02}_n{n}"),
            gen::random_symmetric(n, nnz, &mut rng),
        );
    }
    // Power-law symmetric (Chung–Lu), two exponents.
    for (alpha_tag, alpha) in [("a07", 0.7), ("a11", 1.1)] {
        for i in 0..per_family {
            let nnz = log_interp(min_nnz, max_nnz, i, per_family);
            let n = ((nnz / 6) as Idx).max(24);
            push(
                &mut entries,
                "chunglu",
                format!("chunglu{alpha_tag}_{i:02}_n{n}"),
                gen::chung_lu_symmetric(n, nnz, alpha, &mut rng),
            );
        }
    }
    // Perturbed bands.
    for i in 0..per_family {
        let nnz = log_interp(min_nnz, max_nnz, i, per_family);
        let bw = 2 + (i as Idx % 5);
        let n = ((nnz as u64 / (2 * bw as u64 + 1)) as Idx).max(16);
        push(
            &mut entries,
            "band",
            format!("band_{i:02}_n{n}_b{bw}"),
            gen::perturbed_band(n, bw, 0.2, (nnz / 50).max(1), &mut rng),
        );
    }
    // Arrow matrices (hard for 1D).
    for i in 0..per_family {
        let nnz = log_interp(min_nnz, max_nnz, i, per_family);
        // arrow nnz ≈ 3·core + border·(2·core+1)
        let border = 2 + (i as Idx % 4);
        let core = ((nnz as u64 / (3 + 2 * border as u64)) as Idx).max(8);
        push(
            &mut entries,
            "arrow",
            format!("arrow_{i:02}_n{}_b{border}", core + border),
            gen::arrow(core + border, border),
        );
    }

    // --- Square non-symmetric families (target ≈ 30%). ------------------
    // Square Erdős–Rényi with full diagonal.
    for i in 0..per_family {
        let nnz = log_interp(min_nnz, max_nnz, i, per_family);
        let n = ((nnz / 7) as Idx).max(16);
        push(
            &mut entries,
            "ersq",
            format!("ersq_{i:02}_n{n}"),
            gen::erdos_renyi_square(n, nnz, &mut rng),
        );
    }
    // Directed scale-free.
    for i in 0..per_family {
        let nnz = log_interp(min_nnz, max_nnz, i, per_family);
        let n = ((nnz / 6) as Idx).max(24);
        push(
            &mut entries,
            "scalefree",
            format!("scalefree_{i:02}_n{n}"),
            gen::scale_free_directed(n, nnz, 0.7, 1.2, &mut rng),
        );
    }
    // RMAT.
    for i in 0..per_family {
        let nnz = log_interp(min_nnz, max_nnz, i, per_family);
        let scale = ((nnz as f64 / 8.0).log2().round() as u32).clamp(6, 18);
        push(
            &mut entries,
            "rmat",
            format!("rmat_{i:02}_s{scale}"),
            gen::rmat(scale, nnz, 0.57, 0.19, 0.19, &mut rng),
        );
    }
    // Block diagonal with coupling (block fill is directional → nonsym).
    for i in 0..per_family {
        let nnz = log_interp(min_nnz, max_nnz, i, per_family);
        let blocks = 3 + (i as Idx % 5);
        let bs = (((nnz as f64 / blocks as f64) / 0.3).sqrt().round() as Idx).clamp(4, 256);
        push(
            &mut entries,
            "blockdiag",
            format!("blockdiag_{i:02}_b{blocks}x{bs}"),
            gen::block_diagonal(blocks, bs, 0.25, (bs as usize / 3).max(1), &mut rng),
        );
    }

    // --- Rectangular families (target ≈ 26%). ---------------------------
    // Tall and wide Erdős–Rényi.
    for (tag, ratio) in [("tall", 4.0f64), ("wide", 0.25)] {
        for i in 0..per_family {
            let nnz = log_interp(min_nnz, max_nnz, i, per_family);
            let cells = (nnz as f64) / 0.02; // 2% fill
            let m = ((cells * ratio).sqrt().round() as Idx).max(12);
            let n = ((cells / ratio).sqrt().round() as Idx).max(12);
            push(
                &mut entries,
                "errect",
                format!("errect_{tag}_{i:02}_{m}x{n}"),
                gen::erdos_renyi(m, n, nnz, &mut rng),
            );
        }
    }
    // Term–document.
    for i in 0..per_family {
        let nnz = log_interp(min_nnz, max_nnz, i, per_family);
        let docs = ((nnz / 8) as Idx).max(16);
        let terms = (docs * 3).max(32);
        push(
            &mut entries,
            "termdoc",
            format!("termdoc_{i:02}_{terms}x{docs}"),
            gen::term_document(terms, docs, 8, &mut rng),
        );
    }
    // Extremely tall (the paper's m >> n regime where 1D already wins).
    for i in 0..per_family {
        let nnz = log_interp(min_nnz, max_nnz, i, per_family);
        let n = 8 + (i as Idx % 8);
        let m = ((nnz / 3) as Idx).max(32);
        push(
            &mut entries,
            "verytall",
            format!("verytall_{i:02}_{m}x{n}"),
            gen::erdos_renyi(m, n, nnz, &mut rng),
        );
    }

    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn smoke_collection_is_generated() {
        let spec = CollectionSpec {
            seed: 1,
            scale: CollectionScale::Smoke,
        };
        let c = generate(&spec);
        assert!(c.len() >= 15, "only {} matrices", c.len());
        for e in &c {
            assert!(e.matrix.nnz() > 0, "{} is empty", e.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let c = generate(&CollectionSpec {
            seed: 2,
            scale: CollectionScale::Smoke,
        });
        let names: HashSet<&str> = c.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn deterministic_generation() {
        let spec = CollectionSpec {
            seed: 3,
            scale: CollectionScale::Smoke,
        };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.matrix, y.matrix);
        }
    }

    #[test]
    fn all_three_classes_are_represented() {
        let c = generate(&CollectionSpec {
            seed: 4,
            scale: CollectionScale::Smoke,
        });
        let mut seen = HashSet::new();
        for e in &c {
            seen.insert(e.class);
        }
        assert!(seen.contains(&MatrixClass::Rectangular));
        assert!(seen.contains(&MatrixClass::Symmetric));
        assert!(seen.contains(&MatrixClass::SquareNonSymmetric));
    }

    #[test]
    fn class_mix_roughly_matches_the_paper() {
        let c = generate(&CollectionSpec {
            seed: 5,
            scale: CollectionScale::Default,
        });
        let total = c.len() as f64;
        let frac = |cl: MatrixClass| c.iter().filter(|e| e.class == cl).count() as f64 / total;
        let sym = frac(MatrixClass::Symmetric);
        let rect = frac(MatrixClass::Rectangular);
        let sqr = frac(MatrixClass::SquareNonSymmetric);
        // Paper: 44% / 26% / 30%. Generators can drift (a random square
        // pattern may come out symmetric by chance), allow wide bands.
        assert!((0.30..=0.60).contains(&sym), "sym fraction {sym}");
        assert!((0.15..=0.40).contains(&rect), "rect fraction {rect}");
        assert!((0.15..=0.45).contains(&sqr), "sqr fraction {sqr}");
    }

    #[test]
    fn nnz_spans_the_scale_range() {
        let c = generate(&CollectionSpec {
            seed: 6,
            scale: CollectionScale::Default,
        });
        let min = c.iter().map(|e| e.matrix.nnz()).min().unwrap();
        let max = c.iter().map(|e| e.matrix.nnz()).max().unwrap();
        assert!(min < 2_000, "min nnz {min}");
        assert!(max > 20_000, "max nnz {max}");
    }
}

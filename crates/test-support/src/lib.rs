//! # mg-test-support — shared deterministic test workloads
//!
//! Every integration test and bench in the workspace needs the same three
//! things: a seeded RNG stream, representative fixture matrices, and
//! proptest strategies for arbitrary matrices/hypergraphs. Before this crate
//! they were copy-pasted per test file with drifting parameters; now they
//! live here and are consumed as a dev-dependency, so new PRs get
//! deterministic workloads for free.

pub mod fixtures;
pub mod strategies;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The workspace-wide convention for deterministic test RNGs.
///
/// A thin wrapper over `StdRng::seed_from_u64`, named so test code reads as
/// intent ("give me the seeded stream") rather than mechanism.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

//! Proptest strategies for arbitrary matrices, partitions and hypergraphs.
//!
//! Parameterised versions of the `arb_*` helpers that used to be duplicated
//! (with silently diverging bounds) in every proptest file.

use mg_hypergraph::{Hypergraph, HypergraphBuilder};
use mg_sparse::{Coo, Idx, NonzeroPartition};
use proptest::prelude::*;

/// A small random matrix: dimensions in `1..=max_dim`, up to `max_entries`
/// candidate entries (duplicates removed by the `Coo` constructor).
pub fn arb_coo(max_dim: u32, min_entries: usize, max_entries: usize) -> impl Strategy<Value = Coo> {
    (1u32..=max_dim, 1u32..=max_dim).prop_flat_map(move |(m, n)| {
        proptest::collection::vec((0..m, 0..n), min_entries..=max_entries)
            .prop_map(move |entries| Coo::new(m, n, entries).expect("in bounds"))
    })
}

/// A matrix plus a `p`-way partition of its nonzeros, `p` in `1..=max_parts`.
pub fn arb_partitioned(
    max_dim: u32,
    max_entries: usize,
    max_parts: u32,
) -> impl Strategy<Value = (Coo, NonzeroPartition)> {
    (arb_coo(max_dim, 0, max_entries), 1u32..=max_parts).prop_flat_map(|(a, p)| {
        let nnz = a.nnz();
        proptest::collection::vec(0..p, nnz..=nnz).prop_map(move |parts| {
            (
                a.clone(),
                NonzeroPartition::new(p, parts).expect("in range"),
            )
        })
    })
}

/// An arbitrary hypergraph: `min_vertices..=max_vertices` vertices with
/// weights drawn from `vertex_weights`, and nets from `nets` with `pins`
/// pins each (pin lists may repeat a vertex; the builder deduplicates).
pub fn arb_hypergraph(
    min_vertices: usize,
    max_vertices: usize,
    vertex_weights: std::ops::Range<u64>,
    pins: std::ops::Range<usize>,
    nets: std::ops::Range<usize>,
) -> impl Strategy<Value = Hypergraph> {
    (min_vertices..=max_vertices).prop_flat_map(move |nv| {
        let weights = proptest::collection::vec(vertex_weights.clone(), nv..=nv);
        let net_list = proptest::collection::vec(
            (
                1u64..4,
                proptest::collection::vec(0..nv as Idx, pins.clone()),
            ),
            nets.clone(),
        );
        (weights, net_list).prop_map(|(weights, net_list)| {
            let mut b = HypergraphBuilder::new(weights);
            for (w, pin_list) in net_list {
                b.add_net(w, pin_list);
            }
            b.build()
        })
    })
}

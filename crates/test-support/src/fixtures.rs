//! Deterministic fixture matrices shared by integration tests and benches.

use mg_sparse::{gen, Coo};

use crate::seeded_rng;

/// The standard cross-crate integration workload: one matrix per structural
/// family the paper's collection distinguishes, all derived from seed 77.
///
/// Used by `tests/pipeline.rs`; kept small enough that a full
/// methods × workload sweep stays in CI-friendly time.
pub fn standard_workload() -> Vec<(&'static str, Coo)> {
    let mut rng = seeded_rng(77);
    vec![
        ("laplace2d", gen::laplacian_2d(24, 24)),
        ("laplace3d", gen::laplacian_3d(8, 8, 8)),
        ("chunglu", gen::chung_lu_symmetric(300, 3000, 0.9, &mut rng)),
        (
            "scalefree",
            gen::scale_free_directed(250, 2500, 0.8, 1.2, &mut rng),
        ),
        ("rect_tall", gen::erdos_renyi(400, 80, 3200, &mut rng)),
        ("termdoc", gen::term_document(500, 160, 7, &mut rng)),
        ("arrow", gen::arrow(200, 4)),
        ("rmat", gen::rmat(9, 4000, 0.57, 0.19, 0.19, &mut rng)),
    ]
}

/// The three matrices the criterion benches time methods on: a 2D mesh, a
/// power-law graph and a tall rectangular term–document pattern.
pub fn representative_matrices() -> Vec<(&'static str, Coo)> {
    let mut rng = seeded_rng(42);
    vec![
        ("laplace2d_40", gen::laplacian_2d(40, 40)),
        (
            "rmat_s11",
            gen::rmat(11, 16_000, 0.57, 0.19, 0.19, &mut rng),
        ),
        ("termdoc_900x300", gen::term_document(900, 300, 8, &mut rng)),
    ]
}

/// The substrate-bench matrix: large enough that model build / FM / volume
/// timings are meaningful (3600 rows, ≈17.8k nonzeros).
pub fn substrate_bench_matrix() -> Coo {
    gen::laplacian_2d(60, 60)
}

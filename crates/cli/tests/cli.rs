//! End-to-end tests of the `mgpart` binary: backend selection on the
//! sweep path, the typed empty-sweep failure (nonzero exit), and the
//! backend registry listing.

use std::process::{Command, Output};

fn mgpart(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mgpart"))
        .args(args)
        .output()
        .expect("spawning mgpart")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A small, fast sweep: one matrix (name filter), one cheap method.
fn narrow_sweep(extra: &[&str]) -> Vec<String> {
    let mut args = vec![
        "sweep",
        "--scale",
        "smoke",
        "--matrices",
        "laplace2d_00",
        "-m",
        "mg",
    ];
    args.extend_from_slice(extra);
    args.iter().map(|s| s.to_string()).collect()
}

fn run_narrow_sweep(extra: &[&str]) -> Output {
    let args = narrow_sweep(extra);
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    mgpart(&refs)
}

#[test]
fn empty_sweeps_exit_nonzero_with_a_typed_error() {
    let out = run_narrow_sweep(&["--matrices", "no_such_matrix_anywhere"]);
    assert!(
        !out.status.success(),
        "an empty sweep must not exit 0 (stdout: {})",
        stdout(&out)
    );
    let err = stderr(&out);
    assert!(err.contains("empty sweep"), "stderr: {err}");
    assert!(
        stdout(&out).is_empty(),
        "an empty sweep must not emit records"
    );
}

#[test]
fn unknown_backends_exit_nonzero_and_list_the_registry() {
    let out = run_narrow_sweep(&["--backend", "hmetis"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown backend"), "stderr: {err}");
    assert!(err.contains("coarse-grain"), "stderr lists names: {err}");
}

#[test]
fn sweep_records_carry_the_selected_backend() {
    let out = run_narrow_sweep(&["--backend", "geometric"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let body = stdout(&out);
    assert!(!body.is_empty());
    for line in body.lines() {
        assert!(
            line.contains("\"backend\":\"geometric\""),
            "record missing backend: {line}"
        );
    }
}

#[test]
fn engine_flag_remains_an_alias_for_backend() {
    let with_engine = run_narrow_sweep(&["--engine", "patoh"]);
    let with_backend = run_narrow_sweep(&["--backend", "patoh"]);
    assert!(
        with_engine.status.success(),
        "stderr: {}",
        stderr(&with_engine)
    );
    assert_eq!(stdout(&with_engine), stdout(&with_backend));
    assert!(stdout(&with_engine).contains("\"backend\":\"patoh\""));
}

#[test]
fn backend_sweeps_are_byte_identical_across_thread_counts() {
    let baseline = run_narrow_sweep(&["--backend", "coarse-grain", "--threads", "1"]);
    assert!(baseline.status.success(), "stderr: {}", stderr(&baseline));
    let four = run_narrow_sweep(&["--backend", "coarse-grain", "--threads", "4"]);
    assert_eq!(stdout(&baseline), stdout(&four));
}

#[test]
fn request_against_a_dead_endpoint_exits_nonzero_with_a_typed_error() {
    // Bind-and-drop an ephemeral port: plausibly real, certainly refused.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let out = mgpart(&["request", &addr, "--op", "ping"]);
    assert!(
        !out.status.success(),
        "a refused connection must not exit 0 (stdout: {})",
        stdout(&out)
    );
    assert_eq!(out.status.code(), Some(1));
    let body = stdout(&out);
    let line = body.lines().next().unwrap_or_default();
    assert!(
        line.starts_with("{\"id\":null,\"status\":\"error\",\"code\":\"connection_refused\""),
        "stdout carries the typed error line: {body}"
    );
    assert!(line.contains(&addr), "the address is named: {line}");
    let err = stderr(&out);
    assert!(
        err.contains("\"level\":\"error\"") && err.contains("\"event\":\"fatal\""),
        "stderr still explains, as a structured event: {err}"
    );
}

#[test]
fn request_timeout_exits_nonzero_with_a_typed_error() {
    // A listener that accepts the connection but never answers: without
    // --timeout this would hang forever; with it, the client emits a
    // typed request_timeout line and exits nonzero.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let silent = std::thread::spawn(move || {
        // Accept and hold the connection open without responding until
        // the client hangs up.
        let (stream, _) = listener.accept().unwrap();
        let mut sink = Vec::new();
        use std::io::Read as _;
        let _ = std::io::BufReader::new(stream).read_to_end(&mut sink);
    });
    let out = mgpart(&[
        "request",
        &addr,
        "--op",
        "ping",
        "--id",
        "42",
        "--timeout",
        "0.2",
    ]);
    silent.join().unwrap();
    assert!(
        !out.status.success(),
        "a timed-out request must not exit 0 (stdout: {})",
        stdout(&out)
    );
    assert_eq!(out.status.code(), Some(1));
    let body = stdout(&out);
    let line = body.lines().next().unwrap_or_default();
    assert!(
        line.starts_with("{\"id\":42,\"status\":\"error\",\"code\":\"request_timeout\""),
        "stdout carries the typed error line: {body}"
    );
    assert!(line.contains(&addr), "the address is named: {line}");
    assert!(stderr(&out).contains("timed out"), "stderr still explains");
}

#[test]
fn route_rejects_out_of_range_capacities_with_a_typed_error() {
    for shards in ["a=127.0.0.1:1*0", "a=127.0.0.1:1*4000000000"] {
        let out = mgpart(&["route", "--shards", shards]);
        assert!(!out.status.success(), "{shards:?} must exit nonzero");
        let err = stderr(&out);
        assert!(
            err.contains("topology error") && err.contains("invalid capacity"),
            "{shards:?} stderr: {err}"
        );
    }
}

#[test]
fn route_rejects_zero_replicas_with_a_typed_error() {
    let out = mgpart(&["route", "--shards", "127.0.0.1:1", "--replicas", "0"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("replicas"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn route_rejects_zero_shard_topologies_with_a_typed_error() {
    for args in [vec!["route"], vec!["route", "--shards", " , "]] {
        let out = mgpart(&args);
        assert!(!out.status.success(), "{args:?} must exit nonzero");
        let err = stderr(&out);
        assert!(
            err.contains("topology error") && err.contains("zero shards"),
            "{args:?} stderr: {err}"
        );
    }
}

#[test]
fn route_rejects_duplicate_shard_ids_with_a_typed_error() {
    let out = mgpart(&["route", "--shards", "a=127.0.0.1:1,a=127.0.0.1:2"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("topology error") && err.contains("more than once"),
        "stderr: {err}"
    );
    let out = mgpart(&["route", "--shards", "x=127.0.0.1:1,y=127.0.0.1:1"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("address"), "duplicate addresses too");
}

#[test]
fn request_print_emits_shard_addressed_stats_lines() {
    let out = mgpart(&["request", "--op", "stats", "--shard", "s1", "--print"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(stdout(&out).trim(), r#"{"op":"stats","shard":"s1"}"#);
    let bad = mgpart(&["request", "--op", "ping", "--shard", "s1", "--print"]);
    assert!(!bad.status.success(), "--shard is stats-only");
}

#[test]
fn log_level_flag_is_global_and_typo_checked() {
    // Legal before or after the subcommand.
    for args in [
        ["--log-level", "debug", "backends"],
        ["backends", "--log-level", "debug"],
    ] {
        let out = mgpart(&args);
        assert!(out.status.success(), "{args:?} stderr: {}", stderr(&out));
        assert!(stdout(&out).contains("mondriaan"), "{args:?} still runs");
    }
    // An unknown level is a fatal structured error, nonzero exit.
    let out = mgpart(&["--log-level", "nonsense", "backends"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains("unknown log level") && err.contains("\"event\":\"fatal\""),
        "stderr: {err}"
    );
}

#[test]
fn backends_listing_names_every_registered_backend() {
    let out = mgpart(&["backends"]);
    assert!(out.status.success());
    let body = stdout(&out);
    for name in ["mondriaan", "patoh", "coarse-grain", "geometric"] {
        assert!(body.contains(name), "missing {name}: {body}");
    }
    assert!(body.contains("default: mondriaan"));
}

//! `mgpart bench` — the wire-path benchmark harness (the BENCH
//! trajectory).
//!
//! Drives real serve/route sessions — in-process pipe sessions for
//! decode/throughput numbers, TCP round-trips for latency — across both
//! wire codecs, and emits machine-readable JSON
//! (`{"schema":"mgpart-bench/v1", ...}`) so CI can diff trajectories.
//!
//! Three modes:
//!
//! * default run: measure every workload × codec × transport cell and
//!   print a table (`--json` / `-o FILE` for the JSON document instead);
//!   the run ends with the *compute trajectory* — fresh large inline
//!   partitions per backend, sized so the partitioner phases (not the
//!   wire) dominate, summarised in the document's `compute` block.
//!   `--baseline FILE` embeds the compute phases of a previously
//!   generated document and records per-phase speedups against it;
//! * `--validate FILE`: schema-check a bench document and enforce the
//!   trajectory gates (binary beats JSON on bytes for inline payloads,
//!   on throughput for the decode-bound cached workload, and — for a
//!   document carrying a compute baseline — the kernel-speedup gate).
//!   `--against COMMITTED` additionally compares the validated
//!   document's compute-phase *shares* to the committed trajectory file
//!   within a tolerance band, so CI catches per-phase regressions
//!   without depending on wall-clock absolutes;
//! * `--conformance`: run one mixed request stream through both codecs
//!   at 1/2/4 worker threads and require byte-identical response texts.

use crate::args::Parsed;
use mg_collection::{CollectionScale, CollectionSpec};
use mg_router::{LocalCluster, RouterConfig};
use mg_server::codec::{batch_payload, encode_frame, json_payload, partition_payload, KIND_JSON};
use mg_server::json::obj;
use mg_server::{parse_request_line, Json, Service, ServiceConfig, TcpServer};
use mg_sparse::{gen, Coo, Idx};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

const SCHEMA: &str = "mgpart-bench/v1";
const TRAJECTORY: u64 = 9;
const HELLO_BINARY: &str = "{\"id\":\"bench\",\"op\":\"hello\",\"codec\":\"binary\"}";

/// The workloads every codec is measured on. `inline` is fresh compute
/// over distinct inline-COO matrices; `inline_cached` repeats one large
/// inline matrix so the cache answers everything after the first request
/// and the wire + decode path dominates; `collection` names server-side
/// matrices (tiny requests); `ping` is pure protocol overhead.
const PIPE_WORKLOADS: &[&str] = &["inline", "inline_cached", "collection", "ping"];

/// The backends the compute trajectory partitions fresh large matrices
/// through (one preset with boundary FM off, one with it on, so both FM
/// seeding disciplines are measured).
const COMPUTE_BACKENDS: &[&str] = &["mondriaan", "patoh"];

/// The phases the kernel-speedup gate is allowed to count: the three hot
/// loops of the raw-speed pass (ROADMAP "part 2"). A committed document
/// carrying a compute `baseline` must show ≥ [`GATE_SPEEDUP`]× on at
/// least [`GATE_PHASES_REQUIRED`] of them.
const GATE_PHASES: &[&str] = &["medium_grain_build", "fm_refinement", "volume_count"];
const GATE_SPEEDUP: f64 = 1.3;
const GATE_PHASES_REQUIRED: usize = 2;

/// Minimum fraction of compute-trajectory phase seconds that must land in
/// the gate phases: proves the workloads are sized so the hot kernels
/// (not coarsest-level initial partitioning) dominate.
const COMPUTE_HOT_MIN: f64 = 0.25;

/// Tolerance band of the `--against` share comparison: a phase's share of
/// compute time may exceed the committed document's share by at most
/// `share * SHARE_BAND_FACTOR + SHARE_BAND_FLOOR`. Shares are
/// machine-speed independent, so this catches a kernel regressing
/// relative to its siblings without gating on wall-clock absolutes.
const SHARE_BAND_FACTOR: f64 = 2.0;
const SHARE_BAND_FLOOR: f64 = 0.10;

struct BenchConfig {
    requests: u64,
    threads: usize,
    quick: bool,
}

struct Row {
    workload: String,
    codec: &'static str,
    transport: &'static str,
    requests: u64,
    responses: u64,
    seconds: f64,
    bytes_out: u64,
    bytes_in: u64,
    cache_hits: Option<u64>,
    p50_ms: Option<f64>,
    p99_ms: Option<f64>,
}

impl Row {
    fn throughput(&self) -> f64 {
        self.requests as f64 / self.seconds.max(1e-9)
    }
}

pub fn bench(parsed: &Parsed) -> Result<(), String> {
    if let Some(path) = parsed.flag_opt("--validate") {
        return validate_file(&path, parsed.flag_opt("--against").as_deref());
    }
    if parsed.has("--conformance") {
        return conformance();
    }
    let quick = parsed.has("--quick");
    let config = BenchConfig {
        requests: parsed.flag_parse("--requests", if quick { 24 } else { 96 })?,
        threads: parsed.flag_parse("--threads", 0usize)?,
        quick,
    };
    if config.requests == 0 {
        return Err("--requests must be at least 1".into());
    }

    // Snapshot the per-phase timing histograms (paper Fig. 5) so the
    // document reports the compute breakdown of exactly this run.
    let phase_before: Vec<(u64, f64)> = mg_obs::PHASES
        .iter()
        .map(|p| mg_obs::phase_stats(p))
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    for &workload in PIPE_WORKLOADS {
        let lines = workload_lines(workload, &config);
        for codec in ["json", "binary"] {
            rows.push(pipe_run(&config, workload, codec, &lines));
        }
    }
    // Pipelined multi-job frames: the whole cached workload in ONE frame.
    rows.push(batch_run(&config));
    // TCP round-trips for latency percentiles (serial, so throughput here
    // is per-round-trip rate, not the pipelined rate the pipe rows show).
    for &workload in &["inline_cached", "ping"] {
        let lines = workload_lines(workload, &config);
        let n = (lines.len() / 2).max(8).min(lines.len());
        for codec in ["json", "binary"] {
            rows.push(tcp_run(&config, workload, codec, &lines[..n])?);
        }
    }
    // The router in front of real TCP shards, pipe session on top.
    let lines = workload_lines("inline", &config);
    for codec in ["json", "binary"] {
        rows.push(routed_run(&config, codec, &lines));
    }

    // The compute trajectory: fresh large inline partitions per backend,
    // snapshotting the phase histograms around exactly these cells so the
    // `compute` block reports a wire-free kernel profile.
    let baseline = match parsed.flag_opt("--baseline") {
        Some(path) => Some(load_compute_phases(&path)?),
        None => None,
    };
    let compute_before: Vec<(u64, f64)> = mg_obs::PHASES
        .iter()
        .map(|p| mg_obs::phase_stats(p))
        .collect();
    let mut compute_rows: Vec<Row> = Vec::new();
    for &backend in COMPUTE_BACKENDS {
        let lines = compute_lines(backend, &config);
        compute_rows.push(pipe_run(
            &config,
            &format!("compute_{backend}"),
            "binary",
            &lines,
        ));
    }
    let compute = compute_json(&compute_rows, &compute_before, baseline.as_deref());
    rows.extend(compute_rows);

    let phases = phases_json(&phase_before);
    let document = render_document(&config, &rows, phases, compute);
    if let Some(path) = parsed.flag_opt("-o") {
        std::fs::write(&path, format!("{document}\n"))
            .map_err(|e| format!("writing {path}: {e}"))?;
        mg_obs::log::info(
            "bench_written",
            &[("path", path.as_str().into()), ("rows", rows.len().into())],
        );
    } else if parsed.has("--json") {
        println!("{document}");
    } else {
        print_table(&rows);
    }
    Ok(())
}

fn fresh_service(threads: usize) -> Arc<Service> {
    Service::start(ServiceConfig {
        threads,
        collection: CollectionSpec {
            seed: 11,
            scale: CollectionScale::Smoke,
        },
        ..ServiceConfig::default()
    })
}

fn inline_json(a: &Coo) -> String {
    let entries: Vec<String> = a.iter().map(|(i, j)| format!("[{i},{j}]")).collect();
    format!(
        "{{\"rows\":{},\"cols\":{},\"entries\":[{}]}}",
        a.rows(),
        a.cols(),
        entries.join(",")
    )
}

/// The request lines of one workload (ids increase, keys as described on
/// [`PIPE_WORKLOADS`]).
fn workload_lines(workload: &str, config: &BenchConfig) -> Vec<String> {
    let n = config.requests;
    match workload {
        // Distinct matrices → every request computes. Dimensions vary
        // per request so the keyspace is spread but each job stays small.
        "inline" => (0..n.min(if config.quick { 16 } else { 48 }))
            .map(|r| {
                let a = gen::laplacian_2d(16 + r as Idx, 18);
                format!("{{\"id\":{r},\"matrix\":{},\"seed\":5}}", inline_json(&a))
            })
            .collect(),
        // One big inline matrix repeated: request 0 computes, the rest
        // hit the cache — wire bytes and request decode dominate, which
        // is exactly what the codecs differ on.
        "inline_cached" => {
            let a = gen::laplacian_2d(48, 48);
            let payload = inline_json(&a);
            (0..2 * n)
                .map(|r| format!("{{\"id\":{r},\"matrix\":{payload},\"seed\":5}}"))
                .collect()
        }
        "collection" => (0..n)
            .map(|r| {
                let name = ["laplace2d_00_k20", "arrow_00_n287_b2"][(r % 2) as usize];
                format!("{{\"id\":{r},\"matrix\":{{\"collection\":{name:?}}},\"seed\":3}}")
            })
            .collect(),
        "ping" => (0..8 * n)
            .map(|r| format!("{{\"id\":{r},\"op\":\"ping\"}}"))
            .collect(),
        other => unreachable!("unknown workload {other}"),
    }
}

/// The request lines of one compute-trajectory cell: fresh large 2D
/// Laplacians (distinct dimensions per request, so every request computes)
/// partitioned through an explicit backend. Sized so `medium_grain_build`,
/// `fm_refinement` and `volume_count` dominate the phase profile — the
/// wire carries a few hundred KB but the partitioner does the work.
fn compute_lines(backend: &str, config: &BenchConfig) -> Vec<String> {
    let (count, base) = if config.quick {
        (5u32, 120)
    } else {
        (8u32, 144)
    };
    (0..count)
        .map(|r| {
            let k = (base + r) as Idx;
            let a = gen::laplacian_2d(k, k);
            format!(
                "{{\"id\":{r},\"matrix\":{},\"seed\":7,\"backend\":\"{backend}\"}}",
                inline_json(&a)
            )
        })
        .collect()
}

/// Reads the `compute.phases` block of a previously generated bench
/// document, for `--baseline`: the pre-change tree's kernel profile.
fn load_compute_phases(path: &str) -> Result<Vec<(String, u64, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let document = Json::parse(text.trim()).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let phases = document
        .get("compute")
        .and_then(|c| c.get("phases"))
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: no compute.phases block (not a compute-era document?)"))?;
    phases
        .iter()
        .map(|entry| {
            let phase = entry
                .get("phase")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: compute phase entry without a name"))?;
            let count = entry.get("count").and_then(Json::as_u64).unwrap_or(0);
            let seconds = entry.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
            Ok((phase.to_string(), count, seconds))
        })
        .collect()
}

/// Renders one phase-delta array entry.
fn phase_entry(phase: &str, count: u64, seconds: f64) -> Json {
    obj(vec![
        ("phase", Json::Str(phase.into())),
        ("count", Json::UInt(count)),
        ("seconds", Json::Num(seconds)),
        ("mean_seconds", Json::Num(seconds / count.max(1) as f64)),
    ])
}

/// The `compute` block: per-backend cells, the phase deltas of exactly
/// those cells, the hot-phase fraction, and — when a `--baseline`
/// document was given — the embedded baseline profile plus per-phase
/// speedups against it.
fn compute_json(
    rows: &[Row],
    before: &[(u64, f64)],
    baseline: Option<&[(String, u64, f64)]>,
) -> Json {
    let deltas: Vec<(String, u64, f64)> = mg_obs::PHASES
        .iter()
        .zip(before)
        .map(|(phase, (count_before, seconds_before))| {
            let (count_now, seconds_now) = mg_obs::phase_stats(phase);
            (
                phase.to_string(),
                count_now.saturating_sub(*count_before),
                (seconds_now - seconds_before).max(0.0),
            )
        })
        .collect();
    let total: f64 = deltas.iter().map(|(_, _, s)| s).sum();
    let hot: f64 = deltas
        .iter()
        .filter(|(p, _, _)| GATE_PHASES.contains(&p.as_str()))
        .map(|(_, _, s)| s)
        .sum();
    let mut fields = vec![
        ("workloads", Json::Arr(rows.iter().map(row_json).collect())),
        (
            "requests",
            Json::UInt(rows.iter().map(|r| r.requests).sum()),
        ),
        ("seconds", Json::Num(rows.iter().map(|r| r.seconds).sum())),
        (
            "phases",
            Json::Arr(
                deltas
                    .iter()
                    .map(|(p, c, s)| phase_entry(p, *c, *s))
                    .collect(),
            ),
        ),
        (
            "hot_fraction",
            Json::Num(if total > 0.0 { hot / total } else { 0.0 }),
        ),
    ];
    if let Some(baseline) = baseline {
        fields.push((
            "baseline",
            obj(vec![(
                "phases",
                Json::Arr(
                    baseline
                        .iter()
                        .map(|(p, c, s)| phase_entry(p, *c, *s))
                        .collect(),
                ),
            )]),
        ));
        let improvement: Vec<Json> = deltas
            .iter()
            .filter_map(|(phase, _, seconds)| {
                let (_, _, base_seconds) = baseline.iter().find(|(p, _, _)| p == phase)?;
                let speedup = if *seconds > 1e-12 {
                    (base_seconds / seconds).min(9999.0)
                } else {
                    9999.0
                };
                Some(obj(vec![
                    ("phase", Json::Str(phase.clone())),
                    ("baseline_seconds", Json::Num(*base_seconds)),
                    ("seconds", Json::Num(*seconds)),
                    ("speedup", Json::Num(speedup)),
                ]))
            })
            .collect();
        fields.push(("improvement", Json::Arr(improvement)));
    }
    obj(fields)
}

fn json_script(lines: &[String]) -> Vec<u8> {
    let mut script = Vec::new();
    for line in lines {
        script.extend_from_slice(line.as_bytes());
        script.push(b'\n');
    }
    script
}

fn request_payload(line: &str) -> Vec<u8> {
    parse_request_line(line)
        .ok()
        .and_then(|request| partition_payload(&request))
        .unwrap_or_else(|| json_payload(line))
}

fn binary_script(lines: &[String]) -> Vec<u8> {
    let mut script = format!("{HELLO_BINARY}\n").into_bytes();
    for line in lines {
        script.extend_from_slice(&encode_frame(&request_payload(line)));
    }
    script
}

fn pipe_run(config: &BenchConfig, workload: &str, codec: &'static str, lines: &[String]) -> Row {
    let service = fresh_service(config.threads);
    let script = match codec {
        "json" => json_script(lines),
        _ => binary_script(lines),
    };
    let mut out = Vec::new();
    let start = Instant::now();
    let summary = service.run_session(script.as_slice(), &mut out);
    let seconds = start.elapsed().as_secs_f64();
    service.shutdown_and_join();
    let hello = u64::from(codec == "binary");
    assert_eq!(summary.responses, lines.len() as u64 + hello);
    Row {
        workload: workload.to_string(),
        codec,
        transport: "pipe",
        requests: lines.len() as u64,
        responses: summary.responses - hello,
        seconds,
        bytes_out: script.len() as u64,
        bytes_in: out.len() as u64,
        cache_hits: Some(summary.cache_hits),
        p50_ms: None,
        p99_ms: None,
    }
}

fn batch_run(config: &BenchConfig) -> Row {
    let lines = workload_lines("inline_cached", config);
    let payloads: Vec<Vec<u8>> = lines.iter().map(|line| request_payload(line)).collect();
    let mut script = format!("{HELLO_BINARY}\n").into_bytes();
    script.extend_from_slice(&encode_frame(&batch_payload(&payloads)));

    let service = fresh_service(config.threads);
    let mut out = Vec::new();
    let start = Instant::now();
    let summary = service.run_session(script.as_slice(), &mut out);
    let seconds = start.elapsed().as_secs_f64();
    service.shutdown_and_join();
    assert_eq!(summary.responses, lines.len() as u64 + 1);
    Row {
        workload: "inline_cached_batch".into(),
        codec: "binary",
        transport: "pipe",
        requests: lines.len() as u64,
        responses: summary.responses - 1,
        seconds,
        bytes_out: script.len() as u64,
        bytes_in: out.len() as u64,
        cache_hits: Some(summary.cache_hits),
        p50_ms: None,
        p99_ms: None,
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let index = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[index.min(sorted_ms.len() - 1)]
}

fn tcp_run(
    config: &BenchConfig,
    workload: &str,
    codec: &'static str,
    lines: &[String],
) -> Result<Row, String> {
    let service = fresh_service(config.threads);
    let server = TcpServer::bind(service, "127.0.0.1:0").map_err(|e| format!("bench bind: {e}"))?;
    let mut stream =
        TcpStream::connect(server.local_addr).map_err(|e| format!("bench connect: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut bytes_out = 0u64;
    let mut bytes_in = 0u64;
    if codec == "binary" {
        let hello = format!("{HELLO_BINARY}\n");
        stream
            .write_all(hello.as_bytes())
            .map_err(|e| e.to_string())?;
        bytes_out += hello.len() as u64;
        let mut ack = String::new();
        reader.read_line(&mut ack).map_err(|e| e.to_string())?;
        bytes_in += ack.len() as u64;
    }

    let mut latencies_ms = Vec::with_capacity(lines.len());
    let start = Instant::now();
    for line in lines {
        let buf = match codec {
            "json" => {
                let mut b = line.clone().into_bytes();
                b.push(b'\n');
                b
            }
            _ => encode_frame(&request_payload(line)),
        };
        let t = Instant::now();
        stream.write_all(&buf).map_err(|e| e.to_string())?;
        stream.flush().map_err(|e| e.to_string())?;
        bytes_out += buf.len() as u64;
        if codec == "json" {
            let mut response = String::new();
            reader.read_line(&mut response).map_err(|e| e.to_string())?;
            bytes_in += response.len() as u64;
        } else {
            let mut header = [0u8; 4];
            reader.read_exact(&mut header).map_err(|e| e.to_string())?;
            let len = u32::from_le_bytes(header) as usize;
            let mut payload = vec![0u8; len];
            reader.read_exact(&mut payload).map_err(|e| e.to_string())?;
            assert_eq!(payload[0], KIND_JSON);
            bytes_in += 4 + len as u64;
        }
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let seconds = start.elapsed().as_secs_f64();
    drop(reader);
    drop(stream);
    server.shutdown_and_join();

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    Ok(Row {
        workload: workload.to_string(),
        codec,
        transport: "tcp",
        requests: lines.len() as u64,
        responses: lines.len() as u64,
        seconds,
        bytes_out,
        bytes_in,
        cache_hits: None,
        p50_ms: Some(percentile(&latencies_ms, 0.50)),
        p99_ms: Some(percentile(&latencies_ms, 0.99)),
    })
}

fn routed_run(config: &BenchConfig, codec: &'static str, lines: &[String]) -> Row {
    let threads = config.threads;
    let cluster = LocalCluster::spawn(2, |_| ServiceConfig {
        threads,
        collection: CollectionSpec {
            seed: 11,
            scale: CollectionScale::Smoke,
        },
        ..ServiceConfig::default()
    });
    let router = cluster.router(RouterConfig::default());
    let script = match codec {
        "json" => json_script(lines),
        _ => binary_script(lines),
    };
    let mut out = Vec::new();
    let start = Instant::now();
    let summary = router.run_session(script.as_slice(), &mut out);
    let seconds = start.elapsed().as_secs_f64();
    cluster.shutdown();
    let hello = u64::from(codec == "binary");
    assert_eq!(summary.responses, lines.len() as u64 + hello);
    Row {
        workload: "routed_inline".into(),
        codec,
        transport: "pipe",
        requests: lines.len() as u64,
        responses: summary.responses - hello,
        seconds,
        bytes_out: script.len() as u64,
        bytes_in: out.len() as u64,
        cache_hits: Some(summary.cache_hits),
        p50_ms: None,
        p99_ms: None,
    }
}

fn opt_num(value: Option<f64>) -> Json {
    match value {
        Some(v) => Json::Num(v),
        None => Json::Null,
    }
}

fn row_json(row: &Row) -> Json {
    obj(vec![
        ("workload", Json::Str(row.workload.clone())),
        ("codec", Json::Str(row.codec.into())),
        ("transport", Json::Str(row.transport.into())),
        ("requests", Json::UInt(row.requests)),
        ("responses", Json::UInt(row.responses)),
        ("seconds", Json::Num(row.seconds)),
        ("throughput_rps", Json::Num(row.throughput())),
        ("bytes_out", Json::UInt(row.bytes_out)),
        ("bytes_in", Json::UInt(row.bytes_in)),
        (
            "cache_hits",
            match row.cache_hits {
                Some(hits) => Json::UInt(hits),
                None => Json::Null,
            },
        ),
        ("p50_ms", opt_num(row.p50_ms)),
        ("p99_ms", opt_num(row.p99_ms)),
    ])
}

fn find<'a>(rows: &'a [Row], workload: &str, codec: &str, transport: &str) -> Option<&'a Row> {
    rows.iter()
        .find(|r| r.workload == workload && r.codec == codec && r.transport == transport)
}

/// The codec comparisons CI gates on: per pipe workload, binary/json
/// ratios for bytes-on-wire (request direction) and throughput.
fn comparisons_json(rows: &[Row]) -> Vec<Json> {
    let mut comparisons = Vec::new();
    for &workload in PIPE_WORKLOADS {
        let (Some(json), Some(binary)) = (
            find(rows, workload, "json", "pipe"),
            find(rows, workload, "binary", "pipe"),
        ) else {
            continue;
        };
        comparisons.push(obj(vec![
            ("workload", Json::Str(workload.into())),
            ("transport", Json::Str("pipe".into())),
            ("metric", Json::Str("bytes_out".into())),
            ("json", Json::UInt(json.bytes_out)),
            ("binary", Json::UInt(binary.bytes_out)),
            (
                "binary_over_json",
                Json::Num(binary.bytes_out as f64 / json.bytes_out.max(1) as f64),
            ),
        ]));
        comparisons.push(obj(vec![
            ("workload", Json::Str(workload.into())),
            ("transport", Json::Str("pipe".into())),
            ("metric", Json::Str("throughput_rps".into())),
            ("json", Json::Num(json.throughput())),
            ("binary", Json::Num(binary.throughput())),
            (
                "binary_over_json",
                Json::Num(binary.throughput() / json.throughput().max(1e-9)),
            ),
        ]));
    }
    comparisons
}

/// The per-phase compute breakdown of this run: deltas of the global
/// `mgpart_phase_seconds` histograms (paper Fig. 5) against a snapshot
/// taken before the first measured cell.
fn phases_json(before: &[(u64, f64)]) -> Vec<Json> {
    mg_obs::PHASES
        .iter()
        .zip(before)
        .map(|(phase, (count_before, seconds_before))| {
            let (count_now, seconds_now) = mg_obs::phase_stats(phase);
            let count = count_now.saturating_sub(*count_before);
            let seconds = (seconds_now - seconds_before).max(0.0);
            obj(vec![
                ("phase", Json::Str((*phase).into())),
                ("count", Json::UInt(count)),
                ("seconds", Json::Num(seconds)),
                ("mean_seconds", Json::Num(seconds / count.max(1) as f64)),
            ])
        })
        .collect()
}

fn render_document(config: &BenchConfig, rows: &[Row], phases: Vec<Json>, compute: Json) -> String {
    obj(vec![
        ("schema", Json::Str(SCHEMA.into())),
        ("trajectory", Json::UInt(TRAJECTORY)),
        (
            "config",
            obj(vec![
                ("requests", Json::UInt(config.requests)),
                ("threads", Json::UInt(config.threads as u64)),
                ("quick", Json::Bool(config.quick)),
            ]),
        ),
        ("results", Json::Arr(rows.iter().map(row_json).collect())),
        ("phases", Json::Arr(phases)),
        ("compute", compute),
        ("comparisons", Json::Arr(comparisons_json(rows))),
    ])
    .to_string()
}

fn print_table(rows: &[Row]) {
    println!(
        "{:<20} {:<7} {:<5} {:>8} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "workload", "codec", "wire", "requests", "rps", "bytes_out", "bytes_in", "p50_ms", "p99_ms"
    );
    for row in rows {
        let fmt_ms = |v: Option<f64>| match v {
            Some(v) => format!("{v:.3}"),
            None => "-".into(),
        };
        println!(
            "{:<20} {:<7} {:<5} {:>8} {:>12.0} {:>12} {:>12} {:>9} {:>9}",
            row.workload,
            row.codec,
            row.transport,
            row.requests,
            row.throughput(),
            row.bytes_out,
            row.bytes_in,
            fmt_ms(row.p50_ms),
            fmt_ms(row.p99_ms),
        );
    }
}

// ---------------------------------------------------------------------
// --validate: schema + trajectory gates on a bench document
// ---------------------------------------------------------------------

fn validate_file(path: &str, against: Option<&str>) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let document = Json::parse(text.trim()).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    validate_document(&document).map_err(|e| format!("{path}: {e}"))?;
    if let Some(committed) = against {
        validate_against(&document, committed).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: ok (compute shares within band of {committed})");
    } else {
        println!("{path}: ok");
    }
    Ok(())
}

/// Per-phase seconds of a document's `compute.phases` block.
fn compute_seconds(document: &Json) -> Result<Vec<(String, f64)>, String> {
    let phases = document
        .get("compute")
        .and_then(|c| c.get("phases"))
        .and_then(Json::as_array)
        .ok_or("missing compute.phases block")?;
    Ok(phases
        .iter()
        .filter_map(|entry| {
            let phase = entry.get("phase").and_then(Json::as_str)?;
            let seconds = entry.get("seconds").and_then(Json::as_f64)?;
            Some((phase.to_string(), seconds))
        })
        .collect())
}

/// The `--against` regression gate: compare the fresh document's
/// compute-phase *shares* (seconds / total compute seconds) to the
/// committed trajectory document's shares. Shares are machine-speed
/// independent, so a slow CI runner passes while a kernel that regressed
/// relative to its siblings fails. The band is generous
/// ([`SHARE_BAND_FACTOR`]× + [`SHARE_BAND_FLOOR`]) because speeding one
/// phase up mechanically inflates every other phase's share.
fn validate_against(fresh: &Json, committed_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("reading {committed_path}: {e}"))?;
    let committed =
        Json::parse(text.trim()).map_err(|e| format!("{committed_path}: not valid JSON: {e}"))?;
    let fresh_phases = compute_seconds(fresh)?;
    let committed_phases =
        compute_seconds(&committed).map_err(|e| format!("{committed_path}: {e}"))?;
    let fresh_total: f64 = fresh_phases.iter().map(|(_, s)| s).sum();
    let committed_total: f64 = committed_phases.iter().map(|(_, s)| s).sum();
    if fresh_total <= 0.0 || committed_total <= 0.0 {
        return Err("compute phase totals must be positive on both sides".into());
    }
    for (phase, seconds) in &fresh_phases {
        let committed_seconds = committed_phases
            .iter()
            .find(|(p, _)| p == phase)
            .map(|(_, s)| *s)
            .ok_or_else(|| format!("{committed_path}: no compute phase {phase:?}"))?;
        let share = seconds / fresh_total;
        let committed_share = committed_seconds / committed_total;
        let band = committed_share * SHARE_BAND_FACTOR + SHARE_BAND_FLOOR;
        if share > band {
            return Err(format!(
                "compute phase {phase:?} regressed: share {share:.3} exceeds \
                 committed share {committed_share:.3} band (≤ {band:.3})"
            ));
        }
    }
    Ok(())
}

fn field<'a>(value: &'a Json, name: &str) -> Result<&'a Json, String> {
    value
        .get(name)
        .ok_or_else(|| format!("missing field {name:?}"))
}

fn validate_document(document: &Json) -> Result<(), String> {
    let schema = field(document, "schema")?
        .as_str()
        .ok_or("schema must be a string")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let trajectory = field(document, "trajectory")?
        .as_u64()
        .ok_or("trajectory must be an unsigned integer")?;
    if trajectory != TRAJECTORY {
        return Err(format!("trajectory {trajectory}, expected {TRAJECTORY}"));
    }

    let results = field(document, "results")?
        .as_array()
        .ok_or("results must be an array")?;
    if results.is_empty() {
        return Err("results is empty".into());
    }
    for (index, row) in results.iter().enumerate() {
        let label = || {
            format!(
                "results[{index}] ({})",
                row.get("workload")
                    .and_then(Json::as_str)
                    .unwrap_or("<unnamed>")
            )
        };
        for name in ["workload", "codec", "transport"] {
            field(row, name)?
                .as_str()
                .ok_or_else(|| format!("{}: {name} must be a string", label()))?;
        }
        for name in ["requests", "responses", "bytes_out", "bytes_in"] {
            field(row, name)?
                .as_u64()
                .ok_or_else(|| format!("{}: {name} must be an unsigned integer", label()))?;
        }
        for name in ["seconds", "throughput_rps"] {
            let value = field(row, name)?
                .as_f64()
                .ok_or_else(|| format!("{}: {name} must be a number", label()))?;
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("{}: {name} must be positive, got {value}", label()));
            }
        }
        let requests = row.get("requests").and_then(Json::as_u64).unwrap_or(0);
        let responses = row.get("responses").and_then(Json::as_u64).unwrap_or(0);
        if requests != responses {
            return Err(format!(
                "{}: {requests} requests but {responses} responses",
                label()
            ));
        }
    }
    // Full pipe coverage: every workload measured under both codecs.
    for &workload in PIPE_WORKLOADS {
        for codec in ["json", "binary"] {
            if !results.iter().any(|row| {
                row.get("workload").and_then(Json::as_str) == Some(workload)
                    && row.get("codec").and_then(Json::as_str) == Some(codec)
                    && row.get("transport").and_then(Json::as_str) == Some("pipe")
            }) {
                return Err(format!("missing pipe row for {workload}/{codec}"));
            }
        }
    }

    // The per-phase compute breakdown: all four multilevel phases (paper
    // Fig. 5) must have been observed during the run.
    let phases = field(document, "phases")?
        .as_array()
        .ok_or("phases must be an array")?;
    for required in mg_obs::PHASES {
        let entry = phases
            .iter()
            .find(|p| p.get("phase").and_then(Json::as_str) == Some(required))
            .ok_or_else(|| format!("missing phase entry {required:?}"))?;
        let count = field(entry, "count")?
            .as_u64()
            .ok_or_else(|| format!("phase {required:?}: count must be an unsigned integer"))?;
        if count == 0 {
            return Err(format!("phase {required:?} recorded no observations"));
        }
        for name in ["seconds", "mean_seconds"] {
            let value = field(entry, name)?
                .as_f64()
                .ok_or_else(|| format!("phase {required:?}: {name} must be a number"))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!(
                    "phase {required:?}: {name} must be non-negative, got {value}"
                ));
            }
        }
    }

    // The compute trajectory: per-backend cells present, the gate phases
    // observed, and — for the committed BENCH_9 document, which carries a
    // baseline — the kernel-speedup gate.
    let compute = field(document, "compute")?;
    for &backend in COMPUTE_BACKENDS {
        let name = format!("compute_{backend}");
        if !results
            .iter()
            .any(|row| row.get("workload").and_then(Json::as_str) == Some(name.as_str()))
        {
            return Err(format!("missing compute row for backend {backend}"));
        }
    }
    let compute_phases = field(compute, "phases")?
        .as_array()
        .ok_or("compute.phases must be an array")?;
    for required in GATE_PHASES {
        let entry = compute_phases
            .iter()
            .find(|p| p.get("phase").and_then(Json::as_str) == Some(required))
            .ok_or_else(|| format!("missing compute phase entry {required:?}"))?;
        let count = field(entry, "count")?.as_u64().ok_or_else(|| {
            format!("compute phase {required:?}: count must be an unsigned integer")
        })?;
        if count == 0 {
            return Err(format!(
                "compute phase {required:?} recorded no observations"
            ));
        }
    }
    let hot_fraction = field(compute, "hot_fraction")?
        .as_f64()
        .ok_or("compute.hot_fraction must be a number")?;
    if hot_fraction.is_nan() || hot_fraction < COMPUTE_HOT_MIN {
        return Err(format!(
            "compute workloads are not kernel-bound: hot_fraction {hot_fraction:.3} \
             < {COMPUTE_HOT_MIN} (gate phases must dominate)"
        ));
    }
    if let Some(improvement) = compute.get("improvement").and_then(Json::as_array) {
        let passing = improvement
            .iter()
            .filter(|entry| {
                let phase = entry.get("phase").and_then(Json::as_str).unwrap_or("");
                let speedup = entry.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
                GATE_PHASES.contains(&phase) && speedup >= GATE_SPEEDUP
            })
            .count();
        if passing < GATE_PHASES_REQUIRED {
            return Err(format!(
                "kernel-speedup gate: only {passing} of {GATE_PHASES:?} reached \
                 {GATE_SPEEDUP}× vs baseline (need {GATE_PHASES_REQUIRED})"
            ));
        }
    }

    // The trajectory gates, from the comparisons block.
    let comparisons = field(document, "comparisons")?
        .as_array()
        .ok_or("comparisons must be an array")?;
    let ratio = |workload: &str, metric: &str| -> Result<f64, String> {
        comparisons
            .iter()
            .find(|c| {
                c.get("workload").and_then(Json::as_str) == Some(workload)
                    && c.get("metric").and_then(Json::as_str) == Some(metric)
            })
            .and_then(|c| c.get("binary_over_json").and_then(Json::as_f64))
            .ok_or_else(|| format!("missing comparison {workload}/{metric}"))
    };
    for workload in ["inline", "inline_cached"] {
        let r = ratio(workload, "bytes_out")?;
        if r >= 1.0 {
            return Err(format!(
                "binary does not beat JSON on bytes-on-wire for {workload} (ratio {r:.3})"
            ));
        }
    }
    let r = ratio("inline_cached", "throughput_rps")?;
    if r <= 1.0 {
        return Err(format!(
            "binary does not beat JSON on throughput for inline_cached (ratio {r:.3})"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// --conformance: identical response texts across codecs and threads
// ---------------------------------------------------------------------

/// Splits a response byte stream into texts, tracking the hello switch.
fn response_texts(out: &[u8]) -> Vec<String> {
    let mut texts = Vec::new();
    let mut pos = 0;
    let mut binary = false;
    while pos < out.len() {
        let text = if binary {
            let len = u32::from_le_bytes(out[pos..pos + 4].try_into().unwrap()) as usize;
            assert_eq!(out[pos + 4], KIND_JSON);
            let text = std::str::from_utf8(&out[pos + 5..pos + 4 + len]).unwrap();
            pos += 4 + len;
            text.to_string()
        } else {
            let nl = out[pos..]
                .iter()
                .position(|&b| b == b'\n')
                .expect("unterminated response line");
            let text = std::str::from_utf8(&out[pos..pos + nl])
                .unwrap()
                .to_string();
            pos += nl + 1;
            text
        };
        if text.contains("\"op\":\"hello\"") && text.contains("\"codec\":\"binary\"") {
            binary = true;
        }
        texts.push(text);
    }
    texts
}

fn conformance() -> Result<(), String> {
    // A mixed stream: fresh compute, cache repeats, a collection matrix,
    // pings, a typed error, an assignment request.
    let a = gen::laplacian_2d(20, 17);
    let b = gen::laplacian_2d(9, 9);
    let lines: Vec<String> = vec![
        format!("{{\"id\":1,\"matrix\":{},\"seed\":5}}", inline_json(&a)),
        "{\"id\":2,\"op\":\"ping\"}".into(),
        format!("{{\"id\":3,\"matrix\":{},\"seed\":5}}", inline_json(&a)),
        "{\"id\":4,\"matrix\":{\"collection\":\"laplace2d_00_k20\"},\"seed\":3}".into(),
        "{\"id\":5,\"method\":\"zz\"}".into(),
        format!(
            "{{\"id\":6,\"matrix\":{},\"seed\":5,\"include_partition\":true}}",
            inline_json(&b)
        ),
    ];
    for threads in [1usize, 2, 4] {
        let service = fresh_service(threads);
        let mut json_out = Vec::new();
        service.run_session(json_script(&lines).as_slice(), &mut json_out);
        service.shutdown_and_join();
        let json_texts = response_texts(&json_out);

        let service = fresh_service(threads);
        let mut binary_out = Vec::new();
        service.run_session(binary_script(&lines).as_slice(), &mut binary_out);
        service.shutdown_and_join();
        let binary_texts = response_texts(&binary_out);

        if json_texts != binary_texts[1..] {
            return Err(format!(
                "codec conformance failed at {threads} threads: \
                 JSON and binary response texts differ"
            ));
        }
        println!(
            "conformance ok at {threads} threads ({} responses)",
            lines.len()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_of_one_element_is_that_element() {
        assert_eq!(percentile(&[7.5], 0.50), 7.5);
        assert_eq!(percentile(&[7.5], 0.99), 7.5);
        assert_eq!(percentile(&[7.5], 0.0), 7.5);
        assert_eq!(percentile(&[7.5], 1.0), 7.5);
    }

    #[test]
    fn percentile_of_empty_input_is_zero() {
        assert_eq!(percentile(&[], 0.50), 0.0);
    }

    #[test]
    fn percentile_hits_exact_rank_boundaries() {
        // 1..=100: nearest-rank on (len-1)*q.
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        // (100-1)*0.50 = 49.5 → rounds to index 50 → value 51.
        assert_eq!(percentile(&sorted, 0.50), 51.0);
        // (100-1)*0.99 = 98.01 → index 98 → value 99.
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
    }

    #[test]
    fn percentile_is_clamped_to_the_last_element() {
        let sorted = [1.0, 2.0];
        assert_eq!(percentile(&sorted, 2.0), 2.0);
    }
}

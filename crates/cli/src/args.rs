//! Minimal argument parsing for the CLI (no external dependencies):
//! positionals, `-f value` flags, and boolean `--switches`.

/// Parsed command-line arguments for one subcommand.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    positionals: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

/// Flags that take a value; everything else starting with `-` is a switch.
const VALUE_FLAGS: &[&str] = &[
    "-p",
    "-e",
    "-m",
    "-o",
    "--engine",
    "--backend",
    "--matrices",
    "--seed",
    "--scale",
    "--threads",
    "--runs",
    // serve / request (the service front end):
    "--listen",
    "--queue",
    "--batch",
    "--cache",
    "--collection-scale",
    "--collection-seed",
    "--mtx",
    "--collection",
    "--id",
    "--op",
    "--shard-id",
    // route (the sharding front end):
    "--shards",
    "--window",
    "--heavy-cost",
    "--shard",
    "--replicas",
    "--probe-interval",
    "--read-deadline",
    // request:
    "--timeout",
    // bench (the wire-path benchmark harness):
    "--requests",
    "--validate",
    "--baseline",
    "--against",
    // observability (serve / route / metrics / trace):
    "--metrics-addr",
    "--log-level",
    "--schema",
    "--input",
    "--trace-slow-ms",
    "--out",
];

impl Parsed {
    /// Splits `argv` into positionals, valued flags and switches.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut parsed = Parsed::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if VALUE_FLAGS.contains(&token.as_str()) {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("flag {token} needs a value"))?;
                parsed.flags.push((token.clone(), value.clone()));
                i += 2;
            } else if token.starts_with('-') && token.len() > 1 {
                parsed.switches.push(token.clone());
                i += 1;
            } else {
                parsed.positionals.push(token.clone());
                i += 1;
            }
        }
        Ok(parsed)
    }

    /// The `index`-th positional argument, or an error naming what is
    /// missing.
    pub fn positional(&self, index: usize, what: &str) -> Result<&String, String> {
        self.positionals
            .get(index)
            .ok_or_else(|| format!("missing argument: {what}"))
    }

    /// A valued flag with a default.
    pub fn flag(&self, name: &str, default: &str) -> String {
        self.flag_opt(name).unwrap_or_else(|| default.to_string())
    }

    /// A valued flag, if present.
    pub fn flag_opt(&self, name: &str) -> Option<String> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    }

    /// A valued flag parsed into any `FromStr` type, with a default.
    pub fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flag_opt(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("bad value for {name}: {e}")),
        }
    }

    /// `true` if the boolean switch is present.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn splits_positionals_flags_switches() {
        let p = Parsed::parse(&argv(&["a.mtx", "-p", "4", "--spy", "-e", "0.1"])).unwrap();
        assert_eq!(p.positional(0, "file").unwrap(), "a.mtx");
        assert_eq!(p.flag("-p", "2"), "4");
        assert_eq!(p.flag_parse("-e", 0.03).unwrap(), 0.1);
        assert!(p.has("--spy"));
        assert!(!p.has("--quiet"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let p = Parsed::parse(&argv(&["m.mtx"])).unwrap();
        assert_eq!(p.flag("-m", "mg-ir"), "mg-ir");
        assert_eq!(p.flag_parse("-p", 2u32).unwrap(), 2);
        assert!(p.flag_opt("-o").is_none());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Parsed::parse(&argv(&["-p"])).is_err());
    }

    #[test]
    fn missing_positional_is_an_error() {
        let p = Parsed::parse(&argv(&[])).unwrap();
        assert!(p.positional(0, "matrix file").is_err());
    }

    #[test]
    fn bad_parse_reports_flag_name() {
        let p = Parsed::parse(&argv(&["-p", "many"])).unwrap();
        let err = p.flag_parse("-p", 2u32).unwrap_err();
        assert!(err.contains("-p"));
    }

    #[test]
    fn last_occurrence_wins() {
        let p = Parsed::parse(&argv(&["-m", "lb", "-m", "fg"])).unwrap();
        assert_eq!(p.flag("-m", "mg"), "fg");
    }

    #[test]
    fn serve_and_request_flags_take_values() {
        let p = Parsed::parse(&argv(&[
            "--listen",
            "127.0.0.1:0",
            "--cache",
            "64",
            "--collection-scale",
            "smoke",
            "--op",
            "ping",
        ]))
        .unwrap();
        assert_eq!(p.flag("--listen", ""), "127.0.0.1:0");
        assert_eq!(p.flag_parse("--cache", 128usize).unwrap(), 64);
        assert_eq!(p.flag("--collection-scale", "default"), "smoke");
        assert_eq!(p.flag("--op", "partition"), "ping");
    }

    #[test]
    fn sweep_flags_take_values() {
        let p = Parsed::parse(&argv(&[
            "--scale",
            "smoke",
            "--threads",
            "4",
            "--runs",
            "2",
            "--backend",
            "geometric",
            "--matrices",
            "laplace",
            "--timing",
        ]))
        .unwrap();
        assert_eq!(p.flag("--scale", "default"), "smoke");
        assert_eq!(p.flag_parse("--threads", 0usize).unwrap(), 4);
        assert_eq!(p.flag_parse("--runs", 1u32).unwrap(), 2);
        assert_eq!(p.flag("--backend", "mondriaan"), "geometric");
        assert_eq!(p.flag("--matrices", ""), "laplace");
        assert!(p.has("--timing"));
    }
}

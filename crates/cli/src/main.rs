//! `mgpart` — command-line front end for the medium-grain
//! partitioning library (the role `Mondriaan` plays for the original C
//! implementation).
//!
//! ```text
//! mgpart partition <matrix.mtx> [-p N] [-e EPS] [-m METHOD] [-o out.mtx] [--seed S] [--spy]
//! mgpart analyze   <matrix.mtx>
//! mgpart generate  <family> [size] [-o out.mtx] [--seed S]
//! mgpart volume    <distributed.mtx>
//! mgpart sweep     [--scale S] [--threads N] [--runs N] [-m LIST] [-e LIST] [-o out.jsonl]
//! mgpart help
//! ```

use mg_bench::{run_batch_sweep, BatchSweepConfig};
use mg_collection::{CollectionScale, CollectionSpec};
use mg_core::{recursive_bisection, Method};
use mg_partitioner::PartitionerConfig;
use mg_sparse::{
    bsp_cost, communication_volume, dist_io, gen, io, load_imbalance, spy, spy_partitioned,
    CommunicationReport, Coo, Idx, PatternStats,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

mod args;
use args::Parsed;

const USAGE: &str = "\
mgpart — 2D sparse matrix partitioning (Pelt & Bisseling, IPDPS 2014)

USAGE:
  mgpart partition <matrix.mtx> [options]   bipartition / p-way partition
  mgpart analyze   <matrix.mtx>             pattern statistics + spy plot
  mgpart generate  <family> [size]          write a synthetic matrix
  mgpart volume    <distributed.mtx>        metrics of a stored partition
  mgpart sweep     [options]                batched collection sweep (JSON lines)
  mgpart help

PARTITION OPTIONS:
  -p N          number of parts (default 2; >2 uses recursive bisection)
  -e EPS        load imbalance (default 0.03)
  -m METHOD     mg | mg-ir | lb | lb-ir | fg | fg-ir | rn | cn  (default mg-ir)
  -o FILE       write the distributed matrix (Mondriaan-style format)
  --engine E    mondriaan | patoh  (default mondriaan)
  --seed S      RNG seed (default 2014)
  --spy         render a partition spy plot

SWEEP OPTIONS:
  --scale S     smoke | default | large  (default smoke)
  --threads N   worker threads, 0 = all cores  (default 0)
  --runs N      repetitions per (matrix, method, eps) cell  (default 1)
  -m LIST       comma-separated methods  (default lb,lb-ir,mg,mg-ir,fg,fg-ir)
  -e LIST       comma-separated epsilons  (default 0.03)
  --engine E    mondriaan | patoh  (default mondriaan)
  --seed S      master seed; every cell derives its own stream  (default 2014)
  -o FILE       write JSON lines to FILE instead of stdout
  --timing      append mean wall-clock time to each line (non-deterministic)
  --verify      cross-check every volume through the sharded pipeline
                (instances of 1024+ nonzeros take the parallel kernels)

  Results are bit-identical for any --threads value: each cell is seeded
  from a stable hash of its (matrix, method, eps) key, not sweep order.

GENERATE FAMILIES:
  laplace2d [k]   5-point Laplacian on a k×k grid      (default k = 64)
  laplace3d [k]   7-point Laplacian on a k×k×k grid    (default k = 16)
  rmat [scale]    RMAT power-law, 2^scale vertices     (default scale = 12)
  random [n]      square Erdős–Rényi with diagonal     (default n = 2000)
  gd97b           the paper's Fig 3 demonstration twin
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(command) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    match command.as_str() {
        "partition" => partition(&Parsed::parse(&argv[1..])?),
        "analyze" => analyze(&Parsed::parse(&argv[1..])?),
        "generate" => generate(&Parsed::parse(&argv[1..])?),
        "volume" => volume(&Parsed::parse(&argv[1..])?),
        "sweep" => sweep(&Parsed::parse(&argv[1..])?),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `mgpart help`")),
    }
}

fn method_from_name(name: &str) -> Result<Method, String> {
    Ok(match name {
        "mg" => Method::MediumGrain { refine: false },
        "mg-ir" => Method::MediumGrain { refine: true },
        "lb" => Method::LocalBest { refine: false },
        "lb-ir" => Method::LocalBest { refine: true },
        "fg" => Method::FineGrain { refine: false },
        "fg-ir" => Method::FineGrain { refine: true },
        "rn" => Method::RowNet { refine: false },
        "cn" => Method::ColumnNet { refine: false },
        other => return Err(format!("unknown method {other:?}")),
    })
}

fn engine_from_name(name: &str) -> Result<PartitionerConfig, String> {
    Ok(match name {
        "mondriaan" => PartitionerConfig::mondriaan_like(),
        "patoh" => PartitionerConfig::patoh_like(),
        other => return Err(format!("unknown engine {other:?}")),
    })
}

fn partition(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.positional(0, "matrix file")?;
    let a = io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
    let p: Idx = parsed.flag_parse("-p", 2)?;
    let epsilon: f64 = parsed.flag_parse("-e", 0.03)?;
    let method = method_from_name(&parsed.flag("-m", "mg-ir"))?;
    let engine = engine_from_name(&parsed.flag("--engine", "mondriaan"))?;
    let seed: u64 = parsed.flag_parse("--seed", 2014)?;
    if p < 1 {
        return Err("-p must be at least 1".into());
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let start = std::time::Instant::now();
    let partition = if p == 2 {
        method.bipartition(&a, epsilon, &engine, &mut rng).partition
    } else {
        recursive_bisection(&a, p, epsilon, method, &engine, &mut rng).partition
    };
    let elapsed = start.elapsed().as_secs_f64();

    let report = CommunicationReport::compute(&a, &partition);
    let cost = bsp_cost(&a, &partition);
    println!(
        "{path}: {}x{}, {} nonzeros -> {p} parts with {} in {elapsed:.3}s",
        a.rows(),
        a.cols(),
        a.nnz(),
        method.label()
    );
    println!("  {}", report.render());
    println!(
        "  imbalance {:.4} (eps {epsilon}), BSP cost {} (fan-out {} + fan-in {})",
        load_imbalance(&partition),
        cost.total(),
        cost.fanout_h,
        cost.fanin_h
    );
    if parsed.has("--spy") {
        println!("{}", spy_partitioned(&a, &partition, 72, 36));
    }
    if let Some(out) = parsed.flag_opt("-o") {
        dist_io::write_distributed_file(&a, &partition, &out).map_err(|e| e.to_string())?;
        println!("  written: {out}");
    }
    Ok(())
}

fn analyze(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.positional(0, "matrix file")?;
    let a = io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
    let s = PatternStats::compute(&a);
    println!("{path}:");
    println!("  size           {} x {}", s.rows, s.cols);
    println!("  nonzeros       {}", s.nnz);
    println!("  class          {}", s.class());
    println!("  symmetry       {:.3}", s.pattern_symmetry);
    println!("  density        {:.3e}", s.density());
    println!("  avg row nnz    {:.2}", s.avg_row_nnz);
    println!("  max row/col    {} / {}", s.max_row_nnz, s.max_col_nnz);
    println!("  empty rows     {}", s.empty_rows);
    println!("  empty cols     {}", s.empty_cols);
    println!("  diagonal nnz   {}", s.diagonal_nnz);
    println!("{}", spy(&a, 72, 36));
    Ok(())
}

fn generate(parsed: &Parsed) -> Result<(), String> {
    let family = parsed.positional(0, "generator family")?;
    let seed: u64 = parsed.flag_parse("--seed", 2014)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let size: Option<u64> = match parsed.positional(1, "") {
        Ok(v) => Some(v.parse::<u64>().map_err(|e| format!("bad size: {e}"))?),
        Err(_) => None,
    };
    let a: Coo = match family.as_str() {
        "laplace2d" => {
            let k = size.unwrap_or(64) as Idx;
            gen::laplacian_2d(k, k)
        }
        "laplace3d" => {
            let k = size.unwrap_or(16) as Idx;
            gen::laplacian_3d(k, k, k)
        }
        "rmat" => {
            let scale = size.unwrap_or(12) as u32;
            gen::rmat(scale, 8usize << scale, 0.57, 0.19, 0.19, &mut rng)
        }
        "random" => {
            let n = size.unwrap_or(2000) as Idx;
            gen::erdos_renyi_square(n, 8 * n as usize, &mut rng)
        }
        "gd97b" => mg_collection::gd97b_twin(),
        other => return Err(format!("unknown family {other:?}")),
    };
    let default_name = format!("{family}.mtx");
    let out = parsed.flag("-o", &default_name);
    io::write_matrix_market_file(&a, &out).map_err(|e| e.to_string())?;
    println!(
        "{out}: {}x{}, {} nonzeros ({})",
        a.rows(),
        a.cols(),
        a.nnz(),
        PatternStats::compute(&a).class()
    );
    Ok(())
}

fn sweep(parsed: &Parsed) -> Result<(), String> {
    let scale = match parsed.flag("--scale", "smoke").as_str() {
        "smoke" => CollectionScale::Smoke,
        "default" => CollectionScale::Default,
        "large" => CollectionScale::Large,
        other => return Err(format!("unknown scale {other:?} (smoke|default|large)")),
    };
    let threads: usize = parsed.flag_parse("--threads", 0)?;
    let runs: u32 = parsed.flag_parse("--runs", 1)?;
    let seed: u64 = parsed.flag_parse("--seed", 2014)?;
    let engine = engine_from_name(&parsed.flag("--engine", "mondriaan"))?;
    let methods: Vec<Method> = match parsed.flag_opt("-m") {
        None => Method::paper_set().to_vec(),
        Some(list) => list
            .split(',')
            .map(method_from_name)
            .collect::<Result<_, _>>()?,
    };
    let epsilons: Vec<f64> = match parsed.flag_opt("-e") {
        None => vec![0.03],
        Some(list) => list
            .split(',')
            .map(|e| {
                let value = e
                    .parse::<f64>()
                    .map_err(|err| format!("bad epsilon {e:?}: {err}"))?;
                if !value.is_finite() || value < 0.0 {
                    return Err(format!("epsilon {e:?} must be finite and non-negative"));
                }
                Ok(value)
            })
            .collect::<Result<_, _>>()?,
    };
    if methods.is_empty() || epsilons.is_empty() {
        return Err("sweep needs at least one method and one epsilon".into());
    }

    let mut config = BatchSweepConfig::paper(CollectionSpec { seed, scale }, engine, runs);
    config.methods = methods;
    config.epsilons = epsilons;
    config.seed = seed;
    config.threads = threads;
    config.verify = parsed.has("--verify");

    let start = std::time::Instant::now();
    let records = run_batch_sweep(&config);
    let timing = parsed.has("--timing");
    let mut out = String::new();
    for record in &records {
        out.push_str(&if timing {
            record.json_line_with_timing()
        } else {
            record.json_line()
        });
        out.push('\n');
    }
    match parsed.flag_opt("-o") {
        Some(path) => {
            std::fs::write(&path, &out).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "{path}: {} cells ({} matrices) in {:.1}s",
                records.len(),
                records
                    .iter()
                    .map(|r| &r.matrix)
                    .collect::<std::collections::HashSet<_>>()
                    .len(),
                start.elapsed().as_secs_f64()
            );
        }
        None => print!("{out}"),
    }
    Ok(())
}

fn volume(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.positional(0, "distributed matrix file")?;
    let (a, partition) = dist_io::read_distributed_file(path).map_err(|e| e.to_string())?;
    let report = CommunicationReport::compute(&a, &partition);
    let cost = bsp_cost(&a, &partition);
    println!(
        "{path}: {}x{}, {} nonzeros, {} parts",
        a.rows(),
        a.cols(),
        a.nnz(),
        partition.num_parts()
    );
    println!("  {}", report.render());
    println!("  volume check: {}", communication_volume(&a, &partition));
    println!(
        "  imbalance {:.4}, BSP cost {}",
        load_imbalance(&partition),
        cost.total()
    );
    Ok(())
}

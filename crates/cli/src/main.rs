//! `mgpart` — command-line front end for the medium-grain
//! partitioning library (the role `Mondriaan` plays for the original C
//! implementation).
//!
//! ```text
//! mgpart partition <matrix.mtx> [-p N] [-e EPS] [-m METHOD] [-o out.mtx] [--seed S] [--spy]
//! mgpart analyze   <matrix.mtx>
//! mgpart generate  <family> [size] [-o out.mtx] [--seed S]
//! mgpart volume    <distributed.mtx>
//! mgpart help
//! ```

use mg_core::{recursive_bisection, Method};
use mg_partitioner::PartitionerConfig;
use mg_sparse::{
    bsp_cost, communication_volume, dist_io, gen, io, load_imbalance, spy, spy_partitioned,
    CommunicationReport, Coo, Idx, PatternStats,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

mod args;
use args::Parsed;

const USAGE: &str = "\
mgpart — 2D sparse matrix partitioning (Pelt & Bisseling, IPDPS 2014)

USAGE:
  mgpart partition <matrix.mtx> [options]   bipartition / p-way partition
  mgpart analyze   <matrix.mtx>             pattern statistics + spy plot
  mgpart generate  <family> [size]          write a synthetic matrix
  mgpart volume    <distributed.mtx>        metrics of a stored partition
  mgpart help

PARTITION OPTIONS:
  -p N          number of parts (default 2; >2 uses recursive bisection)
  -e EPS        load imbalance (default 0.03)
  -m METHOD     mg | mg-ir | lb | lb-ir | fg | fg-ir | rn | cn  (default mg-ir)
  -o FILE       write the distributed matrix (Mondriaan-style format)
  --engine E    mondriaan | patoh  (default mondriaan)
  --seed S      RNG seed (default 2014)
  --spy         render a partition spy plot

GENERATE FAMILIES:
  laplace2d [k]   5-point Laplacian on a k×k grid      (default k = 64)
  laplace3d [k]   7-point Laplacian on a k×k×k grid    (default k = 16)
  rmat [scale]    RMAT power-law, 2^scale vertices     (default scale = 12)
  random [n]      square Erdős–Rényi with diagonal     (default n = 2000)
  gd97b           the paper's Fig 3 demonstration twin
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(command) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    match command.as_str() {
        "partition" => partition(&Parsed::parse(&argv[1..])?),
        "analyze" => analyze(&Parsed::parse(&argv[1..])?),
        "generate" => generate(&Parsed::parse(&argv[1..])?),
        "volume" => volume(&Parsed::parse(&argv[1..])?),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `mgpart help`")),
    }
}

fn method_from_name(name: &str) -> Result<Method, String> {
    Ok(match name {
        "mg" => Method::MediumGrain { refine: false },
        "mg-ir" => Method::MediumGrain { refine: true },
        "lb" => Method::LocalBest { refine: false },
        "lb-ir" => Method::LocalBest { refine: true },
        "fg" => Method::FineGrain { refine: false },
        "fg-ir" => Method::FineGrain { refine: true },
        "rn" => Method::RowNet { refine: false },
        "cn" => Method::ColumnNet { refine: false },
        other => return Err(format!("unknown method {other:?}")),
    })
}

fn engine_from_name(name: &str) -> Result<PartitionerConfig, String> {
    Ok(match name {
        "mondriaan" => PartitionerConfig::mondriaan_like(),
        "patoh" => PartitionerConfig::patoh_like(),
        other => return Err(format!("unknown engine {other:?}")),
    })
}

fn partition(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.positional(0, "matrix file")?;
    let a = io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
    let p: Idx = parsed.flag_parse("-p", 2)?;
    let epsilon: f64 = parsed.flag_parse("-e", 0.03)?;
    let method = method_from_name(&parsed.flag("-m", "mg-ir"))?;
    let engine = engine_from_name(&parsed.flag("--engine", "mondriaan"))?;
    let seed: u64 = parsed.flag_parse("--seed", 2014)?;
    if p < 1 {
        return Err("-p must be at least 1".into());
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let start = std::time::Instant::now();
    let partition = if p == 2 {
        method.bipartition(&a, epsilon, &engine, &mut rng).partition
    } else {
        recursive_bisection(&a, p, epsilon, method, &engine, &mut rng).partition
    };
    let elapsed = start.elapsed().as_secs_f64();

    let report = CommunicationReport::compute(&a, &partition);
    let cost = bsp_cost(&a, &partition);
    println!(
        "{path}: {}x{}, {} nonzeros -> {p} parts with {} in {elapsed:.3}s",
        a.rows(),
        a.cols(),
        a.nnz(),
        method.label()
    );
    println!("  {}", report.render());
    println!(
        "  imbalance {:.4} (eps {epsilon}), BSP cost {} (fan-out {} + fan-in {})",
        load_imbalance(&partition),
        cost.total(),
        cost.fanout_h,
        cost.fanin_h
    );
    if parsed.has("--spy") {
        println!("{}", spy_partitioned(&a, &partition, 72, 36));
    }
    if let Some(out) = parsed.flag_opt("-o") {
        dist_io::write_distributed_file(&a, &partition, &out).map_err(|e| e.to_string())?;
        println!("  written: {out}");
    }
    Ok(())
}

fn analyze(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.positional(0, "matrix file")?;
    let a = io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
    let s = PatternStats::compute(&a);
    println!("{path}:");
    println!("  size           {} x {}", s.rows, s.cols);
    println!("  nonzeros       {}", s.nnz);
    println!("  class          {}", s.class());
    println!("  symmetry       {:.3}", s.pattern_symmetry);
    println!("  density        {:.3e}", s.density());
    println!("  avg row nnz    {:.2}", s.avg_row_nnz);
    println!("  max row/col    {} / {}", s.max_row_nnz, s.max_col_nnz);
    println!("  empty rows     {}", s.empty_rows);
    println!("  empty cols     {}", s.empty_cols);
    println!("  diagonal nnz   {}", s.diagonal_nnz);
    println!("{}", spy(&a, 72, 36));
    Ok(())
}

fn generate(parsed: &Parsed) -> Result<(), String> {
    let family = parsed.positional(0, "generator family")?;
    let seed: u64 = parsed.flag_parse("--seed", 2014)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let size: Option<u64> = match parsed.positional(1, "") {
        Ok(v) => Some(v.parse::<u64>().map_err(|e| format!("bad size: {e}"))?),
        Err(_) => None,
    };
    let a: Coo = match family.as_str() {
        "laplace2d" => {
            let k = size.unwrap_or(64) as Idx;
            gen::laplacian_2d(k, k)
        }
        "laplace3d" => {
            let k = size.unwrap_or(16) as Idx;
            gen::laplacian_3d(k, k, k)
        }
        "rmat" => {
            let scale = size.unwrap_or(12) as u32;
            gen::rmat(scale, 8usize << scale, 0.57, 0.19, 0.19, &mut rng)
        }
        "random" => {
            let n = size.unwrap_or(2000) as Idx;
            gen::erdos_renyi_square(n, 8 * n as usize, &mut rng)
        }
        "gd97b" => mg_collection::gd97b_twin(),
        other => return Err(format!("unknown family {other:?}")),
    };
    let default_name = format!("{family}.mtx");
    let out = parsed.flag("-o", &default_name);
    io::write_matrix_market_file(&a, &out).map_err(|e| e.to_string())?;
    println!(
        "{out}: {}x{}, {} nonzeros ({})",
        a.rows(),
        a.cols(),
        a.nnz(),
        PatternStats::compute(&a).class()
    );
    Ok(())
}

fn volume(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.positional(0, "distributed matrix file")?;
    let (a, partition) = dist_io::read_distributed_file(path).map_err(|e| e.to_string())?;
    let report = CommunicationReport::compute(&a, &partition);
    let cost = bsp_cost(&a, &partition);
    println!(
        "{path}: {}x{}, {} nonzeros, {} parts",
        a.rows(),
        a.cols(),
        a.nnz(),
        partition.num_parts()
    );
    println!("  {}", report.render());
    println!("  volume check: {}", communication_volume(&a, &partition));
    println!(
        "  imbalance {:.4}, BSP cost {}",
        load_imbalance(&partition),
        cost.total()
    );
    Ok(())
}

//! `mgpart` — command-line front end for the medium-grain
//! partitioning library (the role `Mondriaan` plays for the original C
//! implementation).
//!
//! ```text
//! mgpart partition <matrix.mtx> [-p N] [-e EPS] [-m METHOD] [-o out.mtx] [--seed S] [--spy]
//! mgpart analyze   <matrix.mtx>
//! mgpart generate  <family> [size] [-o out.mtx] [--seed S]
//! mgpart volume    <distributed.mtx>
//! mgpart sweep     [--scale S] [--threads N] [--runs N] [-m LIST] [-e LIST] [-o out.jsonl]
//! mgpart serve     [--listen ADDR] [--threads N] [--cache N] ...
//! mgpart request   [ADDR] [--mtx FILE | --collection NAME] [-m METHOD] ...
//! mgpart help
//! ```

use mg_bench::{run_batch_sweep, BatchSweepConfig};
use mg_collection::{CollectionScale, CollectionSpec};
use mg_core::service::ErrorCode;
use mg_core::{
    all_backends, parse_backend, recursive_bisection_backend, Granularity, Method,
    PartitionBackend, DEFAULT_BACKEND,
};
use mg_router::{Router, RouterConfig, RouterTcpServer, Topology};
use mg_server::json::obj;
use mg_server::{error_response, serve_stdio, Json, Service, ServiceConfig, TcpServer};
use mg_sparse::{
    bsp_cost, communication_volume, dist_io, gen, io, load_imbalance, spy, spy_partitioned,
    CommunicationReport, Coo, Idx, PatternStats,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

mod args;
mod bench;
use args::Parsed;

const USAGE: &str = "\
mgpart — 2D sparse matrix partitioning (Pelt & Bisseling, IPDPS 2014)

USAGE:
  mgpart partition <matrix.mtx> [options]   bipartition / p-way partition
  mgpart analyze   <matrix.mtx>             pattern statistics + spy plot
  mgpart generate  <family> [size]          write a synthetic matrix
  mgpart volume    <distributed.mtx>        metrics of a stored partition
  mgpart backends                           list registered partition backends
  mgpart sweep     [options]                batched collection sweep (JSON lines)
  mgpart serve     [options]                streaming partition service (JSON lines)
  mgpart route     --shards LIST [options]  sharding front end over mg-server shards
  mgpart request   [ADDR] [options]         build / send one service request
  mgpart bench     [options]                wire-path benchmark (BENCH trajectory)
  mgpart metrics   <ADDR> [--schema FILE]   scrape a --metrics-addr endpoint
  mgpart trace     <ADDR>... [options]      scrape /trace endpoints (Perfetto JSON)
  mgpart help

GLOBAL OPTIONS:
  --log-level L   error | warn | info | debug | trace  (default info; the
                  MGPART_LOG environment variable sets the same thing).
                  Diagnostics are structured JSON lines on stderr; stdout
                  carries only protocol responses and command output.

PARTITION OPTIONS:
  -p N          number of parts (default 2; >2 uses recursive bisection)
  -e EPS        load imbalance (default 0.03)
  -m METHOD     mg | mg-ir | lb | lb-ir | fg | fg-ir | rn | cn  (default mg-ir)
  -o FILE       write the distributed matrix (Mondriaan-style format)
  --backend B   mondriaan | patoh | coarse-grain | geometric  (default mondriaan;
                --engine is accepted as an alias)
  --seed S      RNG seed (default 2014)
  --spy         render a partition spy plot

SWEEP OPTIONS:
  --scale S     smoke | default | large  (default smoke)
  --threads N   worker threads, 0 = all cores  (default 0)
  --runs N      repetitions per (matrix, method, eps) cell  (default 1)
  -m LIST       comma-separated methods  (default lb,lb-ir,mg,mg-ir,fg,fg-ir)
  -e LIST       comma-separated epsilons  (default 0.03)
  --backend B   backend every cell runs on  (default mondriaan)
  --matrices L  comma-separated name substrings; keep matching matrices only.
                A filter that matches nothing is an error, not an empty sweep.
  --seed S      master seed; every cell derives its own stream  (default 2014)
  -o FILE       write JSON lines to FILE instead of stdout
  --timing      append mean wall-clock time to each line (non-deterministic)
  --verify      cross-check every volume through the sharded pipeline
                (instances of 1024+ nonzeros take the parallel kernels)

  Results are bit-identical for any --threads value: each cell is seeded
  from a stable hash of its (backend, matrix, method, eps) key, not sweep
  order.

SERVE OPTIONS (protocol: crates/server/PROTOCOL.md):
  --listen ADDR TCP listen address (e.g. 127.0.0.1:7077; port 0 = ephemeral);
                omit for stdio pipe mode (requests on stdin, responses on stdout)
  --threads N   worker threads of the batch pool, 0 = all cores  (default 0)
  --batch N     micro-batch size handed to the pool  (default 32)
  --queue N     bounded submission queue; full = backpressure  (default 256)
  --cache N     LRU response-cache entries, 0 = off  (default 128)
  --seed S      master seed for requests without one  (default 2014)
  --backend B   default backend for requests without a \"backend\" field
                (default mondriaan)
  --collection-scale S   collection served to {\"collection\": name} requests
                         (smoke | default | large, default smoke)
  --collection-seed S    seed of that collection  (default 11)
  --timing      append non-deterministic time_ms to computed responses
  --shard-id ID diagnostic shard tag added to stats/error responses
                (for shards behind mgpart route; omit to stay untagged)
  --metrics-addr HOST:PORT   serve a Prometheus-style text snapshot of the
                metrics registry on a side TCP port (out-of-band: never
                touches the protocol stream; scrape with `mgpart metrics`).
                The same endpoint serves collected spans on its /trace
                route (scrape with `mgpart trace`)
  --trace-slow-ms N   slow-request trace sampler: record a trace for every
                untraced partition request that takes at least N ms
                (0 = every request). Explicitly traced requests are
                always recorded; responses are byte-identical either way

ROUTE OPTIONS (semantics: crates/server/PROTOCOL.md, \"Routing\"):
  --shards LIST comma-separated shard specs [id=]host:port[*capacity];
                ids default to s0,s1,...; capacities (default 1) weight
                the rendezvous placement. Zero shards, duplicate ids or
                duplicate addresses are typed config errors.
  --listen ADDR TCP listen address; omit for stdio pipe mode
  --cache N     router-level LRU response cache entries, 0 = off  (default 128)
  --window N    max in-flight requests per shard connection  (default 64)
  --backend B   backend assumed for cost estimation when requests carry
                no backend field  (default mondriaan; match the shards')
  --heavy-cost C  estimated-cost threshold that biases placement of
                  expensive jobs toward high-capacity shards (default 10000000)
  --replicas R  replication factor: each key's top-R rendezvous ranks form
                its replica set; requests go to the best-ranked live
                replica and fail over down the ranking on shard death
                (default 1 = single-owner placement, prober disabled)
  --probe-interval S  seconds between background health probes (ping per
                      shard; only runs with --replicas > 1; default 0.5)
  --read-deadline S   seconds a forwarded request may stay unanswered
                      before its replica is declared dead and the request
                      fails over (default: wait forever)
  --metrics-addr HOST:PORT   same side-channel metrics endpoint as serve,
                      with the router families (dispatches, failovers,
                      probe transitions, replica liveness) always exposed
  --trace-slow-ms N   same slow-request trace sampler as serve; sampled
                      requests are forwarded with a propagated trace
                      context, so shard-side spans land in the shards'
                      own /trace collectors

REQUEST OPTIONS:
  ADDR          server address; omit with --print to just emit the JSON line
  --mtx FILE    matrix payload from a Matrix Market file
  --collection NAME      ask for a named collection matrix instead
  --inline      convert --mtx FILE to inline COO triplets (exercises the
                third payload kind)
  -m METHOD     method name  (default mg-ir)
  --backend B   request an explicit backend  (omitted = server default)
  -e EPS        load imbalance  (default 0.03)
  --seed S      request seed (optional)
  --id ID       correlation id echoed by the server
  --op OP       partition | ping | stats | shutdown  (default partition)
  --shard ID    address a stats request to one shard of a router topology
  --include-partition    ask for the full per-nonzero assignment
  --timeout S   read deadline in seconds; a server that accepts the
                connection but never answers yields a typed
                request_timeout error line and a nonzero exit
                (default: wait forever)
  --trace       stamp a fresh trace context onto a partition request (the
                trace id is logged to stderr); scrape the server's /trace
                route afterwards to collect the spans
  --print       print the request line instead of sending it

BENCH OPTIONS (schema: mgpart-bench/v1; trajectory files: BENCH_<n>.json):
  --requests N  base request count per workload  (default 96; --quick 24)
  --threads N   worker threads of each measured service, 0 = all cores
  --quick       smaller counts for CI smoke runs
  --json        print the machine-readable JSON document to stdout
  -o FILE       write the JSON document to FILE
  --baseline F  embed the compute phases of a previously generated bench
                document and record per-phase speedups against it in the
                compute block
  --validate F  schema-check a bench document and enforce the trajectory
                gates (binary beats JSON on request bytes for inline-COO
                workloads and on throughput for the decode-bound cached
                workload; compute workloads kernel-bound; ≥1.3× speedup
                on 2 of 3 hot phases when a baseline is embedded);
                nonzero exit on violation
  --against F   with --validate: also compare the document's compute-phase
                shares to committed trajectory file F within a tolerance
                band (machine-speed independent regression gate)
  --conformance run one mixed stream through both codecs at 1/2/4 worker
                threads and require byte-identical response texts

METRICS OPTIONS (schema: crates/obs/metrics.schema):
  ADDR          a --metrics-addr endpoint to scrape; the snapshot is
                printed to stdout
  --input FILE  validate a saved exposition snapshot instead of scraping
  --schema FILE also validate the snapshot: every family and sample must
                match the declared names/kinds; nonzero exit on mismatch

TRACE OPTIONS:
  ADDR...       one or more --metrics-addr endpoints; their /trace routes
                are scraped and merged into one Chrome-trace-event
                document (each endpoint becomes its own pid/process
                track), printed to stdout. Load it at ui.perfetto.dev or
                chrome://tracing.
  --out FILE    write the merged document to FILE instead of stdout
  --report      also render a human-readable summary to stdout: the span
                tree per trace, request-latency p50/p99, and per-phase
                time shares (the paper's Fig. 5 breakdown)

GENERATE FAMILIES:
  laplace2d [k]   5-point Laplacian on a k×k grid      (default k = 64)
  laplace3d [k]   7-point Laplacian on a k×k×k grid    (default k = 16)
  rmat [scale]    RMAT power-law, 2^scale vertices     (default scale = 12)
  random [n]      square Erdős–Rényi with diagonal     (default n = 2000)
  gd97b           the paper's Fig 3 demonstration twin
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            mg_obs::log::error("fatal", &[("message", message.as_str().into())]);
            ExitCode::FAILURE
        }
    }
}

/// Applies `MGPART_LOG`, then a `--log-level` flag anywhere on the
/// command line (the flag wins).
fn init_logging(argv: &[String]) -> Result<(), String> {
    mg_obs::log::init_from_env();
    if let Some(at) = argv.iter().position(|a| a == "--log-level") {
        let value = argv
            .get(at + 1)
            .ok_or("flag --log-level needs a value".to_string())?;
        let level = mg_obs::log::parse_level(value)
            .ok_or_else(|| format!("unknown log level {value:?} (error|warn|info|debug|trace)"))?;
        mg_obs::log::set_level(level);
    }
    Ok(())
}

fn run(argv: &[String]) -> Result<(), String> {
    init_logging(argv)?;
    // `--log-level` is global: legal before the subcommand too, so drop
    // the pair before dispatch (subcommand parsers tolerate it inline).
    let argv: Vec<String> = {
        let mut kept = Vec::with_capacity(argv.len());
        let mut skip = false;
        for arg in argv {
            if skip {
                skip = false;
            } else if arg == "--log-level" {
                skip = true;
            } else {
                kept.push(arg.clone());
            }
        }
        kept
    };
    let argv = &argv[..];
    let Some(command) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    match command.as_str() {
        "partition" => partition(&Parsed::parse(&argv[1..])?),
        "analyze" => analyze(&Parsed::parse(&argv[1..])?),
        "generate" => generate(&Parsed::parse(&argv[1..])?),
        "volume" => volume(&Parsed::parse(&argv[1..])?),
        "backends" => backends(),
        "sweep" => sweep(&Parsed::parse(&argv[1..])?),
        "serve" => serve(&Parsed::parse(&argv[1..])?),
        "route" => route(&Parsed::parse(&argv[1..])?),
        "request" => request(&Parsed::parse(&argv[1..])?),
        "bench" => bench::bench(&Parsed::parse(&argv[1..])?),
        "metrics" => metrics(&Parsed::parse(&argv[1..])?),
        "trace" => trace_cmd(&Parsed::parse(&argv[1..])?),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `mgpart help`")),
    }
}

fn scale_from_name(name: &str) -> Result<CollectionScale, String> {
    Ok(match name {
        "smoke" => CollectionScale::Smoke,
        "default" => CollectionScale::Default,
        "large" => CollectionScale::Large,
        other => return Err(format!("unknown scale {other:?} (smoke|default|large)")),
    })
}

/// Resolves the requested backend: `--backend` is the canonical flag,
/// `--engine` the historical alias (the two original backends *are* the
/// old engine presets, so every old invocation keeps working).
fn backend_from_flags(parsed: &Parsed) -> Result<&'static dyn PartitionBackend, String> {
    let name = parsed
        .flag_opt("--backend")
        .or_else(|| parsed.flag_opt("--engine"))
        .unwrap_or_else(|| DEFAULT_BACKEND.to_string());
    parse_backend(&name)
}

fn backends() -> Result<(), String> {
    println!(
        "{:<14} {:<12} {:<7} {:<6} {:<5} description",
        "name", "granularity", "model", "seed", "geom"
    );
    for backend in all_backends() {
        let caps = backend.capabilities();
        println!(
            "{:<14} {:<12} {:<7} {:<6} {:<5} {}",
            backend.name(),
            match caps.granularity {
                Granularity::Nonzero => "nonzero",
                Granularity::RowOrColumn => "row/column",
            },
            if caps.honors_model { "full" } else { "ir-only" },
            caps.seed_sensitive,
            caps.uses_geometry,
            backend.description()
        );
    }
    println!("\ndefault: {DEFAULT_BACKEND}");
    Ok(())
}

fn partition(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.positional(0, "matrix file")?;
    let a = io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
    let p: Idx = parsed.flag_parse("-p", 2)?;
    let epsilon: f64 = parsed.flag_parse("-e", 0.03)?;
    let method = Method::parse_name(&parsed.flag("-m", "mg-ir"))?;
    let backend = backend_from_flags(parsed)?;
    let seed: u64 = parsed.flag_parse("--seed", 2014)?;
    if p < 1 {
        return Err("-p must be at least 1".into());
    }

    let start = std::time::Instant::now();
    let partition = if p == 2 {
        backend.bipartition(&a, method, epsilon, seed).partition
    } else {
        recursive_bisection_backend(&a, p, epsilon, method, backend, seed).partition
    };
    let elapsed = start.elapsed().as_secs_f64();

    let report = CommunicationReport::compute(&a, &partition);
    let cost = bsp_cost(&a, &partition);
    println!(
        "{path}: {}x{}, {} nonzeros -> {p} parts with {} on {} in {elapsed:.3}s",
        a.rows(),
        a.cols(),
        a.nnz(),
        method.label(),
        backend.name()
    );
    println!("  {}", report.render());
    println!(
        "  imbalance {:.4} (eps {epsilon}), BSP cost {} (fan-out {} + fan-in {})",
        load_imbalance(&partition),
        cost.total(),
        cost.fanout_h,
        cost.fanin_h
    );
    if parsed.has("--spy") {
        println!("{}", spy_partitioned(&a, &partition, 72, 36));
    }
    if let Some(out) = parsed.flag_opt("-o") {
        dist_io::write_distributed_file(&a, &partition, &out).map_err(|e| e.to_string())?;
        println!("  written: {out}");
    }
    Ok(())
}

fn analyze(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.positional(0, "matrix file")?;
    let a = io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
    let s = PatternStats::compute(&a);
    println!("{path}:");
    println!("  size           {} x {}", s.rows, s.cols);
    println!("  nonzeros       {}", s.nnz);
    println!("  class          {}", s.class());
    println!("  symmetry       {:.3}", s.pattern_symmetry);
    println!("  density        {:.3e}", s.density());
    println!("  avg row nnz    {:.2}", s.avg_row_nnz);
    println!("  max row/col    {} / {}", s.max_row_nnz, s.max_col_nnz);
    println!("  empty rows     {}", s.empty_rows);
    println!("  empty cols     {}", s.empty_cols);
    println!("  diagonal nnz   {}", s.diagonal_nnz);
    println!("{}", spy(&a, 72, 36));
    Ok(())
}

fn generate(parsed: &Parsed) -> Result<(), String> {
    let family = parsed.positional(0, "generator family")?;
    let seed: u64 = parsed.flag_parse("--seed", 2014)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let size: Option<u64> = match parsed.positional(1, "") {
        Ok(v) => Some(v.parse::<u64>().map_err(|e| format!("bad size: {e}"))?),
        Err(_) => None,
    };
    let a: Coo = match family.as_str() {
        "laplace2d" => {
            let k = size.unwrap_or(64) as Idx;
            gen::laplacian_2d(k, k)
        }
        "laplace3d" => {
            let k = size.unwrap_or(16) as Idx;
            gen::laplacian_3d(k, k, k)
        }
        "rmat" => {
            let scale = size.unwrap_or(12) as u32;
            gen::rmat(scale, 8usize << scale, 0.57, 0.19, 0.19, &mut rng)
        }
        "random" => {
            let n = size.unwrap_or(2000) as Idx;
            gen::erdos_renyi_square(n, 8 * n as usize, &mut rng)
        }
        "gd97b" => mg_collection::gd97b_twin(),
        other => return Err(format!("unknown family {other:?}")),
    };
    let default_name = format!("{family}.mtx");
    let out = parsed.flag("-o", &default_name);
    io::write_matrix_market_file(&a, &out).map_err(|e| e.to_string())?;
    println!(
        "{out}: {}x{}, {} nonzeros ({})",
        a.rows(),
        a.cols(),
        a.nnz(),
        PatternStats::compute(&a).class()
    );
    Ok(())
}

fn sweep(parsed: &Parsed) -> Result<(), String> {
    let scale = scale_from_name(&parsed.flag("--scale", "smoke"))?;
    let threads: usize = parsed.flag_parse("--threads", 0)?;
    let runs: u32 = parsed.flag_parse("--runs", 1)?;
    let seed: u64 = parsed.flag_parse("--seed", 2014)?;
    let backend = backend_from_flags(parsed)?;
    let methods: Vec<Method> = match parsed.flag_opt("-m") {
        None => Method::paper_set().to_vec(),
        Some(list) => list
            .split(',')
            .map(Method::parse_name)
            .collect::<Result<_, _>>()?,
    };
    let epsilons: Vec<f64> = match parsed.flag_opt("-e") {
        None => vec![0.03],
        Some(list) => list
            .split(',')
            .map(|e| {
                let value = e
                    .parse::<f64>()
                    .map_err(|err| format!("bad epsilon {e:?}: {err}"))?;
                if !value.is_finite() || value < 0.0 {
                    return Err(format!("epsilon {e:?} must be finite and non-negative"));
                }
                Ok(value)
            })
            .collect::<Result<_, _>>()?,
    };
    if methods.is_empty() || epsilons.is_empty() {
        return Err("sweep needs at least one method and one epsilon".into());
    }
    let matrices: Option<Vec<String>> = parsed.flag_opt("--matrices").map(|list| {
        list.split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()
    });

    let mut config = BatchSweepConfig::paper(CollectionSpec { seed, scale }, backend.name(), runs);
    config.methods = methods;
    config.epsilons = epsilons;
    config.matrices = matrices;
    config.seed = seed;
    config.threads = threads;
    config.verify = parsed.has("--verify");

    let start = std::time::Instant::now();
    // A sweep that expands to zero jobs (e.g. a --matrices filter that
    // matches nothing) is a typed setup error and a nonzero exit — never
    // a silent empty success.
    let records = run_batch_sweep(&config).map_err(|e| e.to_string())?;
    let timing = parsed.has("--timing");
    let mut out = String::new();
    for record in &records {
        out.push_str(&if timing {
            record.json_line_with_timing()
        } else {
            record.json_line()
        });
        out.push('\n');
    }
    match parsed.flag_opt("-o") {
        Some(path) => {
            std::fs::write(&path, &out).map_err(|e| format!("writing {path}: {e}"))?;
            mg_obs::log::info(
                "sweep_done",
                &[
                    ("path", path.as_str().into()),
                    ("cells", records.len().into()),
                    (
                        "matrices",
                        records
                            .iter()
                            .map(|r| &r.matrix)
                            .collect::<std::collections::HashSet<_>>()
                            .len()
                            .into(),
                    ),
                    ("seconds", start.elapsed().as_secs_f64().into()),
                ],
            );
        }
        None => print!("{out}"),
    }
    Ok(())
}

/// Binds the out-of-band `--metrics-addr` exposition endpoint if asked.
/// The returned handle keeps the endpoint alive until it drops.
fn metrics_endpoint(parsed: &Parsed) -> Result<Option<mg_obs::MetricsServer>, String> {
    let Some(addr) = parsed.flag_opt("--metrics-addr") else {
        return Ok(None);
    };
    let server = mg_obs::MetricsServer::bind(&addr)
        .map_err(|e| format!("binding metrics endpoint {addr}: {e}"))?;
    mg_obs::log::info(
        "metrics_listening",
        &[("addr", server.local_addr.to_string().into())],
    );
    Ok(Some(server))
}

fn metrics(parsed: &Parsed) -> Result<(), String> {
    let from_file = parsed.flag_opt("--input");
    let text = match &from_file {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
        None => {
            let addr = parsed.positional(0, "metrics address (HOST:PORT), or --input FILE")?;
            mg_obs::scrape(addr).map_err(|e| format!("scraping {addr}: {e}"))?
        }
    };
    if let Some(schema_path) = parsed.flag_opt("--schema") {
        let schema_text = std::fs::read_to_string(&schema_path)
            .map_err(|e| format!("reading {schema_path}: {e}"))?;
        let schema =
            mg_obs::parse_schema(&schema_text).map_err(|e| format!("schema {schema_path}: {e}"))?;
        let samples = mg_obs::validate_exposition(&text, &schema)
            .map_err(|e| format!("exposition does not match {schema_path}: {e}"))?;
        mg_obs::log::info(
            "metrics_validated",
            &[
                ("samples", samples.into()),
                ("schema", schema_path.as_str().into()),
            ],
        );
    }
    // A scrape prints the snapshot; --input only validates (the caller
    // already has the file).
    if from_file.is_none() {
        print!("{text}");
    }
    Ok(())
}

/// `mgpart trace`: scrapes one or more `/trace` routes and merges them
/// into a single Chrome-trace-event document — each endpoint becomes
/// its own pid, so one Perfetto timeline shows router and shard spans
/// of the same trace id side by side.
fn trace_cmd(parsed: &Parsed) -> Result<(), String> {
    let mut addrs: Vec<String> = Vec::new();
    while let Ok(addr) = parsed.positional(addrs.len(), "") {
        addrs.push(addr.clone());
    }
    if addrs.is_empty() {
        return Err("trace needs at least one --metrics-addr endpoint (HOST:PORT)".into());
    }
    let mut docs = Vec::new();
    for addr in &addrs {
        let text = mg_obs::scrape_trace(addr).map_err(|e| format!("scraping {addr}: {e}"))?;
        let doc =
            Json::parse(text.trim()).map_err(|e| format!("trace document from {addr}: {e}"))?;
        docs.push(doc);
    }
    let merged = merge_trace_docs(&docs)?;
    let mut rendered = String::new();
    merged.write(&mut rendered);
    rendered.push('\n');
    let report = parsed.has("--report");
    match parsed.flag_opt("--out") {
        Some(path) => {
            std::fs::write(&path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
            mg_obs::log::info(
                "trace_written",
                &[
                    ("path", path.as_str().into()),
                    ("endpoints", addrs.len().into()),
                ],
            );
        }
        // With --report the JSON goes to stdout only when asked for via
        // --out; the report is the primary output.
        None if !report => print!("{rendered}"),
        None => {}
    }
    if report {
        print!("{}", render_trace_report(&merged));
    }
    Ok(())
}

/// Concatenates scraped trace documents, remapping each source onto its
/// own pid (1-based, in address order) so process tracks stay distinct.
fn merge_trace_docs(docs: &[Json]) -> Result<Json, String> {
    let mut events: Vec<Json> = Vec::new();
    for (source, doc) in docs.iter().enumerate() {
        let pid = source as u64 + 1;
        let list = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("endpoint #{} returned no traceEvents array", source + 1))?;
        for event in list {
            let Json::Obj(fields) = event else { continue };
            let mut fields = fields.clone();
            for (name, value) in &mut fields {
                if name == "pid" {
                    *value = Json::UInt(pid);
                }
            }
            events.push(Json::Obj(fields));
        }
    }
    Ok(obj(vec![
        ("displayTimeUnit", Json::Str("ms".into())),
        ("traceEvents", Json::Arr(events)),
    ]))
}

/// One complete (`ph:"X"`) span event of a merged trace document.
struct TraceEvent<'a> {
    name: &'a str,
    pid: u64,
    ts: u64,
    dur: u64,
    trace: &'a str,
    span: &'a str,
    parent: Option<&'a str>,
}

/// Renders the human-readable `--report` view: per-trace span trees
/// (process-tagged), request-latency quantiles, and the per-phase time
/// shares of the paper's Fig. 5 breakdown.
fn render_trace_report(doc: &Json) -> String {
    use std::collections::BTreeMap;
    let empty = [];
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    // pid -> process name, from the metadata events.
    let mut processes: BTreeMap<u64, &str> = BTreeMap::new();
    let mut spans: Vec<TraceEvent> = Vec::new();
    for event in events {
        let name = event.get("name").and_then(Json::as_str).unwrap_or("");
        let pid = event.get("pid").and_then(Json::as_u64).unwrap_or(0);
        match event.get("ph").and_then(Json::as_str) {
            Some("M") if name == "process_name" => {
                if let Some(process) = event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                {
                    processes.insert(pid, process);
                }
            }
            Some("X") => {
                let args = event.get("args");
                let field = |key| args.and_then(|a| a.get(key)).and_then(Json::as_str);
                let (Some(trace), Some(span)) = (field("trace"), field("span")) else {
                    continue;
                };
                spans.push(TraceEvent {
                    name,
                    pid,
                    ts: event.get("ts").and_then(Json::as_u64).unwrap_or(0),
                    dur: event.get("dur").and_then(Json::as_u64).unwrap_or(0),
                    trace,
                    span,
                    parent: field("parent"),
                });
            }
            _ => {}
        }
    }
    let mut by_trace: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (at, span) in spans.iter().enumerate() {
        by_trace.entry(span.trace).or_default().push(at);
    }
    let ms = |us: u64| us as f64 / 1000.0;
    let mut out = String::new();
    let mut request_durs: Vec<u64> = Vec::new();
    let mut phase_totals: BTreeMap<&str, u64> = BTreeMap::new();
    for (trace, members) in &by_trace {
        out.push_str(&format!("trace {trace} ({} spans)\n", members.len()));
        let ids: std::collections::BTreeSet<&str> =
            members.iter().map(|&at| spans[at].span).collect();
        // Roots: spans whose parent is outside this document (or absent).
        let mut children: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut roots: Vec<usize> = Vec::new();
        for &at in members {
            match spans[at].parent.filter(|p| ids.contains(p)) {
                Some(parent) => children.entry(parent).or_default().push(at),
                None => roots.push(at),
            }
        }
        let order = |list: &mut Vec<usize>| {
            list.sort_by_key(|&at| (spans[at].ts, spans[at].span.to_string()));
        };
        order(&mut roots);
        for list in children.values_mut() {
            order(list);
        }
        // Depth-first tree render with an explicit stack.
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&at| (at, 1)).collect();
        while let Some((at, depth)) = stack.pop() {
            let span = &spans[at];
            let process = processes.get(&span.pid).copied().unwrap_or("?");
            out.push_str(&format!(
                "{}[{process}] {} {:.3}ms\n",
                "  ".repeat(depth),
                span.name,
                ms(span.dur),
            ));
            if let Some(kids) = children.get(span.span) {
                for &kid in kids.iter().rev() {
                    stack.push((kid, depth + 1));
                }
            }
            if span.name == "request" && span.parent.filter(|p| ids.contains(p)).is_none() {
                request_durs.push(span.dur);
            }
            if mg_obs::PHASES.contains(&span.name) {
                *phase_totals.entry(span.name).or_default() += span.dur;
            }
        }
    }
    if !request_durs.is_empty() {
        request_durs.sort_unstable();
        let quantile = |q: f64| {
            let at = ((request_durs.len() - 1) as f64 * q).round() as usize;
            ms(request_durs[at])
        };
        out.push_str(&format!(
            "requests: n={}, p50={:.3}ms, p99={:.3}ms\n",
            request_durs.len(),
            quantile(0.50),
            quantile(0.99),
        ));
    }
    let phase_sum: u64 = phase_totals.values().sum();
    if phase_sum > 0 {
        out.push_str("phase shares:");
        for phase in mg_obs::PHASES {
            let total = phase_totals.get(phase).copied().unwrap_or(0);
            out.push_str(&format!(
                " {phase} {:.1}%",
                total as f64 * 100.0 / phase_sum as f64
            ));
        }
        out.push('\n');
    }
    out
}

fn serve(parsed: &Parsed) -> Result<(), String> {
    let config = ServiceConfig {
        threads: parsed.flag_parse("--threads", 0usize)?,
        max_batch: parsed.flag_parse("--batch", 32usize)?,
        queue_capacity: parsed.flag_parse("--queue", 256usize)?,
        cache_capacity: parsed.flag_parse("--cache", 128usize)?,
        master_seed: parsed.flag_parse("--seed", 2014u64)?,
        default_backend: backend_from_flags(parsed)?.name(),
        collection: CollectionSpec {
            seed: parsed.flag_parse("--collection-seed", 11u64)?,
            scale: scale_from_name(&parsed.flag("--collection-scale", "smoke"))?,
        },
        timing: parsed.has("--timing"),
        shard_id: parsed.flag_opt("--shard-id"),
        trace_slow: trace_slow_flag(parsed)?,
    };
    // Name this process's track in exported traces: shards show up as
    // their topology id, a standalone server as "server".
    let process = match &config.shard_id {
        Some(id) => format!("shard:{id}"),
        None => "server".to_string(),
    };
    mg_obs::trace::collector().set_process(&process);
    // Bound before the protocol transport and held to the end of the
    // run: scrapes work from the first request to the post-drain state.
    let _metrics = metrics_endpoint(parsed)?;
    let service = Service::start(config);
    match parsed.flag_opt("--listen") {
        Some(addr) => {
            let server =
                TcpServer::bind(service, &addr).map_err(|e| format!("binding {addr}: {e}"))?;
            mg_obs::log::info(
                "server_listening",
                &[("addr", server.local_addr.to_string().into())],
            );
            // Blocks until a client sends the in-band shutdown op, then
            // drains every in-flight job before returning.
            server.join();
            mg_obs::log::info("server_stopped", &[("drained", true.into())]);
        }
        None => {
            let summary = serve_stdio(&service);
            service.shutdown_and_join();
            mg_obs::log::info(
                "session_done",
                &[
                    ("requests", summary.received.into()),
                    ("responses", summary.responses.into()),
                    ("cache_hits", summary.cache_hits.into()),
                    ("errors", summary.errors.into()),
                ],
            );
        }
    }
    Ok(())
}

/// Parses the `--trace-slow-ms` sampler threshold (milliseconds; 0 =
/// trace everything).
fn trace_slow_flag(parsed: &Parsed) -> Result<Option<std::time::Duration>, String> {
    Ok(parsed
        .flag_opt("--trace-slow-ms")
        .map(|raw| {
            raw.parse::<u64>()
                .map_err(|e| format!("bad value for --trace-slow-ms: {e}"))
        })
        .transpose()?
        .map(std::time::Duration::from_millis))
}

/// Parses a duration flag given in (fractional) seconds.
fn seconds_flag(parsed: &Parsed, name: &str) -> Result<Option<std::time::Duration>, String> {
    let Some(raw) = parsed.flag_opt(name) else {
        return Ok(None);
    };
    let seconds: f64 = raw
        .parse()
        .map_err(|e| format!("bad value for {name}: {e}"))?;
    if !seconds.is_finite() || seconds < 0.0 {
        return Err(format!("{name} must be a non-negative number of seconds"));
    }
    Ok(Some(std::time::Duration::from_secs_f64(seconds)))
}

fn route(parsed: &Parsed) -> Result<(), String> {
    // A missing --shards list is the empty topology: same typed error,
    // nonzero exit.
    let topology = Topology::parse(&parsed.flag("--shards", ""))
        .map_err(|e| format!("topology error: {e}"))?;
    let probe_interval =
        seconds_flag(parsed, "--probe-interval")?.unwrap_or(RouterConfig::default().probe_interval);
    let config = RouterConfig {
        window: parsed.flag_parse("--window", 64usize)?,
        cache_capacity: parsed.flag_parse("--cache", 128usize)?,
        default_backend: backend_from_flags(parsed)?.name(),
        heavy_cost: parsed.flag_parse("--heavy-cost", RouterConfig::default().heavy_cost)?,
        replicas: parsed.flag_parse("--replicas", 1usize)?,
        probe_interval,
        read_deadline: seconds_flag(parsed, "--read-deadline")?,
        trace_slow: trace_slow_flag(parsed)?,
        ..RouterConfig::default()
    };
    let shard_count = topology.len();
    mg_obs::trace::collector().set_process("router");
    let _metrics = metrics_endpoint(parsed)?;
    let router = Router::new(topology, config)?;
    // Startup barrier: a mistyped shard address fails here, not on the
    // first request.
    router.connect_all()?;
    match parsed.flag_opt("--listen") {
        Some(addr) => {
            let server = RouterTcpServer::bind(std::sync::Arc::new(router), &addr)
                .map_err(|e| format!("binding {addr}: {e}"))?;
            mg_obs::log::info(
                "router_listening",
                &[
                    ("addr", server.local_addr.to_string().into()),
                    ("shards", shard_count.into()),
                ],
            );
            server.join();
            mg_obs::log::info("router_stopped", &[]);
        }
        None => {
            let summary = mg_router::serve_stdio(&router);
            mg_obs::log::info(
                "session_done",
                &[
                    ("requests", summary.received.into()),
                    ("responses", summary.responses.into()),
                    ("forwarded", summary.forwarded.into()),
                    ("cache_hits", summary.cache_hits.into()),
                    ("errors", summary.errors.into()),
                ],
            );
        }
    }
    Ok(())
}

fn request(parsed: &Parsed) -> Result<(), String> {
    let op = parsed.flag("--op", "partition");
    let mut fields: Vec<(&str, Json)> = Vec::new();
    if let Some(raw) = parsed.flag_opt("--id") {
        let id = match raw.parse::<u64>() {
            Ok(n) => Json::UInt(n),
            Err(_) => Json::Str(raw),
        };
        fields.push(("id", id));
    }
    match op.as_str() {
        "partition" => {
            let matrix = if let Some(name) = parsed.flag_opt("--collection") {
                obj(vec![("collection", Json::Str(name))])
            } else if let Some(path) = parsed.flag_opt("--mtx") {
                if parsed.has("--inline") {
                    let a = io::read_matrix_market_file(&path).map_err(|e| e.to_string())?;
                    obj(vec![
                        ("rows", Json::UInt(u64::from(a.rows()))),
                        ("cols", Json::UInt(u64::from(a.cols()))),
                        (
                            "entries",
                            Json::Arr(
                                a.iter()
                                    .map(|(i, j)| {
                                        Json::Arr(vec![
                                            Json::UInt(u64::from(i)),
                                            Json::UInt(u64::from(j)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                } else {
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| format!("reading {path}: {e}"))?;
                    obj(vec![("mtx", Json::Str(text))])
                }
            } else {
                return Err("partition requests need --mtx FILE or --collection NAME".into());
            };
            fields.push(("matrix", matrix));
            let method = Method::parse_name(&parsed.flag("-m", "mg-ir"))?;
            fields.push(("method", Json::Str(method.name().into())));
            if let Some(name) = parsed
                .flag_opt("--backend")
                .or_else(|| parsed.flag_opt("--engine"))
            {
                let backend = parse_backend(&name)?;
                fields.push(("backend", Json::Str(backend.name().into())));
            }
            fields.push(("epsilon", Json::Num(parsed.flag_parse("-e", 0.03)?)));
            if let Some(seed) = parsed.flag_opt("--seed") {
                let seed: u64 = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
                fields.push(("seed", Json::UInt(seed)));
            }
            if parsed.has("--include-partition") {
                fields.push(("include_partition", Json::Bool(true)));
            }
            if parsed.has("--trace") {
                // A fresh root context: the receiving server (or router)
                // opens its `request` span as the trace's root. The id
                // goes to stderr so scripts can find the trace in a
                // later `/trace` scrape.
                let trace_id = mg_obs::trace::next_trace_id();
                let hex = mg_obs::trace::trace_id_hex(trace_id);
                fields.push(("trace", obj(vec![("id", Json::Str(hex.clone()))])));
                mg_obs::log::info("trace_stamped", &[("trace", hex.as_str().into())]);
            }
        }
        "ping" | "stats" | "shutdown" => {
            fields.push(("op", Json::Str(op.clone())));
            if let Some(shard) = parsed.flag_opt("--shard") {
                if op != "stats" {
                    return Err("--shard only applies to --op stats".into());
                }
                fields.push(("shard", Json::Str(shard)));
            }
        }
        other => {
            return Err(format!(
                "unknown op {other:?} (partition|ping|stats|shutdown)"
            ))
        }
    }
    let request_id = fields
        .iter()
        .find(|(name, _)| *name == "id")
        .map(|(_, id)| id.clone())
        .unwrap_or(Json::Null);
    let line = obj(fields).to_string();
    if parsed.has("--print") {
        println!("{line}");
        return Ok(());
    }
    let timeout = seconds_flag(parsed, "--timeout")?.filter(|t| !t.is_zero());

    let addr = parsed.positional(0, "server address (or use --print)")?;
    // An unreachable endpoint is a *typed* protocol-shaped error line on
    // stdout (code `connection_refused`) plus a nonzero exit — scripts
    // parse one JSON line per request whether or not a server was there.
    let mut stream = std::net::TcpStream::connect(addr.as_str()).map_err(|e| {
        println!(
            "{}",
            error_response(
                &Json::Null,
                ErrorCode::ConnectionRefused,
                &format!("connecting to {addr}: {e}"),
                None,
            )
        );
        format!("connecting to {addr}: {e}")
    })?;
    {
        use std::io::Write as _;
        stream
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| stream.flush())
            .map_err(|e| format!("sending request: {e}"))?;
    }
    // --timeout: a server that accepts the connection but never answers
    // must not hang the client forever — surface a *typed* error line
    // (code `request_timeout`, echoing the request id) plus a nonzero
    // exit, exactly like `connection_refused` above.
    if let Some(timeout) = timeout {
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| format!("setting --timeout: {e}"))?;
    }
    let mut reader = std::io::BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cloning stream: {e}"))?,
    );
    let mut response = String::new();
    {
        use std::io::BufRead as _;
        reader.read_line(&mut response).map_err(|e| {
            let timed_out = timeout.filter(|_| {
                matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                )
            });
            if let Some(t) = timed_out {
                let secs = t.as_secs_f64();
                println!(
                    "{}",
                    error_response(
                        &request_id,
                        ErrorCode::RequestTimeout,
                        &format!("no response from {addr} within {secs:.3}s"),
                        None,
                    )
                );
                format!("request timed out after {secs:.3}s")
            } else {
                format!("reading response: {e}")
            }
        })?;
    }
    if response.is_empty() {
        return Err("server closed the connection without a response".into());
    }
    print!("{response}");
    Ok(())
}

fn volume(parsed: &Parsed) -> Result<(), String> {
    let path = parsed.positional(0, "distributed matrix file")?;
    let (a, partition) = dist_io::read_distributed_file(path).map_err(|e| e.to_string())?;
    let report = CommunicationReport::compute(&a, &partition);
    let cost = bsp_cost(&a, &partition);
    println!(
        "{path}: {}x{}, {} nonzeros, {} parts",
        a.rows(),
        a.cols(),
        a.nnz(),
        partition.num_parts()
    );
    println!("  {}", report.render());
    println!("  volume check: {}", communication_volume(&a, &partition));
    println!(
        "  imbalance {:.4}, BSP cost {}",
        load_imbalance(&partition),
        cost.total()
    );
    Ok(())
}

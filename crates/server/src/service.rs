//! The serving engine: a bounded submission queue feeding the
//! work-stealing batch pool, per-session ordered response streams, and a
//! shared LRU response cache.
//!
//! ## Execution model
//!
//! Sessions (one per stdio pipe or TCP connection) decode request lines
//! and submit jobs to the shared [`Engine`]. A dispatcher thread drains
//! the queue in *micro-batches* and runs each batch on the existing
//! [`mg_collection::run_batch_ordered`] work-stealing pool — jobs execute
//! out of order across workers, but results are delivered in order and
//! each session's writer emits responses in its own submission order.
//!
//! ## Determinism
//!
//! Every job's RNG stream is seeded with [`mg_collection::job_seed`] over
//! the (backend, matrix fingerprint, method, ε) key folded with the
//! request seed — never from scheduling state — so a response's payload
//! is a pure function of the request. The `cached` flag is decided at *submission
//! time* in stream order (completed key → cache hit; in-flight key →
//! follower of the running job; fresh key → new job), which makes a
//! single session's response bytes identical at any `--threads` count,
//! provided the session's distinct-job working set fits the cache
//! capacity (see `PROTOCOL.md` for the exact contract).
//!
//! ## Backpressure and shutdown
//!
//! The submission queue is bounded: submitters block when it is full,
//! which in turn blocks the session's reader — TCP clients experience
//! socket backpressure instead of unbounded server memory. Shutdown (the
//! `shutdown` op or [`Service::initiate_shutdown`]) stops new
//! submissions, drains every queued and in-flight job, flushes every
//! pending response, then lets the dispatcher exit.

use crate::cache::LruCache;
use crate::codec::{self, UnitKind, UnitScanner, WireCodec};
use crate::json::Json;
use crate::metrics::{bytes_in, bytes_out, op_counter, request_seconds, server_metrics};
use crate::protocol;
use mg_collection::{generate, job_seed, run_batch_ordered, worker_count, CollectionSpec};
use mg_core::service::{matrix_fingerprint, ErrorCode, MatrixPayload, PartitionOutcome, RequestOp};
use mg_core::{parse_backend, Method, PartitionBackend, DEFAULT_BACKEND};
use mg_obs::trace::{self, TraceContext};
use mg_sparse::{load_imbalance, Coo};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads of the batch pool; 0 = one per available core.
    pub threads: usize,
    /// Largest micro-batch the dispatcher hands to the pool at once.
    pub max_batch: usize,
    /// Bounded submission-queue capacity; full ⇒ submitters block
    /// (backpressure all the way to the client socket).
    pub queue_capacity: usize,
    /// LRU response-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Master seed folded into every job-key hash when a request carries
    /// no seed of its own.
    pub master_seed: u64,
    /// Canonical name of the backend used for requests without a
    /// `backend` field (must be registered in [`mg_core::backend`]).
    pub default_backend: &'static str,
    /// The deterministic collection served for `{"collection": name}`
    /// payloads (generated lazily on first use).
    pub collection: CollectionSpec,
    /// Append a non-deterministic `time_ms` field to computed responses.
    pub timing: bool,
    /// Diagnostic shard tag (`mgpart serve --shard-id`): when set, stats
    /// and error responses carry a `"shard"` field so clients behind a
    /// router can attribute them. `None` (the default) leaves every
    /// response byte-identical to an untagged server.
    pub shard_id: Option<String>,
    /// Slow-request trace sampler (`--trace-slow-ms N`): partition
    /// requests without a client-stamped trace get a speculative trace
    /// that is kept only when end-to-end latency reaches the threshold.
    /// `None` disables sampling; explicit `trace` fields always record.
    pub trace_slow: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 0,
            max_batch: 32,
            queue_capacity: 256,
            cache_capacity: 128,
            master_seed: 2014,
            default_backend: DEFAULT_BACKEND,
            collection: CollectionSpec::default(),
            timing: false,
            shard_id: None,
            trace_slow: None,
        }
    }
}

/// (matrix fingerprint, backend, method, ε bits, request seed base,
/// include_partition) — the identity of a job for caching and in-flight
/// coalescing.
///
/// The backend is the *effective* canonical name (request field or server
/// default), so the same matrix partitioned on two engines occupies two
/// cache entries, and the key stays fingerprint-compatible: requests
/// agree on a key iff they agree on every result-determining input.
///
/// `include_partition` is part of the key so that plain requests and
/// full-assignment requests never coalesce: cache entries for plain keys
/// are stored *stripped* of the O(nnz) partition vector (it would pin
/// large matrices in memory for clients that never asked for it), and
/// keeping the two shapes apart keeps the `cached` flag a pure function
/// of the submission stream. The RNG seed ignores the flag
/// ([`seed_of`]), so both shapes report identical volumes and seeds.
type CacheKey = (u64, &'static str, Method, u64, u64, bool);

/// Completion callback: `(outcome, cached, compute_seconds)`.
type Deliver = Box<dyn FnOnce(Arc<PartitionOutcome>, bool, f64) + Send>;

/// One queued job as handed to the ordered batch pool: cache key,
/// resolved backend, matrix, and the optional trace handle.
type JobSpec = (
    CacheKey,
    &'static dyn PartitionBackend,
    Arc<Coo>,
    Option<JobTrace>,
);

/// Wall-clock anchors of one request unit, captured before decode so
/// traced requests can report `decode` and end-to-end durations.
#[derive(Clone, Copy)]
struct UnitStart {
    /// `trace::now_us()` at unit start (span timestamps).
    sys_us: u64,
    /// Monotonic twin of `sys_us` (span durations).
    at: Instant,
}

impl UnitStart {
    fn now() -> UnitStart {
        UnitStart {
            sys_us: trace::now_us(),
            at: Instant::now(),
        }
    }
}

/// Trace identity of one request: the server-side root span context
/// (the `request` span; `decode`/`queue_wait`/`execute`/`encode` are its
/// children) and whether it came from the slow sampler rather than a
/// client-stamped `trace` field.
#[derive(Clone, Copy)]
struct ReqTrace {
    ctx: TraceContext,
    speculative: bool,
}

/// Trace identity of a queued job's primary: the request's root span
/// (`queue_wait` and `execute` record under it) plus when it queued.
#[derive(Clone, Copy)]
struct JobTrace {
    ctx: TraceContext,
    queued_us: u64,
    queued_at: Instant,
}

struct EngineJob {
    key: CacheKey,
    /// Resolved once at submission; workers never re-parse the name.
    backend: &'static dyn PartitionBackend,
    matrix: Arc<Coo>,
    deliver: Deliver,
    /// Present when the primary request is traced: workers record
    /// `queue_wait`/`execute` spans and install the context so phase
    /// timers nest under `execute`.
    trace: Option<JobTrace>,
}

/// Name → matrix map of the lazily generated collection.
type CollectionMap = HashMap<String, Arc<Coo>>;

struct EngineInner {
    queue: VecDeque<EngineJob>,
    /// Keys currently queued or executing, with follower callbacks to run
    /// (as cache hits) when the primary completes.
    inflight: HashMap<CacheKey, Vec<Deliver>>,
    cache: LruCache<CacheKey, Arc<PartitionOutcome>>,
    shutdown: bool,
}

struct Engine {
    inner: Mutex<EngineInner>,
    /// Signals the dispatcher that work (or shutdown) is available.
    work: Condvar,
    /// Signals blocked submitters that queue space freed up.
    space: Condvar,
    /// Lazily generated collection, name → matrix.
    collection: Mutex<Option<Arc<CollectionMap>>>,
    /// Open session drivers on this service. Sampled at decode time by
    /// the `stats` op (deterministic for a given request prefix: a
    /// session always sees at least itself).
    sessions: AtomicU64,
    config: ServiceConfig,
}

enum SubmitOutcome {
    CacheHit,
    Follower,
    Queued,
    Rejected,
}

impl Engine {
    fn lock(&self) -> std::sync::MutexGuard<'_, EngineInner> {
        self.inner.lock().expect("engine mutex poisoned")
    }

    fn submit(
        &self,
        key: CacheKey,
        backend: &'static dyn PartitionBackend,
        matrix: Arc<Coo>,
        deliver: Deliver,
        trace: Option<JobTrace>,
    ) -> SubmitOutcome {
        let mut inner = self.lock();
        loop {
            if inner.shutdown {
                return SubmitOutcome::Rejected;
            }
            if let Some(hit) = inner.cache.get(&key) {
                let outcome = hit.clone();
                drop(inner);
                deliver(outcome, true, 0.0);
                return SubmitOutcome::CacheHit;
            }
            if let Some(followers) = inner.inflight.get_mut(&key) {
                followers.push(deliver);
                return SubmitOutcome::Follower;
            }
            if inner.queue.len() >= self.config.queue_capacity.max(1) {
                inner = self.space.wait(inner).expect("engine mutex poisoned");
                continue;
            }
            inner.inflight.insert(key, Vec::new());
            inner.queue.push_back(EngineJob {
                key,
                backend,
                matrix,
                deliver,
                trace,
            });
            server_metrics().queue_depth.set(inner.queue.len() as u64);
            self.work.notify_all();
            return SubmitOutcome::Queued;
        }
    }

    fn initiate_shutdown(&self) {
        self.lock().shutdown = true;
        self.work.notify_all();
        self.space.notify_all();
    }

    fn is_shutting_down(&self) -> bool {
        self.lock().shutdown
    }

    fn collection_matrix(&self, name: &str) -> Option<Arc<Coo>> {
        let mut slot = self.collection.lock().expect("collection mutex poisoned");
        if slot.is_none() {
            let map: HashMap<String, Arc<Coo>> = generate(&self.config.collection)
                .into_iter()
                .map(|entry| (entry.name, Arc::new(entry.matrix)))
                .collect();
            *slot = Some(Arc::new(map));
        }
        slot.as_ref().expect("just filled").get(name).cloned()
    }

    fn resolve_matrix(&self, payload: &MatrixPayload) -> Result<Arc<Coo>, (ErrorCode, String)> {
        // The decode path is shared with the router's placement-key
        // extraction (mg_core::service), so both reject a malformed
        // payload with byte-identical (code, message) pairs.
        match mg_core::service::payload_matrix(payload)? {
            Some(matrix) => Ok(Arc::new(matrix)),
            None => match payload {
                MatrixPayload::Collection(name) => self.collection_matrix(name).ok_or_else(|| {
                    (
                        ErrorCode::UnknownCollection,
                        format!("no collection matrix named {name:?}"),
                    )
                }),
                _ => unreachable!("payload_matrix returns None only for collections"),
            },
        }
    }
}

/// Executes one job. Pure: the result depends only on the arguments.
fn execute(
    matrix: &Coo,
    backend: &'static dyn PartitionBackend,
    method: Method,
    epsilon: f64,
    seed: u64,
    fingerprint: u64,
) -> PartitionOutcome {
    let result = backend.bipartition(matrix, method, epsilon, seed);
    let mut part_nnz = [0u64; 2];
    for (p, &size) in result.partition.part_sizes().iter().take(2).enumerate() {
        part_nnz[p] = size;
    }
    let imbalance = if matrix.nnz() == 0 {
        0.0
    } else {
        load_imbalance(&result.partition)
    };
    PartitionOutcome {
        rows: matrix.rows(),
        cols: matrix.cols(),
        nnz: matrix.nnz(),
        fingerprint,
        backend: backend.name(),
        method: method.name(),
        epsilon,
        seed,
        volume: result.volume,
        imbalance,
        ir_iterations: result.ir_iterations,
        part_nnz,
        partition: result.partition.parts().to_vec(),
    }
}

/// The dispatcher: drains the queue in micro-batches and runs each batch
/// on the ordered work-stealing pool, resolving primaries and followers
/// as results stream back. Exits once shutdown is requested *and* the
/// queue is fully drained — never dropping an accepted job.
fn dispatcher_loop(engine: &Engine) {
    loop {
        let batch: Vec<EngineJob> = {
            let mut inner = engine.lock();
            loop {
                if !inner.queue.is_empty() {
                    break;
                }
                if inner.shutdown {
                    return;
                }
                inner = engine.work.wait(inner).expect("engine mutex poisoned");
            }
            let n = inner.queue.len().min(engine.config.max_batch.max(1));
            let drained: Vec<EngineJob> = inner.queue.drain(..n).collect();
            server_metrics().queue_depth.set(inner.queue.len() as u64);
            drained
        };
        engine.space.notify_all();

        let mut delivers: Vec<Option<Deliver>> = Vec::with_capacity(batch.len());
        let mut specs: Vec<JobSpec> = Vec::with_capacity(batch.len());
        for job in batch {
            specs.push((job.key, job.backend, job.matrix, job.trace));
            delivers.push(Some(job.deliver));
        }
        let threads = worker_count(engine.config.threads).min(specs.len()).max(1);
        let specs = &specs;
        server_metrics().inflight.set(specs.len() as u64);
        run_batch_ordered(
            specs.len(),
            threads,
            |i| {
                let ((fingerprint, _, method, eps_bits, _, _), backend, matrix, job_trace) =
                    &specs[i];
                let seed = seed_of(&specs[i].0);
                // Traced jobs: queue_wait ran from submission to now, and
                // execute gets its own span installed thread-locally so
                // the partitioner's phase timers record as its children.
                let exec_span = job_trace.map(|jt| {
                    trace::record_child(
                        &jt.ctx,
                        "queue_wait",
                        jt.queued_us,
                        jt.queued_at.elapsed(),
                    );
                    (jt.ctx.child(), trace::now_us())
                });
                let _scope = exec_span.map(|(ctx, _)| trace::enter(ctx));
                let start = Instant::now();
                let outcome = execute(
                    matrix,
                    *backend,
                    *method,
                    f64::from_bits(*eps_bits),
                    seed,
                    *fingerprint,
                );
                let elapsed = start.elapsed();
                drop(_scope);
                if let Some((ctx, start_us)) = exec_span {
                    trace::record_span(
                        ctx.trace_id,
                        ctx.span_id,
                        ctx.parent_id,
                        "execute",
                        start_us,
                        elapsed,
                    );
                }
                (outcome, elapsed.as_secs_f64())
            },
            |i, (outcome, secs)| {
                let outcome = Arc::new(outcome);
                let followers = {
                    let mut inner = engine.lock();
                    // Keys that never asked for the assignment cache a
                    // *stripped* copy: the partition vector is O(nnz) and
                    // would otherwise pin every large matrix in memory.
                    let wants_partition = specs[i].0 .5;
                    let cached_copy = if wants_partition || outcome.partition.is_empty() {
                        outcome.clone()
                    } else {
                        let mut stripped = (*outcome).clone();
                        stripped.partition = Vec::new();
                        Arc::new(stripped)
                    };
                    inner.cache.insert(specs[i].0, cached_copy);
                    inner.inflight.remove(&specs[i].0).unwrap_or_default()
                };
                if let Some(primary) = delivers[i].take() {
                    primary(outcome.clone(), false, secs);
                }
                for follower in followers {
                    follower(outcome.clone(), true, 0.0);
                }
            },
        );
        server_metrics().inflight.set(0);
    }
}

/// The effective RNG seed of a job: [`job_seed`] over the backend name,
/// the fingerprint (as a hex key string), the canonical method name and
/// ε, folded with the request's seed base. Identical requests therefore
/// share one RNG stream at any thread count — §V's determinism contract,
/// extended from sweeps to the service — and requests differing only in
/// backend draw independent streams, exactly like sweep cells.
fn seed_of(key: &CacheKey) -> u64 {
    // include_partition deliberately excluded: asking for the assignment
    // must not change the result.
    let (fingerprint, backend, method, eps_bits, seed_base, _include_partition) = *key;
    job_seed(
        seed_base,
        backend,
        &format!("{fingerprint:016x}"),
        method.name(),
        f64::from_bits(eps_bits),
    )
}

/// A running partition service: the shared engine plus its dispatcher
/// thread. Create with [`Service::start`], attach any number of sessions
/// ([`Service::run_session`]), and stop with
/// [`Service::initiate_shutdown`] (or the in-band `shutdown` op).
pub struct Service {
    engine: Arc<Engine>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Per-session counters, all submission-order-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionSummary {
    /// Request lines decoded (including failed ones).
    pub received: u64,
    /// Responses written.
    pub responses: u64,
    /// Requests served from the cache or coalesced onto an in-flight
    /// twin (`cached: true` responses).
    pub cache_hits: u64,
    /// Partition requests that missed the cache and queued fresh work.
    pub cache_misses: u64,
    /// Error responses.
    pub errors: u64,
}

impl Service {
    /// Starts the engine and its dispatcher thread.
    ///
    /// Panics if `config.default_backend` is not a registered backend —
    /// a config error surfaces here, not on the first request. The name
    /// is also canonicalized, so a non-canonical spelling (`"PATOH"`)
    /// seeds and caches identically to an explicit `backend: "patoh"`
    /// request field.
    pub fn start(mut config: ServiceConfig) -> Arc<Service> {
        config.default_backend = parse_backend(config.default_backend)
            .unwrap_or_else(|e| panic!("invalid default backend: {e}"))
            .name();
        let engine = Arc::new(Engine {
            inner: Mutex::new(EngineInner {
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                cache: LruCache::new(config.cache_capacity),
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            collection: Mutex::new(None),
            sessions: AtomicU64::new(0),
            config,
        });
        let dispatcher_engine = engine.clone();
        let dispatcher = std::thread::Builder::new()
            .name("mg-server-dispatcher".into())
            .spawn(move || dispatcher_loop(&dispatcher_engine))
            .expect("spawning dispatcher");
        Arc::new(Service {
            engine,
            dispatcher: Mutex::new(Some(dispatcher)),
        })
    }

    /// Stops accepting new jobs. Queued and executing jobs still finish
    /// and their responses are still delivered (drain semantics).
    pub fn initiate_shutdown(&self) {
        self.engine.initiate_shutdown();
    }

    /// `true` once shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.engine.is_shutting_down()
    }

    /// Waits for the dispatcher to drain and exit. Implies
    /// [`Service::initiate_shutdown`].
    pub fn shutdown_and_join(&self) {
        self.engine.initiate_shutdown();
        if let Some(handle) = self
            .dispatcher
            .lock()
            .expect("dispatcher mutex poisoned")
            .take()
        {
            handle.join().expect("dispatcher panicked");
        }
    }

    /// Opens a session driver for a custom transport. Most callers want
    /// [`Service::run_session`] instead.
    pub fn open_session(&self) -> SessionDriver<'_> {
        self.engine.sessions.fetch_add(1, Ordering::SeqCst);
        server_metrics().sessions_live.inc();
        SessionDriver {
            service: self,
            shared: Arc::new(SessionShared::new(self.engine.config.shard_id.clone())),
            summary: SessionSummary::default(),
            next_index: 0,
            pending_switch: None,
        }
    }

    /// Runs a full session over a generic byte transport: reads requests
    /// from `input` on the calling thread while a scoped writer thread
    /// streams responses to `output` in submission order. The stream
    /// starts as JSON lines; a `hello` can switch it to binary frames
    /// mid-session (both directions). A final request without its line
    /// terminator is still processed at EOF. Returns when the input is
    /// exhausted (EOF or an in-band `shutdown`) and every response has
    /// been written.
    pub fn run_session<R: BufRead, W: Write + Send>(
        &self,
        mut input: R,
        mut output: W,
    ) -> SessionSummary {
        let mut driver = self.open_session();
        let shared = driver.shared();
        crossbeam::scope(|scope| {
            let out = &mut output;
            let writer = scope.spawn(move |_| write_responses(&shared, out));
            let mut scanner = UnitScanner::new();
            'session: loop {
                let consumed = match input.fill_buf() {
                    Ok([]) => {
                        if let Some(tail) = scanner.take_eof_remainder() {
                            driver.handle_unit(UnitKind::Line, &tail);
                        }
                        break;
                    }
                    Ok(chunk) => {
                        scanner.push(chunk);
                        chunk.len()
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                };
                input.consume(consumed);
                loop {
                    match scanner.next_unit() {
                        Ok(Some((kind, range))) => {
                            let go = driver.handle_unit(kind, scanner.bytes(&range));
                            if let Some(codec) = driver.take_codec_switch() {
                                scanner.set_codec(codec);
                            }
                            if !go {
                                break 'session;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            driver.protocol_error(&e.message);
                            break 'session;
                        }
                    }
                }
            }
            driver.finish_input();
            driver.summary.responses = writer.join().expect("session writer panicked");
        })
        .expect("session scope");
        driver.summary
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// One response slot: empty until its request resolves.
///
/// `Stats` slots are *deferred*: the snapshot counters are fixed at
/// decode time, but the per-backend completed-job counts are only known
/// once every preceding response has been delivered — which is exactly
/// when the writer reaches the slot, since responses stream in submission
/// order. Rendering there keeps the line a pure function of the request
/// prefix at any thread count.
enum Slot {
    /// Request decoded, response not resolved yet.
    Pending,
    /// A finished response line; `computed` names the backend when the
    /// line is a freshly computed (not cache-served) partition result, so
    /// the writer can tally per-backend completions in stream order.
    /// `switch` carries a `hello` codec negotiation: the writer emits
    /// this line in the *old* codec, then switches.
    Ready {
        line: String,
        computed: Option<&'static str>,
        switch: Option<WireCodec>,
    },
    /// A `stats` request, rendered by the writer when it reaches it.
    Stats {
        id: Json,
        snapshot: protocol::StatsSnapshot,
    },
}

impl Slot {
    fn is_resolved(&self) -> bool {
        !matches!(self, Slot::Pending)
    }
}

/// Response slots of one session: a sliding window of pending lines.
/// `base` is the submission index of `slots[0]`; the writer pops from the
/// front as lines become ready, so memory stays bounded by the in-flight
/// window rather than the session length.
#[derive(Default)]
struct SessionSlots {
    base: u64,
    slots: VecDeque<Slot>,
    input_done: bool,
}

pub(crate) struct SessionShared {
    state: Mutex<SessionSlots>,
    ready: Condvar,
    /// The server's diagnostic shard tag, echoed on stats lines.
    shard: Option<String>,
    /// This session's submitted-but-undelivered partition jobs. Sampled
    /// by the writer when it renders a `stats` slot: every *preceding*
    /// job has delivered by then (responses stream in submission order),
    /// so the value is deterministic whenever no partition requests
    /// trail the stats request in flight (see PROTOCOL.md).
    outstanding: AtomicU64,
}

impl SessionShared {
    fn new(shard: Option<String>) -> Self {
        SessionShared {
            state: Mutex::new(SessionSlots::default()),
            ready: Condvar::new(),
            shard,
            outstanding: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SessionSlots> {
        self.state.lock().expect("session mutex poisoned")
    }

    fn push_pending(&self) {
        self.lock().slots.push_back(Slot::Pending);
    }

    fn set_slot(&self, index: u64, slot: Slot) {
        let mut state = self.lock();
        let offset = (index - state.base) as usize;
        state.slots[offset] = slot;
        self.ready.notify_all();
    }

    fn set(&self, index: u64, line: String) {
        self.set_slot(
            index,
            Slot::Ready {
                line,
                computed: None,
                switch: None,
            },
        );
    }

    fn set_computed(&self, index: u64, line: String, computed: Option<&'static str>) {
        self.set_slot(
            index,
            Slot::Ready {
                line,
                computed,
                switch: None,
            },
        );
    }

    fn set_switch(&self, index: u64, line: String, codec: WireCodec) {
        self.set_slot(
            index,
            Slot::Ready {
                line,
                computed: None,
                switch: Some(codec),
            },
        );
    }

    fn set_stats(&self, index: u64, id: Json, snapshot: protocol::StatsSnapshot) {
        self.set_slot(index, Slot::Stats { id, snapshot });
    }

    fn finish_input(&self) {
        self.lock().input_done = true;
        self.ready.notify_all();
    }
}

/// Writer half of a session: emits ready responses in submission order,
/// flushing after each line so clients see results as they land. Tallies
/// freshly computed jobs per backend as the lines pass (so a deferred
/// `stats` slot reports exactly the completions among its prefix), and
/// returns the number of responses written.
pub(crate) fn write_responses<W: Write>(shared: &SessionShared, output: &mut W) -> u64 {
    let mut written = 0u64;
    let mut wire = WireCodec::JsonLines;
    let mut completed: Vec<(&'static str, u64)> = mg_core::all_backends()
        .iter()
        .map(|b| (b.name(), 0u64))
        .collect();
    loop {
        let slot = {
            let mut state = shared.lock();
            loop {
                if matches!(state.slots.front(), Some(slot) if slot.is_resolved()) {
                    break;
                }
                if state.input_done && state.slots.front().is_none() {
                    return written;
                }
                state = shared.ready.wait(state).expect("session mutex poisoned");
            }
            state.base += 1;
            state.slots.pop_front().expect("checked front")
        };
        let (line, switch) = match slot {
            Slot::Pending => unreachable!("writer only pops resolved slots"),
            Slot::Ready {
                line,
                computed,
                switch,
            } => {
                if let Some(backend) = computed {
                    if let Some(entry) = completed.iter_mut().find(|(name, _)| *name == backend) {
                        entry.1 += 1;
                    }
                }
                (line, switch)
            }
            Slot::Stats { id, snapshot } => (
                protocol::stats_response(
                    &id,
                    snapshot,
                    &completed,
                    shared.outstanding.load(Ordering::SeqCst),
                    shared.shard.as_deref(),
                ),
                None,
            ),
        };
        // A broken pipe means the client is gone; keep draining slots so
        // the session still terminates cleanly.
        if codec::write_response_unit(output, wire, &line).is_ok() {
            written += 1;
            bytes_out(
                match wire {
                    WireCodec::JsonLines => "json",
                    WireCodec::Binary => "binary",
                },
                line.len() as u64 + 1,
            );
        }
        // A hello ack travels in the old codec; everything after it in
        // the negotiated one.
        if let Some(next) = switch {
            wire = next;
        }
    }
}

/// Reader half of a session, usable from any transport: feed it request
/// lines ([`SessionDriver::handle_line`]), run [`write_responses`] on the
/// shared state from a writer thread, and call
/// [`SessionDriver::finish_input`] when the input ends.
pub struct SessionDriver<'s> {
    service: &'s Service,
    shared: Arc<SessionShared>,
    summary: SessionSummary,
    next_index: u64,
    /// A `hello` just switched the *inbound* codec; the transport takes
    /// this ([`SessionDriver::take_codec_switch`]) and retunes its
    /// scanner before parsing the next unit.
    pending_switch: Option<WireCodec>,
}

impl SessionDriver<'_> {
    pub(crate) fn shared(&self) -> Arc<SessionShared> {
        self.shared.clone()
    }

    /// Allocates the next response slot in stream order.
    fn begin(&mut self) -> u64 {
        let index = self.next_index;
        self.next_index += 1;
        self.summary.received += 1;
        server_metrics().requests.inc();
        self.shared.push_pending();
        index
    }

    fn fail(&mut self, index: u64, id: &Json, code: ErrorCode, message: &str) {
        self.summary.errors += 1;
        server_metrics().errors.inc();
        self.shared.set(
            index,
            protocol::error_response(id, code, message, self.shard()),
        );
    }

    /// Handles one scanned protocol unit: a JSON-lines request line or a
    /// binary frame payload. Returns `false` when the session should stop
    /// reading (an in-band `shutdown`).
    pub fn handle_unit(&mut self, kind: UnitKind, bytes: &[u8]) -> bool {
        let t0 = UnitStart::now();
        match kind {
            UnitKind::Line => {
                bytes_in("json", bytes.len() as u64);
                self.handle_text(bytes, t0)
            }
            UnitKind::Frame => {
                bytes_in("binary", bytes.len() as u64);
                self.handle_frame(bytes, t0)
            }
        }
    }

    /// After a unit that contained a `hello`: the codec the inbound
    /// scanner must switch to before the next unit. (The *outbound*
    /// switch rides on the response slot and is applied by the writer.)
    pub fn take_codec_switch(&mut self) -> Option<WireCodec> {
        self.pending_switch.take()
    }

    /// Reports a fatal framing violation (e.g. an oversized frame) as a
    /// typed error response; the transport closes the session after this
    /// since there is no way to resynchronise the stream.
    pub fn protocol_error(&mut self, message: &str) {
        let index = self.begin();
        self.fail(index, &Json::Null, ErrorCode::BadRequest, message);
    }

    fn handle_text(&mut self, bytes: &[u8], t0: UnitStart) -> bool {
        match std::str::from_utf8(bytes) {
            Ok(text) => self.handle_line_at(text.trim_end_matches('\r'), t0),
            Err(_) => {
                // Non-UTF-8 request bytes get a typed error, never a
                // lossily mangled parse.
                let index = self.begin();
                self.fail(
                    index,
                    &Json::Null,
                    ErrorCode::BadRequest,
                    "request bytes are not valid UTF-8",
                );
                true
            }
        }
    }

    fn handle_frame(&mut self, payload: &[u8], t0: UnitStart) -> bool {
        match payload.split_first() {
            None => {
                let index = self.begin();
                self.fail(index, &Json::Null, ErrorCode::BadRequest, "empty frame");
                true
            }
            Some((&codec::KIND_JSON, body)) => self.handle_text(body, t0),
            Some((&codec::KIND_PARTITION, body)) => {
                let index = self.begin();
                match codec::decode_partition_payload(body) {
                    Ok(request) => self.dispatch(index, request, t0),
                    Err(e) => {
                        self.fail(index, &e.id, e.code, &e.message);
                        true
                    }
                }
            }
            Some((&codec::KIND_BATCH, body)) => match codec::batch_subframes(body) {
                Ok(subs) => {
                    for sub in subs {
                        if !self.handle_frame(&body[sub], t0) {
                            return false;
                        }
                    }
                    true
                }
                Err(message) => {
                    let index = self.begin();
                    self.fail(index, &Json::Null, ErrorCode::BadRequest, &message);
                    true
                }
            },
            Some((&kind, _)) => {
                let index = self.begin();
                self.fail(
                    index,
                    &Json::Null,
                    ErrorCode::BadRequest,
                    &format!("unknown frame kind 0x{kind:02x}"),
                );
                true
            }
        }
    }

    /// Decodes and submits one request line. Returns `false` when the
    /// session should stop reading (an in-band `shutdown`). Blank lines
    /// are skipped without a response.
    pub fn handle_line(&mut self, raw: &str) -> bool {
        self.handle_line_at(raw, UnitStart::now())
    }

    fn handle_line_at(&mut self, raw: &str, t0: UnitStart) -> bool {
        let line = raw.trim();
        if line.is_empty() {
            return true;
        }
        let index = self.begin();
        match protocol::parse_request_line(line) {
            Ok(request) => self.dispatch(index, request, t0),
            Err(e) => {
                self.fail(index, &e.id, e.code, &e.message);
                true
            }
        }
    }

    fn dispatch(&mut self, index: u64, request: protocol::Request, t0: UnitStart) -> bool {
        match request.op {
            RequestOp::Ping => {
                op_counter("ping").inc();
                self.shared
                    .set(index, protocol::op_response(&request.id, "ping"));
                request_seconds("ping").observe(t0.at.elapsed().as_secs_f64());
                true
            }
            RequestOp::Stats => {
                op_counter("stats").inc();
                // The snapshot counters are fixed now (in stream order);
                // the per-backend completed counts are filled in by the
                // writer when every preceding response has been delivered.
                self.shared.set_stats(
                    index,
                    request.id,
                    protocol::StatsSnapshot {
                        received: self.summary.received,
                        cache_hits: self.summary.cache_hits,
                        cache_misses: self.summary.cache_misses,
                        errors: self.summary.errors,
                        sessions: self.service.engine.sessions.load(Ordering::SeqCst),
                    },
                );
                request_seconds("stats").observe(t0.at.elapsed().as_secs_f64());
                true
            }
            RequestOp::Shutdown => {
                op_counter("shutdown").inc();
                self.service.initiate_shutdown();
                self.shared
                    .set(index, protocol::op_response(&request.id, "shutdown"));
                false
            }
            RequestOp::Hello => {
                op_counter("hello").inc();
                // A bare hello (no codec field) re-affirms JSON lines.
                let codec = request.codec.unwrap_or(WireCodec::JsonLines);
                self.pending_switch = Some(codec);
                self.shared
                    .set_switch(index, protocol::hello_response(&request.id, codec), codec);
                true
            }
            RequestOp::Partition => {
                op_counter("partition").inc();
                let spec = request.spec.expect("partition requests carry a spec");
                self.submit_partition(index, request.id, spec, request.trace, t0);
                true
            }
        }
    }

    fn shard(&self) -> Option<&str> {
        self.service.engine.config.shard_id.as_deref()
    }

    fn submit_partition(
        &mut self,
        index: u64,
        id: Json,
        spec: mg_core::service::PartitionSpec,
        wire_trace: Option<mg_obs::WireTrace>,
        t0: UnitStart,
    ) {
        let engine = &self.service.engine;
        let matrix = match engine.resolve_matrix(&spec.matrix) {
            Ok(matrix) => matrix,
            Err((code, message)) => {
                self.summary.errors += 1;
                server_metrics().errors.inc();
                self.shared.set(
                    index,
                    protocol::error_response(&id, code, &message, self.shard()),
                );
                request_seconds("partition").observe(t0.at.elapsed().as_secs_f64());
                return;
            }
        };
        let fingerprint = matrix_fingerprint(&matrix);
        let seed_base = spec.seed.unwrap_or(engine.config.master_seed);
        // Both sources are pre-validated canonical names: the request
        // field by the protocol decoder, the default by Service::start.
        let backend = parse_backend(spec.backend.unwrap_or(engine.config.default_backend))
            .expect("backend names are validated at decode/config time");
        let key: CacheKey = (
            fingerprint,
            backend.name(),
            spec.method,
            spec.epsilon.to_bits(),
            seed_base,
            spec.include_partition,
        );

        // Trace identity of this request, if any: a client-stamped trace
        // records directly; the slow sampler opens a speculative one that
        // only survives if the request proves slow. Either way the root
        // `request` span covers decode through encode, and the `trace`
        // field has already been stripped from everything that shapes
        // response bytes (the key, the spec, the encoders).
        let trace_slow = engine.config.trace_slow;
        let req_trace: Option<ReqTrace> = match wire_trace {
            Some(w) => Some(ReqTrace {
                ctx: TraceContext {
                    trace_id: w.trace_id,
                    span_id: trace::next_span_id(),
                    parent_id: w.parent,
                },
                speculative: false,
            }),
            None => trace_slow.map(|_| ReqTrace {
                ctx: trace::collector().begin_speculative(),
                speculative: true,
            }),
        };
        if let Some(rt) = &req_trace {
            trace::record_child(&rt.ctx, "decode", t0.sys_us, t0.at.elapsed());
        }
        let job_trace = req_trace.map(|rt| JobTrace {
            ctx: rt.ctx,
            queued_us: trace::now_us(),
            queued_at: Instant::now(),
        });

        let shared = self.shared.clone();
        let include_partition = spec.include_partition;
        let timing = engine.config.timing;
        let deliver_id = id.clone();
        // Count the job as outstanding from submission until delivery;
        // synchronous cache hits cancel out before anyone can observe
        // the increment through a stats slot.
        self.shared.outstanding.fetch_add(1, Ordering::SeqCst);
        let deliver: Deliver = Box::new(move |outcome, cached, secs| {
            shared.outstanding.fetch_sub(1, Ordering::SeqCst);
            let time_ms = timing.then_some(secs * 1000.0);
            let encode_start = req_trace
                .as_ref()
                .map(|_| (trace::now_us(), Instant::now()));
            let line =
                protocol::ok_response(&deliver_id, &outcome, cached, include_partition, time_ms);
            let total = t0.at.elapsed();
            if let Some(rt) = &req_trace {
                let (enc_us, enc_at) = encode_start.expect("captured with the trace");
                trace::record_child(&rt.ctx, "encode", enc_us, enc_at.elapsed());
                trace::record_span(
                    rt.ctx.trace_id,
                    rt.ctx.span_id,
                    rt.ctx.parent_id,
                    "request",
                    t0.sys_us,
                    total,
                );
                if rt.speculative {
                    if trace_slow.is_some_and(|threshold| total >= threshold) {
                        trace::collector().commit(rt.ctx.trace_id);
                    } else {
                        trace::collector().discard(rt.ctx.trace_id);
                    }
                }
            }
            request_seconds("partition").observe(total.as_secs_f64());
            // Tag freshly computed lines with their backend so the writer
            // can tally per-backend completions for deferred stats slots.
            shared.set_computed(index, line, (!cached).then_some(outcome.backend));
        });

        match engine.submit(key, backend, matrix, deliver, job_trace) {
            SubmitOutcome::CacheHit | SubmitOutcome::Follower => {
                self.summary.cache_hits += 1;
                server_metrics().cache_hits.inc();
            }
            SubmitOutcome::Queued => {
                self.summary.cache_misses += 1;
                server_metrics().cache_misses.inc();
            }
            SubmitOutcome::Rejected => {
                // The deliver callback never runs for rejected jobs.
                if let Some(rt) = &req_trace {
                    if rt.speculative {
                        trace::collector().discard(rt.ctx.trace_id);
                    }
                }
                self.shared.outstanding.fetch_sub(1, Ordering::SeqCst);
                self.summary.errors += 1;
                server_metrics().errors.inc();
                self.shared.set(
                    index,
                    protocol::error_response(
                        &id,
                        ErrorCode::ShuttingDown,
                        "server is draining; request rejected",
                        self.shard(),
                    ),
                );
            }
        }
    }

    /// Marks the input stream as finished so the writer can terminate
    /// once every pending response has been emitted.
    pub fn finish_input(&self) {
        self.shared.finish_input();
    }

    /// The session's counters so far (the `responses` field is only
    /// final after the writer finishes).
    pub fn summary(&self) -> SessionSummary {
        self.summary
    }
}

impl SessionDriver<'_> {
    /// Sets the final `responses` count (transports that pump the writer
    /// themselves feed the [`write_responses`] return value back here).
    pub(crate) fn record_responses(&mut self, written: u64) {
        self.summary.responses = written;
    }
}

impl Drop for SessionDriver<'_> {
    fn drop(&mut self) {
        self.service.engine.sessions.fetch_sub(1, Ordering::SeqCst);
        server_metrics().sessions_live.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_canonicalizes_the_default_backend_name() {
        let service = Service::start(ServiceConfig {
            default_backend: "PATOH",
            ..ServiceConfig::default()
        });
        assert_eq!(service.engine.config.default_backend, "patoh");
        service.shutdown_and_join();
    }

    #[test]
    #[should_panic(expected = "invalid default backend")]
    fn start_rejects_unregistered_default_backends() {
        let _ = Service::start(ServiceConfig {
            default_backend: "typo",
            ..ServiceConfig::default()
        });
    }
}

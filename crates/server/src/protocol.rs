//! The JSON-lines wire codec: request decoding and response encoding.
//!
//! One request per line, one response per line, streamed back in
//! submission order. The full schema (fields, defaults, error codes) is
//! specified in `crates/server/PROTOCOL.md`; this module is its only
//! implementation. Method names go through the canonical
//! [`Method::parse_name`] codec, matrix payloads through the same
//! [`Coo`] constructors and Matrix Market reader as the rest of the
//! workspace — so a malformed payload surfaces the library's typed errors
//! verbatim in the `message` field.

use crate::codec::WireCodec;
use crate::json::{obj, Json};
use mg_core::service::{ErrorCode, MatrixPayload, PartitionOutcome, PartitionSpec, RequestOp};
use mg_core::Method;
use mg_sparse::Idx;

/// A decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed verbatim (`null` when absent).
    pub id: Json,
    /// What the line asks for.
    pub op: RequestOp,
    /// The partition job; present iff `op == Partition`.
    pub spec: Option<PartitionSpec>,
    /// Shard addressing of a `stats` request (`{"op":"stats","shard":
    /// "s1"}`): a router forwards the line to the named shard; a plain
    /// server answers with its own counters regardless.
    pub shard: Option<String>,
    /// The wire codec a `hello` request asks to switch to (`{"op":
    /// "hello","codec":"binary"}`); `None` on a bare hello means "stay
    /// on JSON lines". Only present when `op == Hello`.
    pub codec: Option<WireCodec>,
    /// Propagated trace context (`{"trace":{"id":"…32 hex…","parent":
    /// "…16 hex…"}}`), only on partition requests. Tracing is strictly
    /// out-of-band: the field never changes response bytes (see
    /// PROTOCOL.md § Tracing).
    pub trace: Option<mg_obs::WireTrace>,
}

/// A request that failed to decode: the (best-effort) id to echo plus the
/// error class and message for the response line.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Echoed id (`null` when the line was not even valid JSON).
    pub id: Json,
    /// Machine-readable error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn new(id: &Json, code: ErrorCode, message: impl Into<String>) -> Self {
        RequestError {
            id: id.clone(),
            code,
            message: message.into(),
        }
    }
}

/// Default ε when a partition request has no `epsilon` field (the paper's
/// evaluation setting).
pub const DEFAULT_EPSILON: f64 = 0.03;

/// Default method when a partition request has no `method` field —
/// medium-grain with iterative refinement, Mondriaan 4.0's default.
pub const DEFAULT_METHOD: &str = "mg-ir";

/// Decodes one request line.
pub fn parse_request_line(line: &str) -> Result<Request, RequestError> {
    let doc = Json::parse(line)
        .map_err(|e| RequestError::new(&Json::Null, ErrorCode::BadJson, e.to_string()))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(RequestError::new(
            &Json::Null,
            ErrorCode::BadRequest,
            "request must be a JSON object",
        ));
    }
    let id = doc.get("id").cloned().unwrap_or(Json::Null);

    let op = match doc.get("op") {
        None => RequestOp::Partition,
        Some(Json::Str(s)) => match s.as_str() {
            "partition" => RequestOp::Partition,
            "ping" => RequestOp::Ping,
            "stats" => RequestOp::Stats,
            "shutdown" => RequestOp::Shutdown,
            "hello" => RequestOp::Hello,
            other => {
                return Err(RequestError::new(
                    &id,
                    ErrorCode::Unsupported,
                    format!("unsupported op {other:?}"),
                ))
            }
        },
        Some(_) => {
            return Err(RequestError::new(
                &id,
                ErrorCode::BadRequest,
                "\"op\" must be a string",
            ))
        }
    };
    let shard = match doc.get("shard") {
        None => None,
        Some(Json::Str(s)) if op == RequestOp::Stats => Some(s.clone()),
        Some(_) if op == RequestOp::Stats => {
            return Err(RequestError::new(
                &id,
                ErrorCode::BadRequest,
                "\"shard\" must be a string",
            ))
        }
        Some(_) => {
            return Err(RequestError::new(
                &id,
                ErrorCode::BadRequest,
                "\"shard\" only applies to stats requests",
            ))
        }
    };
    let codec = match doc.get("codec") {
        None => None,
        Some(Json::Str(s)) if op == RequestOp::Hello => match WireCodec::parse(s) {
            Some(c) => Some(c),
            None => {
                return Err(RequestError::new(
                    &id,
                    ErrorCode::BadRequest,
                    format!("unknown codec {s:?} (expected \"json\" or \"binary\")"),
                ))
            }
        },
        Some(_) if op == RequestOp::Hello => {
            return Err(RequestError::new(
                &id,
                ErrorCode::BadRequest,
                "\"codec\" must be a string",
            ))
        }
        Some(_) => {
            return Err(RequestError::new(
                &id,
                ErrorCode::BadRequest,
                "\"codec\" only applies to hello requests",
            ))
        }
    };
    let trace = match doc.get("trace") {
        None => None,
        Some(v) if op == RequestOp::Partition => Some(parse_trace_field(&id, v)?),
        Some(_) => {
            return Err(RequestError::new(
                &id,
                ErrorCode::BadRequest,
                "\"trace\" only applies to partition requests",
            ))
        }
    };
    if op != RequestOp::Partition {
        return Ok(Request {
            id,
            op,
            spec: None,
            shard,
            codec,
            trace: None,
        });
    }

    let method_name = match doc.get("method") {
        None => DEFAULT_METHOD.to_string(),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => {
            return Err(RequestError::new(
                &id,
                ErrorCode::BadRequest,
                "\"method\" must be a string",
            ))
        }
    };
    let method = Method::parse_name(&method_name)
        .map_err(|e| RequestError::new(&id, ErrorCode::BadMethod, e))?;

    let backend = match doc.get("backend") {
        None => None,
        Some(Json::Str(s)) => Some(
            mg_core::parse_backend(s)
                .map_err(|e| RequestError::new(&id, ErrorCode::UnknownBackend, e))?
                .name(),
        ),
        Some(_) => {
            return Err(RequestError::new(
                &id,
                ErrorCode::BadRequest,
                "\"backend\" must be a string",
            ))
        }
    };

    let epsilon = match doc.get("epsilon") {
        None => DEFAULT_EPSILON,
        Some(v) => match v.as_f64() {
            Some(x) if x.is_finite() && x >= 0.0 => x,
            _ => {
                return Err(RequestError::new(
                    &id,
                    ErrorCode::BadRequest,
                    "\"epsilon\" must be a finite non-negative number",
                ))
            }
        },
    };

    let seed = match doc.get("seed") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(s) => Some(s),
            None => {
                return Err(RequestError::new(
                    &id,
                    ErrorCode::BadRequest,
                    "\"seed\" must be a non-negative integer",
                ))
            }
        },
    };

    let include_partition = match doc.get("include_partition") {
        None => false,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => {
                return Err(RequestError::new(
                    &id,
                    ErrorCode::BadRequest,
                    "\"include_partition\" must be a boolean",
                ))
            }
        },
    };

    let matrix = decode_matrix(&id, doc.get("matrix"))?;

    Ok(Request {
        id,
        op,
        spec: Some(PartitionSpec {
            matrix,
            method,
            backend,
            epsilon,
            seed,
            include_partition,
        }),
        shard: None,
        codec: None,
        trace,
    })
}

/// Decodes the `trace` request field: an object with a mandatory 32-hex
/// `id` and an optional 16-hex `parent`. The field only carries
/// diagnostic identity, so validation is strict but the values never
/// reach a response.
fn parse_trace_field(id: &Json, v: &Json) -> Result<mg_obs::WireTrace, RequestError> {
    if !matches!(v, Json::Obj(_)) {
        return Err(RequestError::new(
            id,
            ErrorCode::BadRequest,
            "\"trace\" must be an object",
        ));
    }
    let trace_id = match v.get("id") {
        Some(Json::Str(s)) => mg_obs::trace::parse_trace_id(s).ok_or_else(|| {
            RequestError::new(
                id,
                ErrorCode::BadRequest,
                "\"trace.id\" must be 32 lowercase hex chars",
            )
        })?,
        _ => {
            return Err(RequestError::new(
                id,
                ErrorCode::BadRequest,
                "\"trace\" needs a string \"id\" field",
            ))
        }
    };
    let parent = match v.get("parent") {
        None => None,
        Some(Json::Str(s)) => Some(mg_obs::trace::parse_span_id(s).ok_or_else(|| {
            RequestError::new(
                id,
                ErrorCode::BadRequest,
                "\"trace.parent\" must be 16 lowercase hex chars",
            )
        })?),
        Some(_) => {
            return Err(RequestError::new(
                id,
                ErrorCode::BadRequest,
                "\"trace.parent\" must be a string",
            ))
        }
    };
    Ok(mg_obs::WireTrace { trace_id, parent })
}

fn decode_matrix(id: &Json, field: Option<&Json>) -> Result<MatrixPayload, RequestError> {
    let Some(m) = field else {
        return Err(RequestError::new(
            id,
            ErrorCode::BadRequest,
            "partition requests need a \"matrix\" field",
        ));
    };
    if !matches!(m, Json::Obj(_)) {
        return Err(RequestError::new(
            id,
            ErrorCode::BadRequest,
            "\"matrix\" must be an object",
        ));
    }
    let sources = [
        m.get("entries").is_some() || m.get("rows").is_some() || m.get("cols").is_some(),
        m.get("collection").is_some(),
        m.get("mtx").is_some(),
    ];
    match sources {
        [true, false, false] => {
            let rows = dim(id, m, "rows")?;
            let cols = dim(id, m, "cols")?;
            let raw = m.get("entries").and_then(Json::as_array).ok_or_else(|| {
                RequestError::new(
                    id,
                    ErrorCode::BadRequest,
                    "inline matrices need an \"entries\" array",
                )
            })?;
            let mut entries = Vec::with_capacity(raw.len());
            for (k, pair) in raw.iter().enumerate() {
                let coords = pair.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                    RequestError::new(
                        id,
                        ErrorCode::BadMatrix,
                        format!("entry {k} must be a [row, col] pair"),
                    )
                })?;
                let coord = |axis: usize, name: &str| -> Result<Idx, RequestError> {
                    coords[axis]
                        .as_u64()
                        .filter(|&v| v < u64::from(Idx::MAX))
                        .map(|v| v as Idx)
                        .ok_or_else(|| {
                            RequestError::new(
                                id,
                                ErrorCode::BadMatrix,
                                format!("entry {k}: {name} must be a 0-based u32 index"),
                            )
                        })
                };
                entries.push((coord(0, "row")?, coord(1, "col")?));
            }
            Ok(MatrixPayload::Inline {
                rows,
                cols,
                entries,
            })
        }
        [false, true, false] => {
            let name = m.get("collection").and_then(Json::as_str).ok_or_else(|| {
                RequestError::new(id, ErrorCode::BadRequest, "\"collection\" must be a string")
            })?;
            Ok(MatrixPayload::Collection(name.to_string()))
        }
        [false, false, true] => {
            let text = m.get("mtx").and_then(Json::as_str).ok_or_else(|| {
                RequestError::new(id, ErrorCode::BadRequest, "\"mtx\" must be a string")
            })?;
            Ok(MatrixPayload::MatrixMarket(text.to_string()))
        }
        _ => Err(RequestError::new(
            id,
            ErrorCode::BadRequest,
            "\"matrix\" must be exactly one of inline {rows, cols, entries}, \
             {collection}, or {mtx}",
        )),
    }
}

fn dim(id: &Json, m: &Json, name: &str) -> Result<Idx, RequestError> {
    m.get(name)
        .and_then(Json::as_u64)
        .filter(|&v| v < u64::from(Idx::MAX))
        .map(|v| v as Idx)
        .ok_or_else(|| {
            RequestError::new(
                id,
                ErrorCode::BadRequest,
                format!("inline matrices need a u32 \"{name}\" field"),
            )
        })
}

/// Encodes the success response for an executed (or cache-served) job.
///
/// Every field is a pure function of (matrix content, method, ε, seed) —
/// plus the submission-order-deterministic `cached` flag — so the line is
/// byte-identical whatever thread count or scheduling produced it.
/// `time_ms` is the only exception and is emitted solely when the server
/// runs with timing enabled (a non-deterministic, human-facing mode).
pub fn ok_response(
    id: &Json,
    outcome: &PartitionOutcome,
    cached: bool,
    include_partition: bool,
    time_ms: Option<f64>,
) -> String {
    let mut fields = vec![
        ("id", id.clone()),
        ("status", Json::Str("ok".into())),
        (
            "matrix",
            obj(vec![
                ("rows", Json::UInt(u64::from(outcome.rows))),
                ("cols", Json::UInt(u64::from(outcome.cols))),
                ("nnz", Json::UInt(outcome.nnz as u64)),
                (
                    "fingerprint",
                    Json::Str(format!("{:016x}", outcome.fingerprint)),
                ),
            ]),
        ),
        ("backend", Json::Str(outcome.backend.into())),
        ("method", Json::Str(outcome.method.into())),
        ("epsilon", Json::Num(outcome.epsilon)),
        ("seed", Json::UInt(outcome.seed)),
        ("volume", Json::UInt(outcome.volume)),
        ("imbalance", Json::Num(outcome.imbalance)),
        (
            "ir_iterations",
            Json::UInt(u64::from(outcome.ir_iterations)),
        ),
        (
            "part_nnz",
            Json::Arr(vec![
                Json::UInt(outcome.part_nnz[0]),
                Json::UInt(outcome.part_nnz[1]),
            ]),
        ),
        ("cached", Json::Bool(cached)),
    ];
    if include_partition {
        fields.push((
            "partition",
            Json::Arr(
                outcome
                    .partition
                    .iter()
                    .map(|&p| Json::UInt(u64::from(p)))
                    .collect(),
            ),
        ));
    }
    if let Some(ms) = time_ms {
        fields.push(("time_ms", Json::Num(ms)));
    }
    obj(fields).to_string()
}

/// Encodes an error response line. `shard` is the serving shard's
/// diagnostic tag (`--shard-id`), appended so a client behind a router
/// can see which shard rejected the request; untagged servers (the
/// default) omit the field entirely.
pub fn error_response(id: &Json, code: ErrorCode, message: &str, shard: Option<&str>) -> String {
    let mut fields = vec![
        ("id", id.clone()),
        ("status", Json::Str("error".into())),
        ("code", Json::Str(code.as_str().into())),
        ("message", Json::Str(message.into())),
    ];
    if let Some(shard) = shard {
        fields.push(("shard", Json::Str(shard.into())));
    }
    obj(fields).to_string()
}

/// Encodes the acknowledgement of a `hello` codec negotiation. The ack
/// itself travels in the codec that was in effect *before* the hello;
/// every unit after it uses the acknowledged codec.
pub fn hello_response(id: &Json, codec: WireCodec) -> String {
    obj(vec![
        ("id", id.clone()),
        ("status", Json::Str("ok".into())),
        ("op", Json::Str("hello".into())),
        ("codec", Json::Str(codec.name().into())),
    ])
    .to_string()
}

/// Encodes the response to a `ping` / `shutdown` op.
pub fn op_response(id: &Json, op: &str) -> String {
    obj(vec![
        ("id", id.clone()),
        ("status", Json::Str("ok".into())),
        ("op", Json::Str(op.into())),
    ])
    .to_string()
}

/// Session counters snapshotted when a `stats` request is decoded; all
/// are decided at submission time in stream order, so they are a pure
/// function of the request prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Request lines decoded so far (including this one).
    pub received: u64,
    /// Partition requests served from the cache or coalesced onto an
    /// in-flight twin.
    pub cache_hits: u64,
    /// Partition requests that missed the cache and queued a fresh job.
    pub cache_misses: u64,
    /// Error responses so far.
    pub errors: u64,
    /// Open sessions on the serving engine when this request was
    /// decoded (always counts at least the asking session).
    pub sessions: u64,
}

/// Encodes the response to a `stats` op. The snapshot counters reflect
/// the session stream strictly *up to and including* this request;
/// `completed` counts the jobs *computed* (not cache-served) per backend
/// among the responses delivered before this line — also a pure function
/// of the request prefix, because responses are delivered in submission
/// order. `queue_depth` is the session's still-undelivered partition
/// jobs at render time — deterministically 0 unless partition requests
/// trail the stats request in flight (see PROTOCOL.md). Backends with
/// zero completed jobs are omitted; `shard` is the serving shard's
/// diagnostic tag, omitted when the server is untagged.
pub fn stats_response(
    id: &Json,
    snapshot: StatsSnapshot,
    completed: &[(&'static str, u64)],
    queue_depth: u64,
    shard: Option<&str>,
) -> String {
    let mut fields = vec![
        ("id", id.clone()),
        ("status", Json::Str("ok".into())),
        ("op", Json::Str("stats".into())),
        ("received", Json::UInt(snapshot.received)),
        ("cache_hits", Json::UInt(snapshot.cache_hits)),
        ("cache_misses", Json::UInt(snapshot.cache_misses)),
        ("errors", Json::UInt(snapshot.errors)),
        ("sessions", Json::UInt(snapshot.sessions)),
        ("queue_depth", Json::UInt(queue_depth)),
        (
            "backends",
            Json::Obj(
                completed
                    .iter()
                    .filter(|(_, count)| *count > 0)
                    .map(|(name, count)| (name.to_string(), Json::UInt(*count)))
                    .collect(),
            ),
        ),
    ];
    if let Some(shard) = shard {
        fields.push(("shard", Json::Str(shard.into())));
    }
    obj(fields).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_minimal_inline_request() {
        let r =
            parse_request_line(r#"{"id":1,"matrix":{"rows":2,"cols":2,"entries":[[0,0],[1,1]]}}"#)
                .unwrap();
        assert_eq!(r.id, Json::UInt(1));
        assert_eq!(r.op, RequestOp::Partition);
        let spec = r.spec.unwrap();
        assert_eq!(spec.method, Method::MediumGrain { refine: true });
        assert_eq!(spec.backend, None, "no backend field means server default");
        assert_eq!(spec.epsilon, DEFAULT_EPSILON);
        assert_eq!(spec.seed, None);
        assert!(!spec.include_partition);
        assert_eq!(
            spec.matrix,
            MatrixPayload::Inline {
                rows: 2,
                cols: 2,
                entries: vec![(0, 0), (1, 1)]
            }
        );
    }

    #[test]
    fn decodes_and_validates_the_trace_field() {
        let tid = "00112233445566778899aabbccddeeff";
        let line = format!(
            r#"{{"id":1,"matrix":{{"rows":2,"cols":2,"entries":[[0,0],[1,1]]}},"trace":{{"id":"{tid}","parent":"0011223344556677"}}}}"#
        );
        let r = parse_request_line(&line).unwrap();
        let trace = r.trace.expect("trace field decodes");
        assert_eq!(trace.trace_id, 0x0011_2233_4455_6677_8899_aabb_ccdd_eeff);
        assert_eq!(trace.parent, Some(0x0011_2233_4455_6677));

        // `parent` is optional.
        let line = format!(
            r#"{{"matrix":{{"rows":1,"cols":1,"entries":[[0,0]]}},"trace":{{"id":"{tid}"}}}}"#
        );
        assert_eq!(
            parse_request_line(&line).unwrap().trace,
            Some(mg_obs::WireTrace {
                trace_id: 0x0011_2233_4455_6677_8899_aabb_ccdd_eeff,
                parent: None
            })
        );

        // Malformed ids, wrong shapes, and misplaced fields are typed errors.
        for bad in [
            r#"{"matrix":{"rows":1,"cols":1,"entries":[[0,0]]},"trace":"abc"}"#.to_string(),
            r#"{"matrix":{"rows":1,"cols":1,"entries":[[0,0]]},"trace":{"id":"xyz"}}"#.to_string(),
            format!(
                r#"{{"matrix":{{"rows":1,"cols":1,"entries":[[0,0]]}},"trace":{{"id":"{tid}","parent":7}}}}"#
            ),
            format!(r#"{{"op":"ping","trace":{{"id":"{tid}"}}}}"#),
        ] {
            let e = parse_request_line(&bad).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadRequest, "line: {bad}");
        }
        let e = parse_request_line(&format!(r#"{{"op":"ping","trace":{{"id":"{tid}"}}}}"#))
            .unwrap_err();
        assert!(
            e.message.contains("only applies to partition"),
            "{}",
            e.message
        );
    }

    #[test]
    fn decodes_hello_and_validates_the_codec_field() {
        let r = parse_request_line(r#"{"id":9,"op":"hello","codec":"binary"}"#).unwrap();
        assert_eq!(r.op, RequestOp::Hello);
        assert_eq!(r.codec, Some(WireCodec::Binary));
        assert_eq!(
            hello_response(&r.id, WireCodec::Binary),
            r#"{"id":9,"status":"ok","op":"hello","codec":"binary"}"#
        );

        // Omitting the codec is a no-op hello (stays on JSON lines).
        let r = parse_request_line(r#"{"op":"hello"}"#).unwrap();
        assert_eq!(r.codec, None);
        assert_eq!(
            hello_response(&r.id, WireCodec::JsonLines),
            r#"{"id":null,"status":"ok","op":"hello","codec":"json"}"#
        );

        // Unknown codec names and non-string values are typed errors.
        let e = parse_request_line(r#"{"op":"hello","codec":"msgpack"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert!(e.message.contains("msgpack"), "{}", e.message);
        let e = parse_request_line(r#"{"op":"hello","codec":2}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);

        // `codec` is meaningless outside hello.
        let e = parse_request_line(r#"{"op":"ping","codec":"json"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert!(e.message.contains("only applies to hello"), "{}", e.message);
    }

    #[test]
    fn decodes_collection_and_mtx_payloads() {
        let r = parse_request_line(
            r#"{"matrix":{"collection":"laplace2d_00_k10"},"method":"lb","epsilon":0.1,"seed":7}"#,
        )
        .unwrap();
        let spec = r.spec.unwrap();
        assert_eq!(
            spec.matrix,
            MatrixPayload::Collection("laplace2d_00_k10".into())
        );
        assert_eq!(spec.method, Method::LocalBest { refine: false });
        assert_eq!(spec.epsilon, 0.1);
        assert_eq!(spec.seed, Some(7));

        let r = parse_request_line(r#"{"matrix":{"mtx":"%%MatrixMarket ..."}}"#).unwrap();
        assert!(matches!(
            r.spec.unwrap().matrix,
            MatrixPayload::MatrixMarket(_)
        ));
    }

    #[test]
    fn decodes_the_backend_field_through_the_registry() {
        for (raw, canonical) in [
            ("geometric", "geometric"),
            ("coarse_grain", "coarse-grain"),
            ("PATOH", "patoh"),
        ] {
            let r = parse_request_line(&format!(
                r#"{{"matrix":{{"rows":2,"cols":2,"entries":[[0,0]]}},"backend":"{raw}"}}"#
            ))
            .unwrap();
            assert_eq!(r.spec.unwrap().backend, Some(canonical), "{raw}");
        }
    }

    #[test]
    fn unknown_backends_fail_with_their_own_code() {
        let err = parse_request_line(
            r#"{"id":9,"matrix":{"rows":2,"cols":2,"entries":[[0,0]]},"backend":"hmetis"}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownBackend);
        assert!(err.message.contains("hmetis"), "{}", err.message);
        assert!(
            err.message.contains("coarse-grain"),
            "message lists the registry: {}",
            err.message
        );
        let line = error_response(&err.id, err.code, &err.message, None);
        assert!(line.contains("\"code\":\"unknown_backend\""));
    }

    #[test]
    fn decodes_ops_without_matrices() {
        for (op, expected) in [
            ("ping", RequestOp::Ping),
            ("stats", RequestOp::Stats),
            ("shutdown", RequestOp::Shutdown),
        ] {
            let r = parse_request_line(&format!(r#"{{"id":"x","op":"{op}"}}"#)).unwrap();
            assert_eq!(r.op, expected);
            assert!(r.spec.is_none());
            assert!(r.shard.is_none());
        }
    }

    #[test]
    fn decodes_shard_addressed_stats() {
        let r = parse_request_line(r#"{"op":"stats","shard":"s1"}"#).unwrap();
        assert_eq!(r.op, RequestOp::Stats);
        assert_eq!(r.shard.as_deref(), Some("s1"));
        let bad = parse_request_line(r#"{"op":"stats","shard":7}"#).unwrap_err();
        assert_eq!(bad.code, ErrorCode::BadRequest);
        assert!(bad.message.contains("string"), "{}", bad.message);
        let misplaced = parse_request_line(r#"{"op":"ping","shard":"s1"}"#).unwrap_err();
        assert_eq!(misplaced.code, ErrorCode::BadRequest);
        assert!(misplaced.message.contains("stats"), "{}", misplaced.message);
    }

    #[test]
    fn rejects_bad_requests_with_the_right_code() {
        let cases: Vec<(&str, ErrorCode)> = vec![
            ("not json", ErrorCode::BadJson),
            ("[1,2]", ErrorCode::BadRequest),
            (r#"{"op":"dance"}"#, ErrorCode::Unsupported),
            (r#"{"op":7}"#, ErrorCode::BadRequest),
            (
                r#"{"matrix":{"rows":2,"cols":2,"entries":[[0,0]]},"method":"zz"}"#,
                ErrorCode::BadMethod,
            ),
            (
                r#"{"matrix":{"rows":2,"cols":2,"entries":[[0,0]]},"backend":7}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"matrix":{"rows":2,"cols":2,"entries":[[0,0]]},"epsilon":-1}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"matrix":{"rows":2,"cols":2,"entries":[[0,0]]},"seed":-3}"#,
                ErrorCode::BadRequest,
            ),
            (r#"{"method":"mg"}"#, ErrorCode::BadRequest),
            (r#"{"matrix":{}}"#, ErrorCode::BadRequest),
            (
                r#"{"matrix":{"collection":"a","mtx":"b"}}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"matrix":{"rows":2,"cols":2,"entries":[[0]]}}"#,
                ErrorCode::BadMatrix,
            ),
            (
                r#"{"matrix":{"rows":2,"cols":2,"entries":[[0,"x"]]}}"#,
                ErrorCode::BadMatrix,
            ),
        ];
        for (line, code) in cases {
            let err = parse_request_line(line).unwrap_err();
            assert_eq!(err.code, code, "line {line:?} → {err:?}");
        }
    }

    #[test]
    fn request_ids_are_echoed_even_on_errors() {
        let err = parse_request_line(r#"{"id":"req-9","op":"dance"}"#).unwrap_err();
        assert_eq!(err.id, Json::Str("req-9".into()));
        let line = error_response(&err.id, err.code, &err.message, None);
        assert!(line.starts_with(r#"{"id":"req-9","status":"error","code":"unsupported""#));
        assert!(!line.contains("shard"), "untagged servers omit the field");
    }

    #[test]
    fn shard_tags_append_to_error_responses() {
        let line = error_response(
            &Json::UInt(4),
            ErrorCode::UnknownCollection,
            "no such matrix",
            Some("s1"),
        );
        assert!(line.ends_with(r#","shard":"s1"}"#), "{line}");
    }

    #[test]
    fn ok_response_shape_is_stable() {
        let outcome = PartitionOutcome {
            rows: 2,
            cols: 3,
            nnz: 4,
            fingerprint: 0xAB,
            backend: "mondriaan",
            method: "mg-ir",
            epsilon: 0.03,
            seed: 99,
            volume: 1,
            imbalance: 0.0,
            ir_iterations: 2,
            part_nnz: [2, 2],
            partition: vec![0, 1, 1, 0],
        };
        let line = ok_response(&Json::UInt(5), &outcome, false, false, None);
        assert_eq!(
            line,
            "{\"id\":5,\"status\":\"ok\",\
             \"matrix\":{\"rows\":2,\"cols\":3,\"nnz\":4,\"fingerprint\":\"00000000000000ab\"},\
             \"backend\":\"mondriaan\",\
             \"method\":\"mg-ir\",\"epsilon\":0.03,\"seed\":99,\"volume\":1,\"imbalance\":0,\
             \"ir_iterations\":2,\"part_nnz\":[2,2],\"cached\":false}"
        );
        let with_partition = ok_response(&Json::Null, &outcome, true, true, None);
        assert!(with_partition.contains("\"partition\":[0,1,1,0]"));
        assert!(with_partition.contains("\"cached\":true"));
        assert!(!line.contains("time_ms"));
        let timed = ok_response(&Json::Null, &outcome, false, false, Some(1.5));
        assert!(timed.contains("\"time_ms\":1.5"));
    }

    #[test]
    fn stats_and_op_responses_are_deterministic() {
        let snapshot = StatsSnapshot {
            received: 3,
            cache_hits: 1,
            cache_misses: 1,
            errors: 0,
            sessions: 1,
        };
        assert_eq!(
            stats_response(
                &Json::UInt(3),
                snapshot,
                &[("mondriaan", 1), ("patoh", 0)],
                0,
                None
            ),
            "{\"id\":3,\"status\":\"ok\",\"op\":\"stats\",\"received\":3,\"cache_hits\":1,\
             \"cache_misses\":1,\"errors\":0,\"sessions\":1,\"queue_depth\":0,\
             \"backends\":{\"mondriaan\":1}}"
        );
        assert_eq!(
            stats_response(&Json::UInt(3), snapshot, &[], 2, Some("s0")),
            "{\"id\":3,\"status\":\"ok\",\"op\":\"stats\",\"received\":3,\"cache_hits\":1,\
             \"cache_misses\":1,\"errors\":0,\"sessions\":1,\"queue_depth\":2,\
             \"backends\":{},\"shard\":\"s0\"}"
        );
        assert_eq!(
            op_response(&Json::Null, "ping"),
            r#"{"id":null,"status":"ok","op":"ping"}"#
        );
    }
}

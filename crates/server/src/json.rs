//! A minimal JSON value type with a strict parser and a deterministic
//! writer.
//!
//! The workspace is fully offline (no serde), and the service protocol
//! only needs plain JSON-lines: objects, arrays, strings, numbers, bools,
//! null. Object key order is *preserved* on both parse and write, and the
//! writer emits no whitespace, so serialising a value is a deterministic
//! byte-level operation — the property the protocol's byte-identical
//! response contract rests on.
//!
//! Integers are kept exact: non-negative integer literals parse to
//! [`Json::UInt`] (full `u64` range, so 64-bit seeds survive a round
//! trip), negative ones to [`Json::Int`], and everything else to
//! [`Json::Num`].

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer literal (exact; covers full `u64` seeds).
    UInt(u64),
    /// Negative integer literal (exact).
    Int(i64),
    /// Any other number (fraction or exponent present, or out of integer
    /// range).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source (or construction) key order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Exact non-negative integer view.
    ///
    /// The float bound is strict: `u64::MAX as f64` rounds *up* to 2^64,
    /// so accepting `<=` would let `Num(18446744073709551616.0)` through
    /// and the saturating `as u64` cast would silently turn it into
    /// `u64::MAX`. Every f64 strictly below 2^64 is integral-exact here.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(_) => None,
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// Numeric view (lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialises without any whitespace, preserving object key order.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(u) => {
                out.push_str(&u.to_string());
            }
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (k, (key, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Finite floats print via Rust's shortest-roundtrip `Display`;
/// non-finite values (unrepresentable in JSON) degrade to `null`.
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&x.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it came from &str) and the run
                // stops only at ASCII delimiters, so the slice is valid.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 inside string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unfinished escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(unit).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape \\{}", other as char))),
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            value = (value << 4) | digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        } else {
            return Err(self.err("malformed number"));
        }
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit must follow '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit must follow exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        let x: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !x.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(x))
    }
}

/// Convenience constructor: an object from key/value pairs, preserving
/// order.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Num(0.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        let big = u64::MAX;
        let parsed = Json::parse(&big.to_string()).unwrap();
        assert_eq!(parsed, Json::UInt(big));
        assert_eq!(parsed.as_u64(), Some(big));
        assert_eq!(parsed.to_string(), big.to_string());
    }

    #[test]
    fn as_u64_rejects_floats_at_and_above_two_pow_64() {
        // `u64::MAX as f64` rounds UP to 2^64 exactly, so a `<=` bound
        // would accept this value and the saturating cast would silently
        // return u64::MAX. The bound must be strict.
        assert_eq!(Json::Num(18446744073709551616.0).as_u64(), None);
        assert_eq!(Json::Num(f64::INFINITY).as_u64(), None);
        // The largest f64 strictly below 2^64 is exact and must pass.
        let edge = 18446744073709549568.0_f64;
        assert!(edge < u64::MAX as f64);
        assert_eq!(Json::Num(edge).as_u64(), Some(18446744073709549568));
        // And a huge literal parses as UInt, never touching the float path.
        assert_eq!(
            Json::parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn parses_nested_structures_preserving_order() {
        let v = Json::parse(r#"{"b":1,"a":[true,{"x":null}],"c":"s"}"#).unwrap();
        assert_eq!(v.get("b"), Some(&Json::UInt(1)));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.to_string(), r#"{"b":1,"a":[true,{"x":null}],"c":"s"}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé😀");
        let reparsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01x",
            "1.",
            "\"unterminated",
            "nul",
            "[1]]",
            "{\"a\":1,}",
            "\"\\ud800\"",
            "--1",
            "1ee3",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_overlong_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn writes_deterministically_without_whitespace() {
        let v = obj(vec![
            ("id", Json::UInt(1)),
            ("x", Json::Num(0.03)),
            ("s", Json::Str("a\tb".into())),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"id":1,"x":0.03,"s":"a\tb","arr":[null,true]}"#
        );
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        let mut out = String::new();
        Json::Num(f64::NAN).write(&mut out);
        assert_eq!(out, "null");
    }
}

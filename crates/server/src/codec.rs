//! Wire framing: the codec seam between JSON lines and binary frames.
//!
//! Every session starts in [`WireCodec::JsonLines`] — one UTF-8 request
//! per `\n`-terminated line, one response per line, the golden contract.
//! A `{"op":"hello","codec":"binary"}` request switches the connection to
//! [`WireCodec::Binary`]: length-prefixed frames whose payloads carry
//! either a JSON document (requests *and* all responses — the response
//! text stays byte-identical to JSON-lines mode, so determinism is pinned
//! by a single encoder), a compact binary partition request decoded
//! zero-copy from the frame slice, or a batch of pipelined sub-requests.
//!
//! ## Frame layout (binary codec)
//!
//! ```text
//! frame   := len:u32-le payload            len = payload byte count
//! payload := kind:u8 body
//! kind    := 0x01 JSON document (UTF-8, no trailing newline)
//!          | 0x02 binary partition request
//!          | 0x03 batch: repeated (sublen:u32-le subpayload), where each
//!                 subpayload is a kind-0x01 or kind-0x02 payload
//! ```
//!
//! ## Binary partition body (kind 0x02)
//!
//! ```text
//! id_tag:u8                    0 = null | 1 = u64-le | 2 = string
//! [id:u64-le]                  if id_tag == 1
//! [id_len:varint id:utf8]      if id_tag == 2
//! flags:u8                     bit0 include_partition, bit1 has seed,
//!                              bit2 has backend, bit3 has epsilon,
//!                              bit4 has method
//! [method_len:varint  utf8]    if bit4
//! [backend_len:varint utf8]    if bit2
//! [epsilon:f64-le]             if bit3
//! [seed:u64-le]                if bit1
//! matrix_tag:u8                0 = inline | 1 = collection | 2 = mtx
//!   inline:     rows:varint cols:varint count:varint
//!               count × (row:varint col:varint)
//!   collection: len:varint name:utf8
//!   mtx:        len:varint text:utf8
//! ```
//!
//! Varints are unsigned LEB128 (7 payload bits per byte, little-endian,
//! high bit = continuation, at most 10 bytes). Inline coordinates are
//! parsed straight out of the request byte slice into the entry vector —
//! no intermediate JSON tree, string, or per-entry allocation.

use crate::json::{obj, Json};
use crate::protocol::{Request, RequestError};
use mg_core::service::{ErrorCode, MatrixPayload, PartitionSpec, RequestOp};
use mg_core::Method;
use mg_sparse::Idx;
use std::ops::Range;

/// The two wire codecs a session can speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireCodec {
    /// One UTF-8 JSON document per `\n`-terminated line (the default and
    /// the golden determinism contract).
    JsonLines,
    /// Length-prefixed binary frames (negotiated via `hello`).
    Binary,
}

impl WireCodec {
    /// The wire spelling used in `hello` requests and acks.
    pub fn name(self) -> &'static str {
        match self {
            WireCodec::JsonLines => "json",
            WireCodec::Binary => "binary",
        }
    }

    /// Parses a `hello` codec name.
    pub fn parse(name: &str) -> Option<WireCodec> {
        match name {
            "json" => Some(WireCodec::JsonLines),
            "binary" => Some(WireCodec::Binary),
            _ => None,
        }
    }
}

/// Payload kind: a UTF-8 JSON document.
pub const KIND_JSON: u8 = 0x01;
/// Payload kind: a compact binary partition request.
pub const KIND_PARTITION: u8 = 0x02;
/// Payload kind: a batch of pipelined sub-payloads.
pub const KIND_BATCH: u8 = 0x03;

/// Hard cap on a declared frame length. A peer announcing more than this
/// is treated as a framing error and the session ends — there is no way
/// to resynchronise after refusing to buffer a frame.
pub const MAX_FRAME: usize = 64 << 20;

/// A fatal framing violation (oversized frame): the reader cannot
/// resynchronise, so the session answers with one error and ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// Human-readable detail for the error response.
    pub message: String,
}

/// What one scanned unit is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    /// A JSON-lines request line (without its terminator).
    Line,
    /// A binary frame payload (kind byte + body).
    Frame,
}

/// Incremental splitter of a request byte stream into protocol units.
///
/// Transports push raw chunks in whatever sizes the socket or pipe hands
/// them and drain complete units out; partial lines and partial frames
/// stay buffered across any number of pushes (and read timeouts). The
/// scanner owns the codec state of the *inbound* direction — the session
/// driver signals a switch right after a `hello` is processed, so frames
/// already pipelined behind the hello parse under the new codec.
#[derive(Debug, Default)]
pub struct UnitScanner {
    buf: Vec<u8>,
    start: usize,
    codec: Option<WireCodec>,
}

impl UnitScanner {
    /// A scanner starting in JSON-lines mode.
    pub fn new() -> UnitScanner {
        UnitScanner::default()
    }

    /// The codec currently in effect.
    pub fn codec(&self) -> WireCodec {
        self.codec.unwrap_or(WireCodec::JsonLines)
    }

    /// Switches the inbound codec (after a `hello` was processed).
    pub fn set_codec(&mut self, codec: WireCodec) {
        self.codec = Some(codec);
    }

    /// Appends a raw chunk. May compact the internal buffer, so ranges
    /// returned by earlier [`UnitScanner::next_unit`] calls are invalid
    /// after a push — drain and process units between pushes.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= 64 * 1024 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete unit, if any. The range indexes into this
    /// scanner's buffer (see [`UnitScanner::bytes`]) and stays valid
    /// until the next `push`. Lines exclude their `\n` terminator (a
    /// trailing `\r` is left for the caller to trim); frames exclude
    /// their length prefix but include the kind byte.
    pub fn next_unit(&mut self) -> Result<Option<(UnitKind, Range<usize>)>, FrameError> {
        let rest = &self.buf[self.start..];
        match self.codec() {
            WireCodec::JsonLines => match rest.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let range = self.start..self.start + pos;
                    self.start += pos + 1;
                    Ok(Some((UnitKind::Line, range)))
                }
                None => Ok(None),
            },
            WireCodec::Binary => {
                if rest.len() < 4 {
                    return Ok(None);
                }
                let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
                if len > MAX_FRAME {
                    return Err(FrameError {
                        message: format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
                    });
                }
                if rest.len() < 4 + len {
                    return Ok(None);
                }
                let range = self.start + 4..self.start + 4 + len;
                self.start += 4 + len;
                Ok(Some((UnitKind::Frame, range)))
            }
        }
    }

    /// The bytes of a unit returned by [`UnitScanner::next_unit`].
    pub fn bytes(&self, range: &Range<usize>) -> &[u8] {
        &self.buf[range.clone()]
    }

    /// At end of input: the final *unterminated* line, if the stream is
    /// in JSON-lines mode and ended without a trailing `\n`. A client
    /// that closes the connection right after its last request must not
    /// lose it to a missing newline. A partial binary *frame* at EOF is
    /// unrecoverable by construction (its declared length never arrived)
    /// and yields `None`.
    pub fn take_eof_remainder(&mut self) -> Option<Vec<u8>> {
        if self.codec() != WireCodec::JsonLines || self.start >= self.buf.len() {
            return None;
        }
        let tail = self.buf[self.start..].to_vec();
        self.buf.clear();
        self.start = 0;
        Some(tail)
    }
}

/// Writes one response document in the given codec: the text plus `\n`
/// on JSON lines, a kind-`0x01` frame on binary. Responses are *always*
/// JSON documents — both codecs share one response encoder, so the
/// response text is byte-identical whichever framing carries it.
pub fn write_response_unit<W: std::io::Write>(
    output: &mut W,
    codec: WireCodec,
    text: &str,
) -> std::io::Result<()> {
    match codec {
        WireCodec::JsonLines => {
            output.write_all(text.as_bytes())?;
            output.write_all(b"\n")?;
        }
        WireCodec::Binary => {
            output.write_all(&(text.len() as u32 + 1).to_le_bytes())?;
            output.write_all(&[KIND_JSON])?;
            output.write_all(text.as_bytes())?;
        }
    }
    output.flush()
}

/// Wraps a payload in a length-prefixed frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// A kind-`0x01` payload carrying a JSON document.
pub fn json_payload(text: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + text.len());
    payload.push(KIND_JSON);
    payload.extend_from_slice(text.as_bytes());
    payload
}

/// A kind-`0x03` payload batching several sub-payloads into one frame.
pub fn batch_payload(subpayloads: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = subpayloads.iter().map(|p| 4 + p.len()).sum();
    let mut payload = Vec::with_capacity(1 + total);
    payload.push(KIND_BATCH);
    for sub in subpayloads {
        payload.extend_from_slice(&(sub.len() as u32).to_le_bytes());
        payload.extend_from_slice(sub);
    }
    payload
}

/// Splits a kind-`0x03` body (after the kind byte) into sub-payload
/// ranges relative to `body`. Fails on a truncated sub-length or a
/// sub-payload running past the end of the batch.
pub fn batch_subframes(body: &[u8]) -> Result<Vec<Range<usize>>, String> {
    let mut subs = Vec::new();
    let mut pos = 0usize;
    while pos < body.len() {
        if body.len() - pos < 4 {
            return Err(format!("truncated batch sub-frame length at byte {pos}"));
        }
        let len =
            u32::from_le_bytes([body[pos], body[pos + 1], body[pos + 2], body[pos + 3]]) as usize;
        pos += 4;
        if body.len() - pos < len {
            return Err(format!(
                "batch sub-frame of {len} bytes at byte {pos} runs past the batch end"
            ));
        }
        subs.push(pos..pos + len);
        pos += len;
    }
    Ok(subs)
}

fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow past 64 bits
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

const FLAG_INCLUDE_PARTITION: u8 = 1 << 0;
const FLAG_SEED: u8 = 1 << 1;
const FLAG_BACKEND: u8 = 1 << 2;
const FLAG_EPSILON: u8 = 1 << 3;
const FLAG_METHOD: u8 = 1 << 4;

const ID_NULL: u8 = 0;
const ID_UINT: u8 = 1;
const ID_STR: u8 = 2;

const MATRIX_INLINE: u8 = 0;
const MATRIX_COLLECTION: u8 = 1;
const MATRIX_MTX: u8 = 2;

/// Encodes a partition request as a kind-`0x02` payload. Returns `None`
/// for non-partition requests and for ids that are neither null, a u64,
/// nor a string (those must travel as kind-`0x01` JSON payloads).
pub fn partition_payload(request: &Request) -> Option<Vec<u8>> {
    let spec = match (request.op, &request.spec) {
        (RequestOp::Partition, Some(spec)) => spec,
        _ => return None,
    };
    let mut p = vec![KIND_PARTITION];
    match &request.id {
        Json::Null => p.push(ID_NULL),
        Json::UInt(u) => {
            p.push(ID_UINT);
            p.extend_from_slice(&u.to_le_bytes());
        }
        Json::Str(s) => {
            p.push(ID_STR);
            write_varint(&mut p, s.len() as u64);
            p.extend_from_slice(s.as_bytes());
        }
        _ => return None,
    }
    let mut flags = FLAG_METHOD | FLAG_EPSILON;
    if spec.include_partition {
        flags |= FLAG_INCLUDE_PARTITION;
    }
    if spec.seed.is_some() {
        flags |= FLAG_SEED;
    }
    if spec.backend.is_some() {
        flags |= FLAG_BACKEND;
    }
    p.push(flags);
    let method = spec.method.name();
    write_varint(&mut p, method.len() as u64);
    p.extend_from_slice(method.as_bytes());
    if let Some(backend) = spec.backend {
        write_varint(&mut p, backend.len() as u64);
        p.extend_from_slice(backend.as_bytes());
    }
    p.extend_from_slice(&spec.epsilon.to_le_bytes());
    if let Some(seed) = spec.seed {
        p.extend_from_slice(&seed.to_le_bytes());
    }
    match &spec.matrix {
        MatrixPayload::Inline {
            rows,
            cols,
            entries,
        } => {
            p.push(MATRIX_INLINE);
            write_varint(&mut p, u64::from(*rows));
            write_varint(&mut p, u64::from(*cols));
            write_varint(&mut p, entries.len() as u64);
            for &(i, j) in entries {
                write_varint(&mut p, u64::from(i));
                write_varint(&mut p, u64::from(j));
            }
        }
        MatrixPayload::Collection(name) => {
            p.push(MATRIX_COLLECTION);
            write_varint(&mut p, name.len() as u64);
            p.extend_from_slice(name.as_bytes());
        }
        MatrixPayload::MatrixMarket(text) => {
            p.push(MATRIX_MTX);
            write_varint(&mut p, text.len() as u64);
            p.extend_from_slice(text.as_bytes());
        }
    }
    Some(p)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn fixed<const N: usize>(&mut self) -> Option<[u8; N]> {
        let slice = self.bytes.get(self.pos..self.pos + N)?;
        self.pos += N;
        Some(slice.try_into().expect("slice of length N"))
    }

    fn varint(&mut self) -> Option<u64> {
        read_varint(self.bytes, &mut self.pos)
    }

    fn str(&mut self) -> Option<&'a str> {
        let len = self.varint()? as usize;
        let slice = self.bytes.get(self.pos..self.pos.checked_add(len)?)?;
        self.pos += len;
        std::str::from_utf8(slice).ok()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

fn truncated(id: &Json) -> RequestError {
    RequestError {
        id: id.clone(),
        code: ErrorCode::BadRequest,
        message: "truncated or malformed binary partition payload".into(),
    }
}

/// Decodes a kind-`0x02` body (after the kind byte) into a [`Request`],
/// enforcing the same validation — and producing the same error classes —
/// as the JSON decode path. Coordinates are read straight from the byte
/// slice; nothing is allocated per entry beyond the entry vector itself.
pub fn decode_partition_payload(body: &[u8]) -> Result<Request, RequestError> {
    let mut c = Cursor {
        bytes: body,
        pos: 0,
    };
    let id = match c.u8() {
        Some(ID_NULL) => Json::Null,
        Some(ID_UINT) => Json::UInt(u64::from_le_bytes(
            c.fixed::<8>().ok_or_else(|| truncated(&Json::Null))?,
        )),
        Some(ID_STR) => Json::Str(c.str().ok_or_else(|| truncated(&Json::Null))?.to_string()),
        _ => return Err(truncated(&Json::Null)),
    };
    let flags = c.u8().ok_or_else(|| truncated(&id))?;

    let method = if flags & FLAG_METHOD != 0 {
        let name = c.str().ok_or_else(|| truncated(&id))?;
        Method::parse_name(name).map_err(|e| RequestError {
            id: id.clone(),
            code: ErrorCode::BadMethod,
            message: e,
        })?
    } else {
        Method::parse_name(crate::protocol::DEFAULT_METHOD).expect("default method parses")
    };
    let backend = if flags & FLAG_BACKEND != 0 {
        let name = c.str().ok_or_else(|| truncated(&id))?;
        Some(
            mg_core::parse_backend(name)
                .map_err(|e| RequestError {
                    id: id.clone(),
                    code: ErrorCode::UnknownBackend,
                    message: e,
                })?
                .name(),
        )
    } else {
        None
    };
    let epsilon = if flags & FLAG_EPSILON != 0 {
        f64::from_le_bytes(c.fixed::<8>().ok_or_else(|| truncated(&id))?)
    } else {
        crate::protocol::DEFAULT_EPSILON
    };
    if !epsilon.is_finite() || epsilon < 0.0 {
        return Err(RequestError {
            id: id.clone(),
            code: ErrorCode::BadRequest,
            message: "\"epsilon\" must be a finite non-negative number".into(),
        });
    }
    let seed = if flags & FLAG_SEED != 0 {
        Some(u64::from_le_bytes(
            c.fixed::<8>().ok_or_else(|| truncated(&id))?,
        ))
    } else {
        None
    };

    let matrix = match c.u8() {
        Some(MATRIX_INLINE) => {
            let dim = |c: &mut Cursor<'_>, name: &str| -> Result<Idx, RequestError> {
                c.varint()
                    .filter(|&v| v < u64::from(Idx::MAX))
                    .map(|v| v as Idx)
                    .ok_or_else(|| RequestError {
                        id: id.clone(),
                        code: ErrorCode::BadRequest,
                        message: format!("inline matrices need a u32 \"{name}\" field"),
                    })
            };
            let rows = dim(&mut c, "rows")?;
            let cols = dim(&mut c, "cols")?;
            let count = c.varint().ok_or_else(|| truncated(&id))? as usize;
            // Each entry is at least two one-byte varints: refuse to
            // allocate for a count the remaining bytes cannot hold.
            if count > c.remaining() / 2 + 1 {
                return Err(truncated(&id));
            }
            let mut entries = Vec::with_capacity(count);
            for k in 0..count {
                let coord = |c: &mut Cursor<'_>, name: &str| -> Result<Idx, RequestError> {
                    c.varint()
                        .filter(|&v| v < u64::from(Idx::MAX))
                        .map(|v| v as Idx)
                        .ok_or_else(|| RequestError {
                            id: id.clone(),
                            code: ErrorCode::BadMatrix,
                            message: format!("entry {k}: {name} must be a 0-based u32 index"),
                        })
                };
                entries.push((coord(&mut c, "row")?, coord(&mut c, "col")?));
            }
            MatrixPayload::Inline {
                rows,
                cols,
                entries,
            }
        }
        Some(MATRIX_COLLECTION) => {
            MatrixPayload::Collection(c.str().ok_or_else(|| truncated(&id))?.to_string())
        }
        Some(MATRIX_MTX) => {
            MatrixPayload::MatrixMarket(c.str().ok_or_else(|| truncated(&id))?.to_string())
        }
        _ => return Err(truncated(&id)),
    };
    if c.remaining() != 0 {
        return Err(RequestError {
            id,
            code: ErrorCode::BadRequest,
            message: "trailing bytes after binary partition payload".into(),
        });
    }
    Ok(Request {
        id,
        op: RequestOp::Partition,
        spec: Some(PartitionSpec {
            matrix,
            method,
            backend,
            epsilon,
            seed,
            include_partition: flags & FLAG_INCLUDE_PARTITION != 0,
        }),
        shard: None,
        codec: None,
        // The binary frame schema carries no trace field; tracing rides
        // the JSON-lines codec only.
        trace: None,
    })
}

/// Renders a decoded request back to its canonical JSON-lines text (no
/// trailing newline). This is how a router forwards a *binary* request to
/// its JSON-lines shards: the re-rendered line is semantically identical
/// to the original unit, and for requests that were born as JSON the
/// original text is forwarded instead, so golden streams never change.
pub fn request_json_line(request: &Request) -> String {
    let mut fields = vec![("id", request.id.clone())];
    match request.op {
        RequestOp::Partition => {
            let spec = request
                .spec
                .as_ref()
                .expect("partition requests carry a spec");
            let matrix = match &spec.matrix {
                MatrixPayload::Inline {
                    rows,
                    cols,
                    entries,
                } => obj(vec![
                    ("rows", Json::UInt(u64::from(*rows))),
                    ("cols", Json::UInt(u64::from(*cols))),
                    (
                        "entries",
                        Json::Arr(
                            entries
                                .iter()
                                .map(|&(i, j)| {
                                    Json::Arr(vec![
                                        Json::UInt(u64::from(i)),
                                        Json::UInt(u64::from(j)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
                MatrixPayload::Collection(name) => {
                    obj(vec![("collection", Json::Str(name.clone()))])
                }
                MatrixPayload::MatrixMarket(text) => obj(vec![("mtx", Json::Str(text.clone()))]),
            };
            fields.push(("matrix", matrix));
            fields.push(("method", Json::Str(spec.method.name().into())));
            if let Some(backend) = spec.backend {
                fields.push(("backend", Json::Str(backend.into())));
            }
            fields.push(("epsilon", Json::Num(spec.epsilon)));
            if let Some(seed) = spec.seed {
                fields.push(("seed", Json::UInt(seed)));
            }
            if spec.include_partition {
                fields.push(("include_partition", Json::Bool(true)));
            }
            if let Some(trace) = request.trace {
                let mut tf = vec![("id", Json::Str(mg_obs::trace::trace_id_hex(trace.trace_id)))];
                if let Some(parent) = trace.parent {
                    tf.push(("parent", Json::Str(mg_obs::trace::span_id_hex(parent))));
                }
                fields.push(("trace", obj(tf)));
            }
        }
        RequestOp::Ping => fields.push(("op", Json::Str("ping".into()))),
        RequestOp::Stats => {
            fields.push(("op", Json::Str("stats".into())));
            if let Some(shard) = &request.shard {
                fields.push(("shard", Json::Str(shard.clone())));
            }
        }
        RequestOp::Shutdown => fields.push(("op", Json::Str("shutdown".into()))),
        RequestOp::Hello => {
            fields.push(("op", Json::Str("hello".into())));
            if let Some(codec) = request.codec {
                fields.push(("codec", Json::Str(codec.name().into())));
            }
        }
    }
    obj(fields).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request_line;

    #[test]
    fn varints_round_trip() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v), "{v}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80, 0x80], &mut pos), None, "truncated");
        // 11 continuation bytes: more than a u64 can hold.
        let long = [0xFFu8; 10];
        let mut pos = 0;
        assert_eq!(read_varint(&long, &mut pos), None, "overflow");
    }

    #[test]
    fn scanner_splits_lines_across_arbitrary_pushes() {
        let mut s = UnitScanner::new();
        let text = b"{\"op\":\"ping\"}\n{\"id\":2,\"op\":\"ping\"}\n";
        let mut units = Vec::new();
        for chunk in text.chunks(3) {
            s.push(chunk);
            while let Some((kind, range)) = s.next_unit().unwrap() {
                assert_eq!(kind, UnitKind::Line);
                units.push(String::from_utf8(s.bytes(&range).to_vec()).unwrap());
            }
        }
        assert_eq!(
            units,
            vec!["{\"op\":\"ping\"}", "{\"id\":2,\"op\":\"ping\"}"]
        );
        assert_eq!(s.take_eof_remainder(), None);
    }

    #[test]
    fn scanner_yields_the_unterminated_final_line_at_eof() {
        let mut s = UnitScanner::new();
        s.push(b"{\"op\":\"ping\"}\n{\"id\":9,\"op\":\"ping\"}");
        let (_, first) = s.next_unit().unwrap().unwrap();
        assert_eq!(s.bytes(&first), b"{\"op\":\"ping\"}");
        assert_eq!(s.next_unit().unwrap(), None, "no trailing newline yet");
        let tail = s.take_eof_remainder().unwrap();
        assert_eq!(tail, b"{\"id\":9,\"op\":\"ping\"}");
        assert_eq!(s.take_eof_remainder(), None, "remainder drains once");
    }

    #[test]
    fn scanner_reassembles_frames_byte_by_byte() {
        let mut s = UnitScanner::new();
        s.set_codec(WireCodec::Binary);
        let frame = encode_frame(&json_payload("{\"op\":\"ping\"}"));
        for &b in &frame {
            assert_eq!(s.next_unit().unwrap(), None);
            s.push(&[b]);
        }
        let (kind, range) = s.next_unit().unwrap().unwrap();
        assert_eq!(kind, UnitKind::Frame);
        assert_eq!(s.bytes(&range)[0], KIND_JSON);
        assert_eq!(&s.bytes(&range)[1..], b"{\"op\":\"ping\"}");
        assert_eq!(
            s.take_eof_remainder(),
            None,
            "binary mode has no line remainder"
        );
    }

    #[test]
    fn scanner_rejects_oversized_frames() {
        let mut s = UnitScanner::new();
        s.set_codec(WireCodec::Binary);
        s.push(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let err = s.next_unit().unwrap_err();
        assert!(err.message.contains("cap"), "{}", err.message);
    }

    #[test]
    fn partition_payloads_round_trip_through_binary() {
        let line = "{\"id\":\"job-1\",\"matrix\":{\"rows\":3,\"cols\":4,\
                    \"entries\":[[0,1],[2,3],[1,1]]},\"method\":\"mg\",\
                    \"backend\":\"geometric\",\"epsilon\":0.1,\"seed\":7,\
                    \"include_partition\":true}";
        let request = parse_request_line(line).unwrap();
        let payload = partition_payload(&request).unwrap();
        assert_eq!(payload[0], KIND_PARTITION);
        let decoded = decode_partition_payload(&payload[1..]).unwrap();
        assert_eq!(decoded, request);
        // And the canonical re-rendering parses back to the same request.
        let rendered = request_json_line(&decoded);
        assert_eq!(parse_request_line(&rendered).unwrap(), request);
    }

    #[test]
    fn minimal_partition_payloads_apply_protocol_defaults() {
        let request =
            parse_request_line("{\"matrix\":{\"rows\":2,\"cols\":2,\"entries\":[[0,0],[1,1]]}}")
                .unwrap();
        let payload = partition_payload(&request).unwrap();
        let decoded = decode_partition_payload(&payload[1..]).unwrap();
        assert_eq!(decoded, request);
        let spec = decoded.spec.unwrap();
        assert_eq!(spec.epsilon, crate::protocol::DEFAULT_EPSILON);
        assert_eq!(spec.seed, None);
        assert_eq!(spec.backend, None);
    }

    #[test]
    fn binary_decode_enforces_protocol_validation() {
        // Unknown method name → bad_method, same as the JSON path.
        let request =
            parse_request_line("{\"id\":4,\"matrix\":{\"rows\":2,\"cols\":2,\"entries\":[[0,0]]}}")
                .unwrap();
        let mut payload = partition_payload(&request).unwrap();
        // Corrupt the method string ("mg-ir" at a fixed offset: kind, tag,
        // 8-byte id, flags, len).
        let method_at = 1 + 1 + 8 + 1 + 1;
        assert_eq!(&payload[method_at..method_at + 5], b"mg-ir");
        payload[method_at] = b'z';
        let err = decode_partition_payload(&payload[1..]).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadMethod);
        assert_eq!(err.id, Json::UInt(4), "id still echoed");

        // Truncation anywhere → bad_request, never a panic.
        let good = partition_payload(&request).unwrap();
        for cut in 1..good.len() {
            let err = decode_partition_payload(&good[1..cut]).unwrap_err();
            assert!(
                matches!(err.code, ErrorCode::BadRequest | ErrorCode::BadMatrix),
                "cut at {cut}: {err:?}"
            );
        }

        // Out-of-range coordinate → bad_matrix with the entry index.
        let mut p = vec![ID_NULL, FLAG_EPSILON];
        p.extend_from_slice(&0.03f64.to_le_bytes());
        p.push(MATRIX_INLINE);
        write_varint(&mut p, 2);
        write_varint(&mut p, 2);
        write_varint(&mut p, 1);
        write_varint(&mut p, u64::from(u32::MAX));
        write_varint(&mut p, 0);
        let err = decode_partition_payload(&p).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadMatrix);
        assert!(err.message.contains("entry 0"), "{}", err.message);
    }

    #[test]
    fn batch_payloads_split_back_into_subframes() {
        let a = json_payload("{\"op\":\"ping\"}");
        let b = json_payload("{\"id\":2,\"op\":\"ping\"}");
        let batch = batch_payload(&[a.clone(), b.clone()]);
        assert_eq!(batch[0], KIND_BATCH);
        let subs = batch_subframes(&batch[1..]).unwrap();
        assert_eq!(subs.len(), 2);
        assert_eq!(&batch[1..][subs[0].clone()], a.as_slice());
        assert_eq!(&batch[1..][subs[1].clone()], b.as_slice());
        // Truncated sub-length and overlong sub-frame both fail.
        assert!(batch_subframes(&batch[1..3]).is_err());
        let mut bad = vec![9, 0, 0, 0];
        bad.push(KIND_JSON);
        assert!(batch_subframes(&bad).is_err());
    }

    #[test]
    fn request_json_line_covers_every_op() {
        for (line, expected) in [
            ("{\"id\":1,\"op\":\"ping\"}", "{\"id\":1,\"op\":\"ping\"}"),
            (
                "{\"op\":\"stats\",\"shard\":\"s1\"}",
                "{\"id\":null,\"op\":\"stats\",\"shard\":\"s1\"}",
            ),
            ("{\"op\":\"shutdown\"}", "{\"id\":null,\"op\":\"shutdown\"}"),
            (
                "{\"op\":\"hello\",\"codec\":\"binary\"}",
                "{\"id\":null,\"op\":\"hello\",\"codec\":\"binary\"}",
            ),
        ] {
            let request = parse_request_line(line).unwrap();
            assert_eq!(request_json_line(&request), expected, "{line}");
        }
    }
}

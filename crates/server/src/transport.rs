//! Transports: the same protocol over a stdio pipe or a threaded TCP
//! listener.
//!
//! Both transports drive the exact same [`SessionDriver`] /
//! [`crate::service::write_responses`] pair, so the response byte stream
//! for a given request stream is transport-independent. Stdio ("pipe
//! mode") is the testable, socket-free entry; TCP adds per-connection
//! sessions with a shared engine, socket-level backpressure (the bounded
//! submission queue blocks the reader, which stops draining the socket)
//! and graceful drain-on-shutdown. Each connection starts in JSON-lines
//! mode and may negotiate binary frames via `hello` (see
//! [`crate::codec`]).

use crate::codec::{UnitKind, UnitScanner};
use crate::service::{write_responses, Service, SessionDriver, SessionSummary};
use std::io::{BufRead, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Runs one session over arbitrary reader/writer halves (pipe mode).
/// Returns when the input is exhausted or an in-band `shutdown` arrives.
pub fn serve_pipe<R: BufRead, W: Write + Send>(
    service: &Service,
    input: R,
    output: W,
) -> SessionSummary {
    service.run_session(input, output)
}

/// Runs a session over the process's stdin/stdout.
pub fn serve_stdio(service: &Service) -> SessionSummary {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    service.run_session(stdin.lock(), stdout)
}

/// A running TCP front end.
pub struct TcpServer {
    /// The bound address (useful with port 0).
    pub local_addr: SocketAddr,
    accept_thread: std::thread::JoinHandle<()>,
    service: Arc<Service>,
    live_sessions: Arc<AtomicUsize>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:7077`, port 0 for ephemeral) and
    /// starts accepting connections, one session thread per connection.
    pub fn bind(service: Arc<Service>, addr: &str) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let accept_service = service.clone();
        let live_sessions = Arc::new(AtomicUsize::new(0));
        let live = live_sessions.clone();
        let accept_thread = std::thread::Builder::new()
            .name("mg-server-accept".into())
            .spawn(move || accept_loop(&accept_service, &listener, &live))?;
        Ok(TcpServer {
            local_addr,
            accept_thread,
            service,
            live_sessions,
        })
    }

    /// Session handles the accept loop currently retains: the sessions
    /// still running plus any finished ones not yet reaped by the next
    /// sweep. Stays bounded by the number of *concurrently open*
    /// connections, however many have come and gone.
    pub fn live_sessions(&self) -> usize {
        self.live_sessions.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop (and every session it spawned) to end,
    /// then drains the engine. Returns once every accepted request has
    /// been answered — the graceful-shutdown path.
    pub fn join(self) {
        self.accept_thread.join().expect("accept loop panicked");
        self.service.shutdown_and_join();
    }

    /// Initiates shutdown and then drains like [`TcpServer::join`].
    pub fn shutdown_and_join(self) {
        self.service.initiate_shutdown();
        self.join();
    }
}

fn accept_loop(service: &Arc<Service>, listener: &TcpListener, live: &Arc<AtomicUsize>) {
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        // Reap finished sessions on every pass (including the idle 5 ms
        // ticks), so a long-lived server holds handles only for
        // connections that are actually open — not one per connection
        // ever accepted.
        sessions.retain(|session| !session.is_finished());
        live.store(sessions.len(), Ordering::SeqCst);
        if service.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let session_service = service.clone();
                match std::thread::Builder::new()
                    .name("mg-server-session".into())
                    .spawn(move || tcp_session(&session_service, stream))
                {
                    Ok(handle) => sessions.push(handle),
                    Err(_) => break,
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Drain: wait for every open session to finish its stream. Session
    // readers notice the shutdown flag within their read timeout, stop
    // reading, and their writers flush all in-flight responses first.
    for session in sessions {
        let _ = session.join();
    }
    live.store(0, Ordering::SeqCst);
}

/// One TCP connection: a timeout-aware read loop on this thread, the
/// response writer on a second thread over a cloned stream handle.
fn tcp_session(service: &Arc<Service>, mut stream: TcpStream) {
    // The read timeout is what lets an idle connection notice shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut driver: SessionDriver<'_> = service.open_session();
    let shared = driver.shared();
    let writer = std::thread::Builder::new()
        .name("mg-server-writer".into())
        .spawn(move || {
            let mut out = write_half;
            write_responses(&shared, &mut out)
        });
    let Ok(writer) = writer else {
        driver.finish_input();
        return;
    };

    // Raw reads into the unit scanner: a request split across packets (or
    // across read timeouts) stays buffered until its terminator — or its
    // declared frame length — arrives, whatever the codec.
    let mut scanner = UnitScanner::new();
    let mut chunk = [0u8; 16 * 1024];
    'session: loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Client closed the connection. A final request without
                // its `\n` terminator is still a request — process the
                // buffered remainder instead of silently dropping it.
                if let Some(tail) = scanner.take_eof_remainder() {
                    driver.handle_unit(UnitKind::Line, &tail);
                }
                break;
            }
            Ok(n) => {
                scanner.push(&chunk[..n]);
                loop {
                    match scanner.next_unit() {
                        Ok(Some((kind, range))) => {
                            let go = driver.handle_unit(kind, scanner.bytes(&range));
                            if let Some(codec) = driver.take_codec_switch() {
                                scanner.set_codec(codec);
                            }
                            if !go {
                                break 'session;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Unresynchronisable framing violation: answer
                            // with a typed error, then end the session.
                            driver.protocol_error(&e.message);
                            break 'session;
                        }
                    }
                }
            }
            // A timeout leaves any partial unit in the scanner and we
            // simply retry; the next successful read appends the rest.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if service.is_shutting_down() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    driver.finish_input();
    if let Ok(written) = writer.join() {
        driver.record_responses(written);
    }
}

//! Server-side metric handles in the process-global `mg-obs` registry.
//!
//! Handles are resolved once ([`server_metrics`]) so hot paths pay a
//! relaxed atomic op, not a registry lookup. Everything here is
//! *observability only*: the deterministic `stats` op reads the
//! engine-local counters in `service.rs`, never these globals (several
//! services in one process — tests, the router harness — share this
//! registry).

use mg_obs::{registry, Counter, Gauge, Histogram, PHASE_BOUNDS};
use std::sync::OnceLock;

pub(crate) struct ServerMetrics {
    /// Every decoded request unit, including ones that fail to parse.
    pub requests: Counter,
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub errors: Counter,
    /// Open session drivers (stdio and TCP alike).
    pub sessions_live: Gauge,
    /// Jobs waiting in the engine's bounded submission queue.
    pub queue_depth: Gauge,
    /// Jobs of the micro-batch currently on the worker pool.
    pub inflight: Gauge,
}

/// The shared handle set, registered on first use.
pub(crate) fn server_metrics() -> &'static ServerMetrics {
    static METRICS: OnceLock<ServerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = registry();
        ServerMetrics {
            requests: r.counter("mgpart_requests_total", &[]),
            cache_hits: r.counter("mgpart_cache_hits_total", &[]),
            cache_misses: r.counter("mgpart_cache_misses_total", &[]),
            errors: r.counter("mgpart_errors_total", &[]),
            sessions_live: r.gauge("mgpart_sessions_live", &[]),
            queue_depth: r.gauge("mgpart_queue_depth", &[]),
            inflight: r.gauge("mgpart_inflight", &[]),
        }
    })
}

/// Per-op request counter (`op="partition"|"ping"|...`).
pub(crate) fn op_counter(op: &'static str) -> Counter {
    registry().counter("mgpart_requests_op_total", &[("op", op)])
}

/// End-to-end request latency histogram (`op="partition"|"ping"|...`):
/// unit decode through response encode, measured at delivery. Shares the
/// phase bucket ladder (10 µs … 10 s) so per-phase and per-request
/// latencies read on one scale.
pub(crate) fn request_seconds(op: &'static str) -> Histogram {
    registry().histogram("mgpart_request_seconds", &[("op", op)], PHASE_BOUNDS)
}

/// Counts request payload bytes by wire codec (`json` or `binary`).
pub(crate) fn bytes_in(codec: &'static str, n: u64) {
    registry()
        .counter("mgpart_bytes_in_total", &[("codec", codec)])
        .add(n);
}

/// Counts response payload bytes by wire codec. Responses are always
/// JSON text; the label records the framing they ride on.
pub(crate) fn bytes_out(codec: &'static str, n: u64) {
    registry()
        .counter("mgpart_bytes_out_total", &[("codec", codec)])
        .add(n);
}

//! # mg-server — the streaming partition service
//!
//! A long-running front end on top of the batch engine: clients submit
//! JSON-lines partition requests (inline COO triplets, a named collection
//! matrix, or a Matrix Market payload, plus method/ε/seed) and receive
//! JSON-lines responses (volume, imbalance, per-phase stats, optionally
//! the full assignment) streamed back **in submission order** while jobs
//! execute **out of order** on the work-stealing pool of
//! [`mg_collection::batch`].
//!
//! Two transports share one protocol:
//!
//! * **pipe mode** ([`serve_pipe`] / [`serve_stdio`]) — newline-delimited
//!   requests on any reader, responses on any writer; fully testable
//!   without sockets, and what `mgpart serve` runs when `--listen` is
//!   omitted;
//! * **TCP** ([`TcpServer`]) — a threaded `std::net` listener with one
//!   session per connection over a shared engine and response cache.
//!
//! The engine provides bounded-queue backpressure, an LRU response cache
//! keyed by (matrix fingerprint, method, ε, seed), graceful
//! drain-on-shutdown, and the workspace's determinism contract extended
//! to serving: a session's response bytes are a pure function of its
//! request bytes, independent of thread count (see `PROTOCOL.md`).
//!
//! ```
//! use mg_server::{Service, ServiceConfig};
//!
//! let service = Service::start(ServiceConfig::default());
//! let script = concat!(
//!     r#"{"id":1,"matrix":{"rows":2,"cols":2,"entries":[[0,0],[1,1]]}}"#,
//!     "\n",
//!     r#"{"id":2,"op":"ping"}"#,
//!     "\n",
//! );
//! let mut out = Vec::new();
//! service.run_session(script.as_bytes(), &mut out);
//! let text = String::from_utf8(out).unwrap();
//! assert_eq!(text.lines().count(), 2);
//! assert!(text.lines().next().unwrap().contains("\"status\":\"ok\""));
//! ```

pub mod cache;
pub mod codec;
pub mod json;
mod metrics;
pub mod protocol;
pub mod service;
pub mod transport;

pub use cache::LruCache;
pub use codec::{UnitKind, UnitScanner, WireCodec};
pub use json::{Json, JsonError};
pub use protocol::{
    error_response, hello_response, ok_response, op_response, parse_request_line, stats_response,
    Request, RequestError, StatsSnapshot, DEFAULT_EPSILON, DEFAULT_METHOD,
};
pub use service::{Service, ServiceConfig, SessionDriver, SessionSummary};
pub use transport::{serve_pipe, serve_stdio, TcpServer};

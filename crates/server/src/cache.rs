//! A small LRU response cache.
//!
//! Keyed by (matrix fingerprint, method, ε, requested seed) — see
//! [`crate::service`] — and holding `Arc`s to finished outcomes. Recency
//! is tracked with a monotone counter and a `BTreeMap` recency index, so
//! `get`/`insert` are `O(log n)` and eviction always removes the
//! least-recently-used entry. Capacity 0 disables the cache entirely.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A least-recently-used map with a fixed capacity.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        let (value, stamp) = self.map.get_mut(key)?;
        self.recency.remove(stamp);
        *stamp = tick;
        self.recency.insert(tick, key.clone());
        Some(value)
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if the cache would overflow. No-op at capacity 0.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, stamp)) = self.map.get(&key) {
            self.recency.remove(stamp);
        }
        self.map.insert(key.clone(), (value, tick));
        self.recency.insert(tick, key);
        while self.map.len() > self.capacity {
            let (&oldest, _) = self.recency.iter().next().expect("recency desynced");
            let victim = self.recency.remove(&oldest).expect("recency desynced");
            self.map.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh a
        c.insert("c", 3); // evicts b
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        c.insert("c", 3); // evicts b, not a
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    fn heavy_churn_keeps_map_and_recency_in_sync() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.insert(i % 13, i);
            if i % 3 == 0 {
                c.get(&(i % 7));
            }
            assert!(c.len() <= 8);
            assert_eq!(c.map.len(), c.recency.len());
        }
    }
}

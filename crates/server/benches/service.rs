//! Criterion benchmarks for the serving layer: end-to-end pipe-mode
//! sessions (parse → schedule → execute → stream), cache-hit turnaround,
//! and the protocol codec on its own. These isolate the service overhead
//! from the partitioning kernels the `bipartition` bench already covers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mg_server::{parse_request_line, Service, ServiceConfig};

/// A small but non-trivial request script: distinct Laplacian-band
/// matrices as inline COO, mixed methods.
fn script(requests: usize, distinct: usize) -> String {
    let mut out = String::new();
    for r in 0..requests {
        let variant = r % distinct;
        let n = 24 + variant as u32;
        let mut entries = String::new();
        for i in 0..n {
            for j in [i.saturating_sub(1), i, (i + 1).min(n - 1)] {
                if !entries.is_empty() {
                    entries.push(',');
                }
                entries.push_str(&format!("[{i},{j}]"));
            }
        }
        let method = if variant.is_multiple_of(2) {
            "mg-ir"
        } else {
            "lb"
        };
        out.push_str(&format!(
            "{{\"id\":{r},\"matrix\":{{\"rows\":{n},\"cols\":{n},\"entries\":[{entries}]}},\
             \"method\":\"{method}\"}}\n"
        ));
    }
    out
}

fn bench_pipe_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_pipe");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("fresh_16", threads),
            &threads,
            |b, &threads| {
                let text = script(16, 16);
                b.iter(|| {
                    let service = Service::start(ServiceConfig {
                        threads,
                        ..ServiceConfig::default()
                    });
                    let mut out = Vec::new();
                    let summary = service.run_session(text.as_bytes(), &mut out);
                    assert_eq!(summary.responses, 16);
                    out
                })
            },
        );
    }
    group.finish();
}

fn bench_cache_hits(c: &mut Criterion) {
    // 64 requests over 4 distinct jobs: 60 responses come from the cache
    // or in-flight coalescing, measuring service overhead rather than
    // partitioning time.
    let text = script(64, 4);
    c.bench_function("service_cached_64_of_4", |b| {
        b.iter(|| {
            let service = Service::start(ServiceConfig::default());
            let mut out = Vec::new();
            let summary = service.run_session(text.as_bytes(), &mut out);
            assert_eq!(summary.responses, 64);
            assert_eq!(summary.cache_hits, 60);
            out
        })
    });
}

fn bench_protocol_codec(c: &mut Criterion) {
    let line = script(1, 1);
    let line = line.trim();
    c.bench_function("protocol_parse_request", |b| {
        b.iter(|| parse_request_line(line).unwrap())
    });
}

criterion_group!(
    benches,
    bench_pipe_sessions,
    bench_cache_hits,
    bench_protocol_codec
);
criterion_main!(benches);

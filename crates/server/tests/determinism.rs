//! The service determinism contract (the sweep-level contract of
//! `crates/bench/tests/determinism.rs` extended to serving): the same
//! request script replayed through the stdio/pipe transport must produce
//! a byte-identical response stream at every `--threads` count, because
//! every job is seeded from its (matrix fingerprint, method, ε, seed) key
//! and the `cached` flag is decided in submission order.

use mg_collection::CollectionSpec;
use mg_server::{Service, ServiceConfig};
use mg_sparse::{gen, io, Coo};

fn inline_payload(a: &Coo) -> String {
    let entries: Vec<String> = a.iter().map(|(i, j)| format!("[{i},{j}]")).collect();
    format!(
        "{{\"rows\":{},\"cols\":{},\"entries\":[{}]}}",
        a.rows(),
        a.cols(),
        entries.join(",")
    )
}

fn mtx_payload(a: &Coo) -> String {
    let mut text = Vec::new();
    io::write_matrix_market(a, &mut text).unwrap();
    let text = String::from_utf8(text).unwrap();
    format!(
        "{{\"mtx\":\"{}\"}}",
        text.replace('\\', "\\\\")
            .replace('\n', "\\n")
            .replace('"', "\\\"")
    )
}

/// A script exercising every request shape: three matrix payload kinds,
/// several methods and epsilons, explicit seeds, duplicates (cache hits
/// and in-flight coalescing), include_partition, malformed lines, and the
/// auxiliary ops.
fn script() -> String {
    let laplace = gen::laplacian_2d(9, 7);
    let arrow = gen::arrow(40, 3);
    let band = gen::laplacian_2d_9pt(8, 6);
    let mut lines: Vec<String> = Vec::new();
    let mut id = 0u64;
    let mut push = |line: String| {
        lines.push(line);
    };
    for method in ["mg", "mg-ir", "lb", "fg-ir", "rn", "cn-ir"] {
        push(format!(
            "{{\"id\":{id},\"matrix\":{},\"method\":\"{method}\"}}",
            inline_payload(&laplace)
        ));
        id += 1;
    }
    for eps in ["0.03", "0.1", "0.3"] {
        push(format!(
            "{{\"id\":{id},\"matrix\":{},\"method\":\"mg-ir\",\"epsilon\":{eps}}}",
            inline_payload(&arrow)
        ));
        id += 1;
    }
    // Explicit seeds, including one > 2^53 to exercise exact u64 parsing.
    for seed in ["7", "18446744073709551615"] {
        push(format!(
            "{{\"id\":{id},\"matrix\":{},\"seed\":{seed}}}",
            inline_payload(&band)
        ));
        id += 1;
    }
    // The same matrix as a Matrix Market payload: same fingerprint, so
    // this coalesces with the earlier inline mg-ir request.
    push(format!(
        "{{\"id\":{id},\"matrix\":{},\"method\":\"mg-ir\"}}",
        mtx_payload(&laplace)
    ));
    id += 1;
    // Collection matrices.
    push(format!(
        "{{\"id\":{id},\"matrix\":{{\"collection\":\"laplace2d_00_k20\"}},\"method\":\"lb-ir\"}}"
    ));
    id += 1;
    // Straight duplicates → cached: true.
    for method in ["mg", "lb"] {
        push(format!(
            "{{\"id\":{id},\"matrix\":{},\"method\":\"{method}\"}}",
            inline_payload(&laplace)
        ));
        id += 1;
    }
    // Full assignment requested.
    push(format!(
        "{{\"id\":{id},\"matrix\":{},\"include_partition\":true}}",
        inline_payload(&band)
    ));
    id += 1;
    // Errors must be deterministic too.
    push("this is not json".to_string());
    push(format!(
        "{{\"id\":{id},\"matrix\":{{\"collection\":\"no_such_matrix\"}}}}"
    ));
    id += 1;
    push(format!(
        "{{\"id\":{id},\"method\":\"zz\",\"matrix\":{{\"rows\":1,\"cols\":1,\"entries\":[]}}}}"
    ));
    id += 1;
    // Auxiliary ops.
    push(format!("{{\"id\":{id},\"op\":\"ping\"}}"));
    id += 1;
    push(format!("{{\"id\":{id},\"op\":\"stats\"}}"));
    let mut text = lines.join("\n");
    text.push('\n');
    text
}

fn run(threads: usize, max_batch: usize) -> String {
    let service = Service::start(ServiceConfig {
        threads,
        max_batch,
        collection: CollectionSpec {
            seed: 11,
            scale: mg_collection::CollectionScale::Smoke,
        },
        ..ServiceConfig::default()
    });
    let mut out = Vec::new();
    let summary = service.run_session(script().as_bytes(), &mut out);
    assert_eq!(summary.received, summary.responses);
    String::from_utf8(out).unwrap()
}

#[test]
fn response_stream_is_byte_identical_for_1_2_4_8_threads() {
    let baseline = run(1, 32);
    assert!(!baseline.is_empty());
    assert!(baseline.contains("\"cached\":true"));
    assert!(baseline.contains("\"status\":\"error\""));
    for threads in [2usize, 4, 8] {
        assert_eq!(
            baseline,
            run(threads, 32),
            "response stream diverged at {threads} threads"
        );
    }
}

#[test]
fn response_stream_is_independent_of_micro_batch_slicing() {
    // Batch boundaries change which jobs share a pool invocation; the
    // bytes must not care.
    let baseline = run(4, 32);
    for max_batch in [1usize, 2, 5] {
        assert_eq!(
            baseline,
            run(4, max_batch),
            "response stream diverged at max_batch={max_batch}"
        );
    }
}

#[test]
fn repeated_sessions_are_byte_identical() {
    assert_eq!(run(3, 8), run(3, 8));
}

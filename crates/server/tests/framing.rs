//! Binary framing integration tests: hello negotiation, the per-codec
//! determinism contract (response texts byte-identical to JSON-lines
//! mode at any thread count), batch pipelining, and framing errors.

use mg_collection::{CollectionScale, CollectionSpec};
use mg_server::codec::{
    batch_payload, encode_frame, json_payload, partition_payload, KIND_JSON, MAX_FRAME,
};
use mg_server::{parse_request_line, Service, ServiceConfig};
use std::sync::Arc;

fn smoke_service(threads: usize) -> Arc<Service> {
    Service::start(ServiceConfig {
        threads,
        collection: CollectionSpec {
            seed: 11,
            scale: CollectionScale::Smoke,
        },
        ..ServiceConfig::default()
    })
}

const HELLO_BINARY: &str = "{\"id\":\"hs\",\"op\":\"hello\",\"codec\":\"binary\"}";

/// A session script: the binary hello as a JSON line, then every request
/// as a binary frame — partition requests in the compact kind-0x02 form
/// when they qualify, everything else as a kind-0x01 JSON payload.
fn binary_script(requests: &[&str]) -> Vec<u8> {
    let mut script = format!("{HELLO_BINARY}\n").into_bytes();
    for line in requests {
        let payload = parse_request_line(line)
            .ok()
            .and_then(|request| partition_payload(&request))
            .unwrap_or_else(|| json_payload(line));
        script.extend_from_slice(&encode_frame(&payload));
    }
    script
}

/// Splits a response byte stream back into response texts, tracking the
/// codec switch: JSON lines until a binary hello ack, frames after.
fn response_texts(out: &[u8]) -> Vec<String> {
    let mut texts = Vec::new();
    let mut pos = 0;
    let mut binary = false;
    while pos < out.len() {
        let text = if binary {
            let len = u32::from_le_bytes(out[pos..pos + 4].try_into().unwrap()) as usize;
            assert_eq!(
                out[pos + 4],
                KIND_JSON,
                "responses are always JSON payloads"
            );
            let text = std::str::from_utf8(&out[pos + 5..pos + 4 + len]).unwrap();
            pos += 4 + len;
            text.to_string()
        } else {
            let nl = out[pos..]
                .iter()
                .position(|&b| b == b'\n')
                .expect("unterminated response line");
            let text = std::str::from_utf8(&out[pos..pos + nl])
                .unwrap()
                .to_string();
            pos += nl + 1;
            text
        };
        if text.contains("\"op\":\"hello\"") && text.contains("\"codec\":\"binary\"") {
            binary = true;
        }
        texts.push(text);
    }
    texts
}

const INLINE: &str = "{\"id\":1,\"matrix\":{\"rows\":4,\"cols\":4,\
                      \"entries\":[[0,0],[1,1],[2,2],[3,3],[0,1],[1,2],[2,3]]},\"seed\":5}";

#[test]
fn hello_negotiates_binary_and_acks_in_the_old_codec() {
    let service = smoke_service(2);
    let script = binary_script(&["{\"id\":2,\"op\":\"ping\"}", INLINE]);
    let mut out = Vec::new();
    let summary = service.run_session(script.as_slice(), &mut out);
    assert_eq!(summary.received, 3);
    assert_eq!(summary.responses, 3);

    // The ack travels in the codec the hello arrived in: a JSON line.
    let nl = out.iter().position(|&b| b == b'\n').unwrap();
    let ack = std::str::from_utf8(&out[..nl]).unwrap();
    assert_eq!(
        ack,
        "{\"id\":\"hs\",\"status\":\"ok\",\"op\":\"hello\",\"codec\":\"binary\"}"
    );
    // Everything after is frames.
    let texts = response_texts(&out);
    assert_eq!(texts.len(), 3);
    assert!(texts[1].contains("\"id\":2") && texts[1].contains("\"op\":\"ping\""));
    assert!(texts[2].contains("\"id\":1") && texts[2].contains("\"volume\""));
}

/// The determinism contract across codecs: the *response document text*
/// for a request stream is byte-identical whether the stream travels as
/// JSON lines or binary frames, at any thread count. Only the framing
/// around the text differs.
#[test]
fn binary_responses_are_byte_identical_to_json_lines_at_any_thread_count() {
    let requests = [
        INLINE,
        "{\"id\":2,\"op\":\"ping\"}",
        INLINE, // cache hit: same key as id 1 (ids are not part of the key)
        "{\"id\":4,\"matrix\":{\"collection\":\"laplace2d_00_k10\"},\"seed\":3}",
        "{\"id\":5,\"method\":\"zz\"}", // typed error, same text both ways
        "{\"id\":6,\"matrix\":{\"rows\":3,\"cols\":3,\
          \"entries\":[[0,0],[1,1],[2,2]]},\"seed\":5,\"include_partition\":true}",
    ];
    let mut json_texts_by_threads = Vec::new();
    for threads in [1usize, 2, 4] {
        let service = smoke_service(threads);
        let json_script: Vec<u8> = requests
            .iter()
            .flat_map(|r| format!("{r}\n").into_bytes())
            .collect();
        let mut json_out = Vec::new();
        let json_summary = service.run_session(json_script.as_slice(), &mut json_out);
        let json_texts = response_texts(&json_out);

        let service = smoke_service(threads);
        let mut binary_out = Vec::new();
        let binary_summary =
            service.run_session(binary_script(&requests).as_slice(), &mut binary_out);
        let binary_texts = response_texts(&binary_out);

        assert_eq!(json_summary.responses + 1, binary_summary.responses);
        assert_eq!(json_summary.cache_hits, binary_summary.cache_hits);
        assert_eq!(json_summary.errors, binary_summary.errors);
        // Drop the binary session's hello ack; the rest must match the
        // JSON-lines run byte for byte.
        assert_eq!(
            json_texts,
            binary_texts[1..].to_vec(),
            "codec changed response text at {threads} threads"
        );
        json_texts_by_threads.push(json_texts);
    }
    // And thread count never changes the stream either.
    assert_eq!(json_texts_by_threads[0], json_texts_by_threads[1]);
    assert_eq!(json_texts_by_threads[0], json_texts_by_threads[2]);
}

#[test]
fn batched_frames_answer_in_submission_order() {
    let service = smoke_service(4);
    let sub1 = json_payload("{\"id\":10,\"op\":\"ping\"}");
    let sub2 = partition_payload(&parse_request_line(INLINE).unwrap()).unwrap();
    let sub3 = json_payload("{\"id\":30,\"op\":\"stats\"}");
    let mut script = format!("{HELLO_BINARY}\n").into_bytes();
    script.extend_from_slice(&encode_frame(&batch_payload(&[sub1, sub2, sub3])));

    let mut out = Vec::new();
    let summary = service.run_session(script.as_slice(), &mut out);
    assert_eq!(summary.received, 4, "a batch counts per sub-request");
    assert_eq!(summary.responses, 4);
    let texts = response_texts(&out);
    assert!(texts[1].contains("\"id\":10"));
    assert!(texts[2].contains("\"id\":1") && texts[2].contains("\"volume\""));
    assert!(texts[3].contains("\"id\":30") && texts[3].contains("\"op\":\"stats\""));
}

#[test]
fn framing_violations_get_typed_errors() {
    // An oversized declared frame length ends the session with one
    // typed error — there is no way to resynchronise past it.
    let service = smoke_service(1);
    let mut script = format!("{HELLO_BINARY}\n").into_bytes();
    script.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
    script.extend_from_slice(&[0u8; 16]);
    let mut out = Vec::new();
    let summary = service.run_session(script.as_slice(), &mut out);
    assert_eq!(summary.responses, 2);
    let texts = response_texts(&out);
    assert!(
        texts[1].contains("\"status\":\"error\"")
            && texts[1].contains("bad_request")
            && texts[1].contains("cap"),
        "{}",
        texts[1]
    );

    // An unknown payload kind is an in-band error; the session goes on.
    let service = smoke_service(1);
    let mut script = format!("{HELLO_BINARY}\n").into_bytes();
    script.extend_from_slice(&encode_frame(&[0x07, 1, 2, 3]));
    script.extend_from_slice(&encode_frame(&json_payload("{\"id\":9,\"op\":\"ping\"}")));
    let mut out = Vec::new();
    let summary = service.run_session(script.as_slice(), &mut out);
    assert_eq!(summary.responses, 3);
    let texts = response_texts(&out);
    assert!(texts[1].contains("unknown frame kind 0x07"), "{}", texts[1]);
    assert!(texts[2].contains("\"id\":9"), "{}", texts[2]);

    // A truncated binary partition payload is a typed bad_request.
    let service = smoke_service(1);
    let full = partition_payload(&parse_request_line(INLINE).unwrap()).unwrap();
    let mut script = format!("{HELLO_BINARY}\n").into_bytes();
    script.extend_from_slice(&encode_frame(&full[..full.len() - 3]));
    let mut out = Vec::new();
    service.run_session(script.as_slice(), &mut out);
    let texts = response_texts(&out);
    assert!(
        texts[1].contains("bad_request") || texts[1].contains("bad_matrix"),
        "{}",
        texts[1]
    );
}

#[test]
fn unknown_codec_is_rejected_and_the_session_stays_on_json_lines() {
    let service = smoke_service(1);
    let script = "{\"id\":1,\"op\":\"hello\",\"codec\":\"msgpack\"}\n\
                  {\"id\":2,\"op\":\"ping\"}\n";
    let mut out = Vec::new();
    let summary = service.run_session(script.as_bytes(), &mut out);
    assert_eq!(summary.responses, 2);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines[0].contains("\"status\":\"error\"") && lines[0].contains("msgpack"),
        "{}",
        lines[0]
    );
    assert!(lines[1].contains("\"id\":2") && lines[1].contains("\"op\":\"ping\""));
}

#[test]
fn hello_json_is_a_no_op_negotiation() {
    let service = smoke_service(1);
    let script = "{\"id\":1,\"op\":\"hello\",\"codec\":\"json\"}\n\
                  {\"id\":2,\"op\":\"ping\"}\n";
    let mut out = Vec::new();
    service.run_session(script.as_bytes(), &mut out);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines[0],
        "{\"id\":1,\"status\":\"ok\",\"op\":\"hello\",\"codec\":\"json\"}"
    );
    assert!(lines[1].contains("\"op\":\"ping\""));
}

//! Regression tests for wire-path correctness bugs: a final request
//! losing its newline to the connection close, invalid UTF-8 request
//! bytes, and the accept loop's per-connection handle bookkeeping.

use mg_collection::{CollectionScale, CollectionSpec};
use mg_server::{Service, ServiceConfig, TcpServer};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn smoke_service(threads: usize) -> Arc<Service> {
    Service::start(ServiceConfig {
        threads,
        collection: CollectionSpec {
            seed: 11,
            scale: CollectionScale::Smoke,
        },
        ..ServiceConfig::default()
    })
}

/// A client that sends its last request and closes the socket without a
/// trailing `\n` must still get that request answered: the buffered
/// remainder at EOF is a complete request, not garbage to drop.
#[test]
fn tcp_answers_the_final_request_without_a_trailing_newline() {
    let service = smoke_service(2);
    let server = TcpServer::bind(service.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr;

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"{\"id\":1,\"op\":\"ping\"}\n{\"id\":2,\"op\":\"ping\"}")
        .expect("send");
    stream.flush().expect("flush");
    // Half-close: EOF on the server's read side, response path still open.
    stream.shutdown(Shutdown::Write).expect("half-close");

    let mut reader = BufReader::new(stream);
    let mut responses = Vec::new();
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(!line.is_empty(), "connection closed before both responses");
        responses.push(line.trim_end().to_string());
    }
    assert!(responses[0].contains("\"id\":1"), "{}", responses[0]);
    assert!(
        responses[1].contains("\"id\":2") && responses[1].contains("\"status\":\"ok\""),
        "newline-less final request dropped: {}",
        responses[1]
    );

    server.shutdown_and_join();
}

/// Pipe mode has the same contract: `run_session` on input that ends
/// mid-line still answers the final request.
#[test]
fn pipe_answers_the_final_request_without_a_trailing_newline() {
    let service = smoke_service(1);
    let script = b"{\"id\":7,\"op\":\"ping\"}".to_vec();
    let mut out = Vec::new();
    let summary = service.run_session(script.as_slice(), &mut out);
    assert_eq!(summary.received, 1);
    assert_eq!(summary.responses, 1);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("\"id\":7"), "{text}");
}

/// Request bytes that are not valid UTF-8 get a *typed* protocol error —
/// not a lossy mangling that then fails JSON parsing with a misleading
/// message, and not a dropped connection.
#[test]
fn invalid_utf8_request_bytes_get_a_typed_error() {
    let service = smoke_service(1);
    let server = TcpServer::bind(service.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr;

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut raw = b"{\"id\":1,\"op\":\"p".to_vec();
    raw.extend_from_slice(&[0xFF, 0xFE, 0x80]); // not UTF-8 in any reading
    raw.extend_from_slice(b"ing\"}\n{\"id\":2,\"op\":\"ping\"}\n");
    stream.write_all(&raw).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");

    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).expect("read");
    assert!(
        first.contains("\"status\":\"error\"") && first.contains("bad_request"),
        "wanted a typed bad_request, got: {first}"
    );
    assert!(first.contains("UTF-8"), "{first}");
    // The session survives: the next (well-formed) line is answered.
    let mut second = String::new();
    reader.read_line(&mut second).expect("read");
    assert!(
        second.contains("\"id\":2") && second.contains("\"status\":\"ok\""),
        "{second}"
    );

    server.shutdown_and_join();
}

fn wait_for_live(server: &TcpServer, target: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.live_sessions() != target {
        assert!(
            Instant::now() < deadline,
            "live_sessions stuck at {} (wanted {target})",
            server.live_sessions()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The accept loop must reap finished session handles as connections
/// come and go: after N sequential connect/close cycles the server holds
/// zero live handles, not N.
#[test]
fn accept_loop_reaps_finished_session_handles_under_churn() {
    let service = smoke_service(2);
    let server = TcpServer::bind(service.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr;

    for r in 0..30u64 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("{{\"id\":{r},\"op\":\"ping\"}}\n").as_bytes())
            .expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        drop(reader);
        drop(stream);
    }
    // Every connection is closed; the gauge must drain to zero (the
    // pre-fix behaviour held one JoinHandle per connection ever made).
    wait_for_live(&server, 0);

    // And the gauge tracks concurrently open connections.
    let held: Vec<TcpStream> = (0..3).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.live_sessions() < 3 {
        assert!(Instant::now() < deadline, "open connections not counted");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.live_sessions() <= 3);
    drop(held);
    wait_for_live(&server, 0);

    server.shutdown_and_join();
}

//! The tracing byte-determinism carve-out (PROTOCOL.md § Tracing): a
//! session mixing traced and untraced requests must produce exactly the
//! response bytes of the untraced session — the `trace` field never
//! reaches an encoder, the cache key, or the coalescing logic. Replays
//! the checked-in smoke script with trace contexts stamped onto a
//! subset of its lines and requires the untouched golden stream at
//! 1/2/4 worker threads, with and without the slow-request sampler.

use mg_collection::{CollectionScale, CollectionSpec};
use mg_server::{Json, Service, ServiceConfig};
use std::time::Duration;

const REQUESTS: &str = include_str!("data/smoke_requests.jsonl");
const GOLDEN: &str = include_str!("data/smoke_golden.jsonl");

fn cli_default_config(threads: usize, trace_slow: Option<Duration>) -> ServiceConfig {
    ServiceConfig {
        threads,
        collection: CollectionSpec {
            seed: 11,
            scale: CollectionScale::Smoke,
        },
        trace_slow,
        ..ServiceConfig::default()
    }
}

/// The smoke script with a trace context stamped onto every other line
/// (and a parent span on every fourth): same requests, same order, so
/// the response stream must not move by a byte.
fn mixed_script() -> String {
    let mut out = String::new();
    for (at, line) in REQUESTS.lines().enumerate() {
        if at % 2 == 0 {
            let mut doc = Json::parse(line).expect("smoke request lines parse");
            let Json::Obj(fields) = &mut doc else {
                panic!("smoke request lines are objects");
            };
            let mut trace = vec![(
                "id".to_string(),
                Json::Str(format!("{:032x}", at as u128 + 0xabc)),
            )];
            if at % 4 == 0 {
                trace.push((
                    "parent".to_string(),
                    Json::Str(format!("{:016x}", at as u64 + 0x1111)),
                ));
            }
            fields.push(("trace".to_string(), Json::Obj(trace)));
            doc.write(&mut out);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[test]
fn traced_requests_leave_the_golden_stream_byte_identical() {
    let mixed = mixed_script();
    assert_ne!(mixed, REQUESTS, "the script must actually stamp traces");
    // Sampler off, sampler keep-everything, sampler keep-slow-only: the
    // response bytes must not depend on any of it.
    let samplers = [None, Some(Duration::ZERO), Some(Duration::from_secs(3600))];
    for threads in [1usize, 2, 4] {
        for trace_slow in samplers {
            let service = Service::start(cli_default_config(threads, trace_slow));
            let mut out = Vec::new();
            let summary = service.run_session(mixed.as_bytes(), &mut out);
            assert_eq!(summary.responses, 5);
            assert_eq!(
                String::from_utf8(out).unwrap(),
                GOLDEN,
                "tracing must stay out-of-band: stamping trace contexts \
                 changed the response stream (threads={threads}, \
                 trace_slow={trace_slow:?})"
            );
        }
    }
}

#[test]
fn untraced_subset_matches_in_a_mixed_session() {
    // The narrower phrasing of the same contract: the responses of the
    // *untraced* lines in the mixed session are byte-for-byte the
    // responses those lines get in a fully untraced session.
    let mixed = mixed_script();
    let service = Service::start(cli_default_config(2, None));
    let mut mixed_out = Vec::new();
    service.run_session(mixed.as_bytes(), &mut mixed_out);
    let mixed_lines: Vec<&str> = std::str::from_utf8(&mixed_out).unwrap().lines().collect();
    let golden_lines: Vec<&str> = GOLDEN.lines().collect();
    assert_eq!(mixed_lines.len(), golden_lines.len());
    for (at, (mixed_line, golden_line)) in mixed_lines.iter().zip(golden_lines.iter()).enumerate() {
        if at % 2 != 0 {
            assert_eq!(
                mixed_line, golden_line,
                "untraced request #{at} answered differently in the mixed session"
            );
        }
    }
}

//! Load and transport integration tests: ordered streaming under a
//! saturated bounded queue (pipe mode), concurrent TCP sessions over one
//! shared engine, and graceful drain-on-shutdown with no dropped
//! responses.

use mg_collection::{CollectionScale, CollectionSpec};
use mg_server::{Json, Service, ServiceConfig, TcpServer};
use mg_sparse::{gen, Coo};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn inline_payload(a: &Coo) -> String {
    let entries: Vec<String> = a.iter().map(|(i, j)| format!("[{i},{j}]")).collect();
    format!(
        "{{\"rows\":{},\"cols\":{},\"entries\":[{}]}}",
        a.rows(),
        a.cols(),
        entries.join(",")
    )
}

fn smoke_service(threads: usize, queue_capacity: usize, max_batch: usize) -> Arc<Service> {
    Service::start(ServiceConfig {
        threads,
        queue_capacity,
        max_batch,
        collection: CollectionSpec {
            seed: 11,
            scale: CollectionScale::Smoke,
        },
        ..ServiceConfig::default()
    })
}

/// Extracts the `id` field of a response line (all test ids are numeric).
fn response_id(line: &str) -> u64 {
    Json::parse(line)
        .unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"))
        .get("id")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("response without numeric id: {line}"))
}

#[test]
fn pipe_load_respects_order_under_backpressure() {
    // 120 requests over 10 distinct jobs through a 4-slot queue and
    // 3-job micro-batches: the reader must block (backpressure) rather
    // than lose or reorder anything.
    let matrices: Vec<Coo> = (0..10u32).map(|k| gen::laplacian_2d(6 + k, 7)).collect();
    let mut script = String::new();
    for r in 0..120u64 {
        let payload = inline_payload(&matrices[(r % 10) as usize]);
        script.push_str(&format!("{{\"id\":{r},\"matrix\":{payload}}}\n"));
    }
    let service = smoke_service(4, 4, 3);
    let mut out = Vec::new();
    let summary = service.run_session(script.as_bytes(), &mut out);
    assert_eq!(summary.received, 120);
    assert_eq!(summary.responses, 120);
    assert_eq!(summary.errors, 0);
    // 10 distinct jobs execute, 110 coalesce or hit the cache.
    assert_eq!(summary.cache_hits, 110);

    let text = String::from_utf8(out).unwrap();
    let ids: Vec<u64> = text.lines().map(response_id).collect();
    assert_eq!(ids, (0..120).collect::<Vec<_>>(), "responses out of order");
    for line in text.lines() {
        assert!(
            line.contains("\"status\":\"ok\""),
            "failed response: {line}"
        );
    }
}

#[test]
fn mixed_load_counts_errors_and_hits_deterministically() {
    let a = gen::laplacian_2d(8, 8);
    let mut script = String::new();
    for r in 0..30u64 {
        match r % 3 {
            0 => script.push_str(&format!(
                "{{\"id\":{r},\"matrix\":{}}}\n",
                inline_payload(&a)
            )),
            1 => script.push_str(&format!("{{\"id\":{r},\"method\":\"zz\"}}\n")),
            _ => script.push_str(&format!("{{\"id\":{r},\"op\":\"ping\"}}\n")),
        }
    }
    let service = smoke_service(2, 8, 4);
    let mut out = Vec::new();
    let summary = service.run_session(script.as_bytes(), &mut out);
    assert_eq!(summary.received, 30);
    assert_eq!(summary.responses, 30);
    assert_eq!(summary.errors, 10);
    // One fresh partition job, nine repeats.
    assert_eq!(summary.cache_hits, 9);
}

#[test]
fn cache_serves_partitions_only_to_requesters_that_asked() {
    // include_partition is part of the job identity: plain keys cache
    // outcomes *stripped* of the O(nnz) partition vector, so an
    // include_partition request never reuses a plain twin — it computes
    // its own entry (same seed, same payload bytes apart from `cached`
    // and the vector) which then serves later include_partition repeats.
    let a = gen::laplacian_2d(7, 7);
    let payload = inline_payload(&a);
    let script = format!(
        "{{\"id\":0,\"matrix\":{payload}}}\n\
         {{\"id\":1,\"matrix\":{payload},\"include_partition\":true}}\n\
         {{\"id\":2,\"matrix\":{payload},\"include_partition\":true}}\n\
         {{\"id\":3,\"matrix\":{payload}}}\n"
    );
    let service = smoke_service(2, 8, 4);
    let mut out = Vec::new();
    let summary = service.run_session(script.as_bytes(), &mut out);
    assert_eq!(summary.responses, 4);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // 0: fresh, no partition. 1: distinct key → fresh, with partition.
    assert!(lines[0].contains("\"cached\":false") && !lines[0].contains("\"partition\""));
    assert!(lines[1].contains("\"cached\":false") && lines[1].contains("\"partition\":["));
    // 2: now cached WITH the vector. 3: plain repeat, cached, no vector.
    assert!(lines[2].contains("\"cached\":true") && lines[2].contains("\"partition\":["));
    assert!(lines[3].contains("\"cached\":true") && !lines[3].contains("\"partition\""));
    assert_eq!(summary.cache_hits, 2);
    // Identical payloads apart from the cached flag / partition field.
    let volume = |line: &str| {
        Json::parse(line)
            .unwrap()
            .get("volume")
            .and_then(Json::as_u64)
            .unwrap()
    };
    let seeds: Vec<u64> = lines
        .iter()
        .map(|l| {
            Json::parse(l)
                .unwrap()
                .get("seed")
                .and_then(Json::as_u64)
                .unwrap()
        })
        .collect();
    assert!(seeds.windows(2).all(|w| w[0] == w[1]));
    assert!(lines
        .iter()
        .map(|l| volume(l))
        .all(|v| v == volume(lines[0])));
}

#[test]
fn shutdown_drains_in_flight_jobs_without_dropping_responses() {
    // Queue up plenty of distinct jobs behind a tiny queue and batch,
    // then shut down in-band: every accepted request must still get its
    // response before the session ends.
    let matrices: Vec<Coo> = (0..24u32).map(|k| gen::laplacian_2d(5 + k, 6)).collect();
    let mut script = String::new();
    for (r, m) in matrices.iter().enumerate() {
        script.push_str(&format!(
            "{{\"id\":{r},\"matrix\":{}}}\n",
            inline_payload(m)
        ));
    }
    script.push_str("{\"id\":99,\"op\":\"shutdown\"}\n");
    // A line after shutdown must NOT be read (the session stops first).
    script.push_str("{\"id\":100,\"op\":\"ping\"}\n");

    let service = smoke_service(4, 2, 2);
    let mut out = Vec::new();
    let summary = service.run_session(script.as_bytes(), &mut out);
    service.shutdown_and_join();

    assert_eq!(summary.received, 25, "shutdown must stop the reader");
    assert_eq!(summary.responses, 25);
    let text = String::from_utf8(out).unwrap();
    let ids: Vec<u64> = text.lines().map(response_id).collect();
    let mut expected: Vec<u64> = (0..24).collect();
    expected.push(99);
    assert_eq!(ids, expected);
    for line in text.lines().take(24) {
        assert!(line.contains("\"volume\""), "dropped job response: {line}");
    }
    assert!(text
        .lines()
        .nth(24)
        .unwrap()
        .contains("\"op\":\"shutdown\""));
}

fn tcp_roundtrip(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for line in lines {
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
    }
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut responses = Vec::with_capacity(lines.len());
    for _ in 0..lines.len() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        responses.push(line.trim_end().to_string());
    }
    responses
}

#[test]
fn tcp_sessions_share_one_engine_and_drain_on_shutdown() {
    let service = smoke_service(4, 16, 8);
    let server = TcpServer::bind(service.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr;

    // Four concurrent client connections, each with its own request
    // stream over the shared engine.
    let a = gen::laplacian_2d(10, 10);
    let payload = inline_payload(&a);
    let clients: Vec<std::thread::JoinHandle<Vec<String>>> = (0..4u64)
        .map(|c| {
            let payload = payload.clone();
            std::thread::spawn(move || {
                let lines: Vec<String> = (0..6u64)
                    .map(|r| {
                        format!(
                            "{{\"id\":{},\"matrix\":{payload},\"epsilon\":0.0{}}}",
                            c * 100 + r,
                            c + 1
                        )
                    })
                    .collect();
                tcp_roundtrip(addr, &lines)
            })
        })
        .collect();
    for (c, client) in clients.into_iter().enumerate() {
        let responses = client.join().expect("client thread");
        assert_eq!(responses.len(), 6);
        for (r, line) in responses.iter().enumerate() {
            assert_eq!(response_id(line), c as u64 * 100 + r as u64);
            assert!(line.contains("\"status\":\"ok\""), "{line}");
        }
        // Within one connection, requests 1..5 repeat request 0's key.
        assert!(responses[0].contains("\"cached\":false"));
        for line in &responses[1..] {
            assert!(line.contains("\"cached\":true"), "{line}");
        }
    }

    // In-band shutdown from a final connection, then a full drain.
    let bye = tcp_roundtrip(addr, &["{\"id\":7,\"op\":\"shutdown\"}".to_string()]);
    assert!(bye[0].contains("\"op\":\"shutdown\""));
    server.join();
    assert!(service.is_shutting_down());
}

#[test]
fn tcp_rejects_work_after_shutdown() {
    let service = smoke_service(2, 8, 4);
    let server = TcpServer::bind(service.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr;
    // Shut down while a second connection is still open and idle: that
    // session must terminate (via its read timeout) without hanging the
    // drain.
    let idle = TcpStream::connect(addr).expect("connect idle");
    let bye = tcp_roundtrip(addr, &["{\"op\":\"shutdown\"}".to_string()]);
    assert!(bye[0].contains("\"op\":\"shutdown\""));
    server.join();
    drop(idle);
}

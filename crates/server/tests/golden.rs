//! The checked-in smoke script and golden response stream, replayed
//! in-process. CI runs the same pair through the real binary
//! (`mgpart serve` in stdio mode, see `.github/workflows/ci.yml`); this
//! test catches drift locally under plain `cargo test`.
//!
//! The script covers the transport-visible features: an inline-COO
//! request, a named collection matrix, a repeat served from the cache
//! (`"cached":true`), an explicit `backend` selection (computed fresh —
//! the backend is part of the cache key), and an unknown backend answered
//! with a typed `unknown_backend` error. The service config below must
//! stay in sync with the `mgpart serve` defaults, since both must
//! reproduce the same golden bytes.

use mg_collection::{CollectionScale, CollectionSpec};
use mg_server::{Service, ServiceConfig};

const REQUESTS: &str = include_str!("data/smoke_requests.jsonl");
const GOLDEN: &str = include_str!("data/smoke_golden.jsonl");

/// The `mgpart serve` default configuration (threads varied by the
/// caller; the stream must not depend on it).
fn cli_default_config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        threads,
        collection: CollectionSpec {
            seed: 11,
            scale: CollectionScale::Smoke,
        },
        ..ServiceConfig::default()
    }
}

#[test]
fn smoke_script_reproduces_the_checked_in_golden_stream() {
    for threads in [1usize, 4] {
        let service = Service::start(cli_default_config(threads));
        let mut out = Vec::new();
        let summary = service.run_session(REQUESTS.as_bytes(), &mut out);
        assert_eq!(summary.responses, 5);
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(summary.errors, 1);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            GOLDEN,
            "response stream drifted from tests/data/smoke_golden.jsonl \
             (threads={threads}); if the change is intentional, regenerate \
             the golden file with:\n  \
             target/release/mgpart serve < crates/server/tests/data/smoke_requests.jsonl \
             > crates/server/tests/data/smoke_golden.jsonl"
        );
    }
}

#[test]
fn golden_stream_has_the_five_features_visible() {
    let lines: Vec<&str> = GOLDEN.lines().collect();
    assert_eq!(lines.len(), 5);
    assert!(lines[0].contains("\"cached\":false"));
    assert!(
        lines[0].contains("\"backend\":\"mondriaan\""),
        "default backend is echoed"
    );
    assert!(lines[1].contains("\"collection\"") || lines[1].contains("\"nnz\":1920"));
    assert!(lines[2].contains("\"cached\":true"));
    // The same matrix + method on another backend computes fresh: the
    // backend is part of the cache key and the seed derivation.
    assert!(lines[3].contains("\"backend\":\"geometric\""));
    assert!(lines[3].contains("\"cached\":false"));
    assert!(lines[4].contains("\"status\":\"error\""));
    assert!(lines[4].contains("\"code\":\"unknown_backend\""));
}

//! Property tests of the trace exporter (the satellite contract): for
//! any well-formed span tree, the exported Chrome-trace-event document
//! parses with the strict server-side JSON reader, every span's parent
//! exists within the same trace, and child intervals nest inside their
//! parent's interval.

use mg_obs::trace::{render_trace_json, SpanRecord};
use mg_server::Json;
use proptest::prelude::*;
use std::collections::HashMap;

/// Fixed name pool: span names are `&'static str` in the collector.
const NAMES: [&str; 6] = [
    "request", "route", "dispatch", "decode", "execute", "encode",
];

/// Builds a well-formed tree: node 0 is the root; every later node
/// parents to an earlier one and its interval is squeezed inside the
/// parent's. `picks` drives the shape: (parent choice, start fraction,
/// length fraction).
fn build_tree(trace_id: u128, picks: &[(usize, u8, u8)]) -> Vec<SpanRecord> {
    let mut spans = vec![SpanRecord {
        trace_id,
        span_id: 1,
        parent_id: None,
        name: NAMES[0],
        start_us: 1_000,
        dur_us: 1_000_000,
    }];
    for (at, &(parent_pick, start_frac, len_frac)) in picks.iter().enumerate() {
        let parent = spans[parent_pick % spans.len()].clone();
        let offset = parent.dur_us * u64::from(start_frac % 100) / 200;
        let start_us = parent.start_us + offset;
        let headroom = parent.start_us + parent.dur_us - start_us;
        let dur_us = headroom * (u64::from(len_frac % 100) + 1) / 100;
        spans.push(SpanRecord {
            trace_id,
            span_id: at as u64 + 2,
            parent_id: Some(parent.span_id),
            name: NAMES[(at + 1) % NAMES.len()],
            start_us,
            dur_us,
        });
    }
    spans
}

/// One exported `ph:"X"` event, decoded back out of the document.
struct Exported {
    trace: String,
    span: String,
    parent: Option<String>,
    ts: u64,
    dur: u64,
}

/// Parses the exported document with the strict reader and returns its
/// complete-span events.
fn decode_export(text: &str) -> Vec<Exported> {
    let doc = Json::parse(text.trim()).expect("export parses with the strict JSON reader");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .map(|e| {
            let args = e.get("args").expect("span events carry args");
            let field = |key: &str| {
                args.get(key)
                    .and_then(Json::as_str)
                    .map(std::string::ToString::to_string)
            };
            Exported {
                trace: field("trace").expect("trace id"),
                span: field("span").expect("span id"),
                parent: field("parent"),
                ts: e.get("ts").and_then(Json::as_u64).expect("ts"),
                dur: e.get("dur").and_then(Json::as_u64).expect("dur"),
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn exported_parents_exist_and_child_intervals_nest(
        trace_id in 1u64..u64::MAX,
        picks in proptest::collection::vec((0usize..64, any::<u8>(), any::<u8>()), 0..24),
    ) {
        let spans = build_tree(u128::from(trace_id), &picks);
        let text = render_trace_json("proptest", &spans);
        let exported = decode_export(&text);
        prop_assert_eq!(exported.len(), spans.len());
        // Index by (trace, span): ids must be unique.
        let mut by_id: HashMap<(&str, &str), &Exported> = HashMap::new();
        for e in &exported {
            let clash = by_id.insert((e.trace.as_str(), e.span.as_str()), e);
            prop_assert!(clash.is_none(), "duplicate span id {}", e.span);
        }
        for e in &exported {
            let Some(parent_id) = &e.parent else { continue };
            let parent = by_id.get(&(e.trace.as_str(), parent_id.as_str()));
            prop_assert!(
                parent.is_some(),
                "span {} names parent {} not exported in trace {}",
                e.span, parent_id, e.trace
            );
            let parent = parent.unwrap();
            prop_assert!(
                parent.ts <= e.ts && e.ts + e.dur <= parent.ts + parent.dur,
                "child [{}, {}] escapes parent [{}, {}]",
                e.ts, e.ts + e.dur, parent.ts, parent.ts + parent.dur
            );
        }
    }

    #[test]
    fn export_is_deterministic_under_input_order(
        trace_id in 1u64..u64::MAX,
        picks in proptest::collection::vec((0usize..64, any::<u8>(), any::<u8>()), 1..16),
    ) {
        let spans = build_tree(u128::from(trace_id), &picks);
        let mut reversed = spans.clone();
        reversed.reverse();
        prop_assert_eq!(
            render_trace_json("p", &spans),
            render_trace_json("p", &reversed),
            "exporter output must not depend on recording order"
        );
    }
}

#[test]
fn export_parses_strictly_even_with_hostile_process_names() {
    let spans = build_tree(42, &[(0, 10, 50)]);
    let text = render_trace_json("weird \"name\"\twith\nescapes\\", &spans);
    let doc = Json::parse(text.trim()).expect("escaped process name still parses");
    let meta = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .and_then(|events| events.first())
        .expect("metadata event first");
    assert_eq!(
        meta.get("args")
            .and_then(|a| a.get("name"))
            .and_then(Json::as_str),
        Some("weird \"name\"\twith\nescapes\\")
    );
}

#[test]
fn empty_collector_exports_a_valid_document() {
    let text = render_trace_json("empty", &[]);
    let doc = Json::parse(text.trim()).expect("empty export parses");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents present");
    assert_eq!(events.len(), 1, "only the process_name metadata event");
}

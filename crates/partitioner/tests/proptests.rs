//! Property-based tests for the multilevel partitioner: FM safety
//! (monotone cut, budget compliance), coarsening correctness, and driver
//! feasibility on arbitrary hypergraphs.

use mg_hypergraph::{Hypergraph, VertexBipartition};
use mg_partitioner::coarsen::{contract, project_sides};
use mg_partitioner::gainbucket::GainBuckets;
use mg_partitioner::matching::cluster_vertices;
use mg_partitioner::{
    bipartition_hypergraph, fm_refine, BisectionTargets, FmLimits, Idx, PartitionerConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Naive recompute-from-scratch oracle for [`GainBuckets`]: per-gain LIFO
/// stacks in a sorted map. `best()` is the top of the highest non-empty
/// stack — exactly the LIFO-within-bucket, descending-gain contract the
/// incremental structure promises.
struct BucketOracle {
    range: i64,
    stacks: BTreeMap<i64, Vec<Idx>>,
    gain: BTreeMap<Idx, i64>,
}

impl BucketOracle {
    fn new(range: i64) -> Self {
        BucketOracle {
            range: range.max(0),
            stacks: BTreeMap::new(),
            gain: BTreeMap::new(),
        }
    }

    fn insert(&mut self, v: Idx, g: i64) {
        let g = g.clamp(-self.range, self.range);
        self.stacks.entry(g).or_default().push(v);
        self.gain.insert(v, g);
    }

    fn remove(&mut self, v: Idx) {
        let g = self.gain.remove(&v).expect("oracle: vertex stored");
        let stack = self.stacks.get_mut(&g).unwrap();
        stack.retain(|&u| u != v);
        if stack.is_empty() {
            self.stacks.remove(&g);
        }
    }

    fn adjust(&mut self, v: Idx, delta: i64) {
        let g = self.gain[&v] + delta;
        self.remove(v);
        self.insert(v, g);
    }

    fn max_gain(&self) -> Option<i64> {
        self.stacks.keys().next_back().copied()
    }

    fn best(&self) -> Option<Idx> {
        self.stacks.values().next_back().map(|s| *s.last().unwrap())
    }
}

fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    mg_test_support::strategies::arb_hypergraph(2, 16, 1..4, 2..5, 1..14)
}

proptest! {
    /// From a feasible start, FM never worsens the cut and never leaves
    /// the budgets.
    #[test]
    fn fm_is_safe_from_feasible_starts(h in arb_hypergraph(), seed in 0u64..500) {
        let nv = h.num_vertices() as usize;
        let sides: Vec<u8> = (0..nv).map(|v| ((v as u64 + seed) % 2) as u8).collect();
        let bp0 = VertexBipartition::new(&h, sides.clone());
        // Budgets that make the start feasible by construction.
        let budget = [
            bp0.part_weight(0).max(1) + 1,
            bp0.part_weight(1).max(1) + 1,
        ];
        let before = bp0.cut_weight();
        let mut bp = bp0;
        fm_refine(&h, &mut bp, &FmLimits::new(budget));
        prop_assert!(bp.cut_weight() <= before);
        prop_assert!(bp.part_weight(0) <= budget[0]);
        prop_assert!(bp.part_weight(1) <= budget[1]);
        prop_assert!(bp.validate(&h).is_ok());
    }

    /// Clusterings from every scheme are valid and contraction preserves
    /// the cut of any projected partition.
    #[test]
    fn contraction_preserves_projected_cut(h in arb_hypergraph(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = PartitionerConfig::mondriaan_like();
        let clustering = cluster_vertices(&h, &cfg, &mut rng);
        prop_assert!(clustering.validate().is_ok());
        let level = contract(&h, &clustering);
        prop_assert!(level.coarse.validate().is_ok());
        // Coarse weights conserve total weight.
        prop_assert_eq!(
            level.coarse.total_vertex_weight(),
            h.total_vertex_weight()
        );
        // Any coarse assignment projects to the same cut.
        let k = level.coarse.num_vertices() as usize;
        let coarse_sides: Vec<u8> = (0..k).map(|v| ((v as u64 * 13 + seed) % 2) as u8).collect();
        let coarse_cut =
            VertexBipartition::new(&level.coarse, coarse_sides.clone()).cut_weight();
        let fine_sides = project_sides(&level.map, &coarse_sides);
        let fine_cut = VertexBipartition::new(&h, fine_sides).cut_weight();
        prop_assert_eq!(coarse_cut, fine_cut);
    }

    /// The full multilevel driver always returns a feasible bipartition
    /// whose reported cut matches its sides.
    #[test]
    fn multilevel_outcome_is_feasible_and_consistent(h in arb_hypergraph(), seed in 0u64..200) {
        let targets = BisectionTargets::even(h.total_vertex_weight(), 0.1);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = bipartition_hypergraph(&h, &targets, &cfg, &mut rng);
        let bp = VertexBipartition::new(&h, out.sides.clone());
        prop_assert_eq!(bp.cut_weight(), out.cut);
        prop_assert_eq!(
            [bp.part_weight(0), bp.part_weight(1)],
            out.part_weights
        );
        // Feasible whenever a feasible assignment exists at all; with
        // max vertex weight ≤ 3 and ε = 0.1, the greedy even split is
        // feasible, so the driver must be too — up to one max vertex
        // weight of slack on pathological weight profiles.
        let budget = targets.budgets();
        let slack = (0..h.num_vertices()).map(|v| h.vertex_weight(v)).max().unwrap_or(0);
        prop_assert!(out.part_weights[0] <= budget[0] + slack);
        prop_assert!(out.part_weights[1] <= budget[1] + slack);
    }

    /// Random move sequences through the incremental gain buckets agree
    /// with the naive recompute-from-scratch oracle at every step — stored
    /// gains, max gain, unconstrained best, and predicate-filtered best.
    #[test]
    fn gainbuckets_match_naive_oracle(seed in 0u64..300, sparse in proptest::any::<bool>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..24usize);
        // Dense and sparse head storage must both satisfy the contract;
        // gains stay within ±32 so clamping is identical across ranges.
        let range: i64 = if sparse { (1 << 20) + 33 } else { 32 };
        let mut b = GainBuckets::new(n, range);
        let mut oracle = BucketOracle::new(range);
        for _ in 0..rng.gen_range(1..120usize) {
            let v = rng.gen_range(0..n) as Idx;
            match rng.gen_range(0..4u32) {
                0 | 1 => {
                    if !b.contains(v) {
                        let g = rng.gen_range(-32..33i32) as i64;
                        b.insert(v, g);
                        oracle.insert(v, g);
                    } else {
                        let d = rng.gen_range(-16..17i32) as i64;
                        b.adjust(v, d);
                        oracle.adjust(v, d);
                    }
                }
                2 => {
                    if b.contains(v) {
                        b.remove(v);
                        oracle.remove(v);
                    }
                }
                _ => {
                    if b.contains(v) {
                        prop_assert_eq!(b.gain_of(v), oracle.gain[&v]);
                    }
                }
            }
            prop_assert_eq!(b.len(), oracle.gain.len());
            prop_assert_eq!(b.max_gain(), oracle.max_gain());
            prop_assert_eq!(b.best_where(|_| true, usize::MAX), oracle.best());
            // Predicate-filtered scan: first even vertex in descending
            // gain order, LIFO within a bucket.
            let expect_even = oracle
                .stacks
                .values()
                .rev()
                .flat_map(|s| s.iter().rev())
                .copied()
                .find(|&u| u % 2 == 0);
            prop_assert_eq!(b.best_where(|u| u % 2 == 0, usize::MAX), expect_even);
        }
    }

    /// The CSR-flattened contraction round-trips against a nested
    /// per-net-Vec reference: same vertices, weights, nets, and pin lists.
    #[test]
    fn flat_contract_round_trips_nested_reference(h in arb_hypergraph(), seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = h.num_vertices();
        let num_clusters = rng.gen_range(1..=n);
        let clustering = mg_partitioner::matching::Clustering {
            cluster: (0..n).map(|_| rng.gen_range(0..num_clusters)).collect(),
            num_clusters,
        };
        let fast = contract(&h, &clustering).coarse;

        // Nested reference: per-net Vec pins, HashMap merge, sorted emit.
        let mut weights = vec![0u64; num_clusters as usize];
        for v in 0..n {
            weights[clustering.cluster[v as usize] as usize] += h.vertex_weight(v);
        }
        let mut merged: std::collections::HashMap<Vec<Idx>, u64> =
            std::collections::HashMap::new();
        for (_, w, pins) in h.nets() {
            let mut p: Vec<Idx> =
                pins.iter().map(|&v| clustering.cluster[v as usize]).collect();
            p.sort_unstable();
            p.dedup();
            if p.len() >= 2 {
                *merged.entry(p).or_insert(0) += w;
            }
        }
        let mut nets: Vec<(Vec<Idx>, u64)> = merged.into_iter().collect();
        nets.sort_unstable();
        let mut builder = mg_hypergraph::HypergraphBuilder::new(weights);
        for (pins, w) in nets {
            builder.add_net(w, pins);
        }
        let slow = builder.build();

        prop_assert_eq!(fast.num_vertices(), slow.num_vertices());
        prop_assert_eq!(fast.vertex_weights(), slow.vertex_weights());
        prop_assert_eq!(fast.num_nets(), slow.num_nets());
        for net in 0..fast.num_nets() {
            prop_assert_eq!(fast.net_weight(net), slow.net_weight(net));
            prop_assert_eq!(fast.net_pins(net), slow.net_pins(net));
        }
    }

    /// Determinism: the same seed gives the same outcome.
    #[test]
    fn multilevel_is_deterministic(h in arb_hypergraph(), seed in 0u64..200) {
        let targets = BisectionTargets::even(h.total_vertex_weight(), 0.05);
        let cfg = PartitionerConfig::patoh_like();
        let a = bipartition_hypergraph(&h, &targets, &cfg, &mut StdRng::seed_from_u64(seed));
        let b = bipartition_hypergraph(&h, &targets, &cfg, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a.sides, b.sides);
        prop_assert_eq!(a.cut, b.cut);
    }
}

//! Property-based tests for the multilevel partitioner: FM safety
//! (monotone cut, budget compliance), coarsening correctness, and driver
//! feasibility on arbitrary hypergraphs.

use mg_hypergraph::{Hypergraph, VertexBipartition};
use mg_partitioner::coarsen::{contract, project_sides};
use mg_partitioner::matching::cluster_vertices;
use mg_partitioner::{
    bipartition_hypergraph, fm_refine, BisectionTargets, FmLimits, PartitionerConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    mg_test_support::strategies::arb_hypergraph(2, 16, 1..4, 2..5, 1..14)
}

proptest! {
    /// From a feasible start, FM never worsens the cut and never leaves
    /// the budgets.
    #[test]
    fn fm_is_safe_from_feasible_starts(h in arb_hypergraph(), seed in 0u64..500) {
        let nv = h.num_vertices() as usize;
        let sides: Vec<u8> = (0..nv).map(|v| ((v as u64 + seed) % 2) as u8).collect();
        let bp0 = VertexBipartition::new(&h, sides.clone());
        // Budgets that make the start feasible by construction.
        let budget = [
            bp0.part_weight(0).max(1) + 1,
            bp0.part_weight(1).max(1) + 1,
        ];
        let before = bp0.cut_weight();
        let mut bp = bp0;
        fm_refine(&h, &mut bp, &FmLimits::new(budget));
        prop_assert!(bp.cut_weight() <= before);
        prop_assert!(bp.part_weight(0) <= budget[0]);
        prop_assert!(bp.part_weight(1) <= budget[1]);
        prop_assert!(bp.validate(&h).is_ok());
    }

    /// Clusterings from every scheme are valid and contraction preserves
    /// the cut of any projected partition.
    #[test]
    fn contraction_preserves_projected_cut(h in arb_hypergraph(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = PartitionerConfig::mondriaan_like();
        let clustering = cluster_vertices(&h, &cfg, &mut rng);
        prop_assert!(clustering.validate().is_ok());
        let level = contract(&h, &clustering);
        prop_assert!(level.coarse.validate().is_ok());
        // Coarse weights conserve total weight.
        prop_assert_eq!(
            level.coarse.total_vertex_weight(),
            h.total_vertex_weight()
        );
        // Any coarse assignment projects to the same cut.
        let k = level.coarse.num_vertices() as usize;
        let coarse_sides: Vec<u8> = (0..k).map(|v| ((v as u64 * 13 + seed) % 2) as u8).collect();
        let coarse_cut =
            VertexBipartition::new(&level.coarse, coarse_sides.clone()).cut_weight();
        let fine_sides = project_sides(&level.map, &coarse_sides);
        let fine_cut = VertexBipartition::new(&h, fine_sides).cut_weight();
        prop_assert_eq!(coarse_cut, fine_cut);
    }

    /// The full multilevel driver always returns a feasible bipartition
    /// whose reported cut matches its sides.
    #[test]
    fn multilevel_outcome_is_feasible_and_consistent(h in arb_hypergraph(), seed in 0u64..200) {
        let targets = BisectionTargets::even(h.total_vertex_weight(), 0.1);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = bipartition_hypergraph(&h, &targets, &cfg, &mut rng);
        let bp = VertexBipartition::new(&h, out.sides.clone());
        prop_assert_eq!(bp.cut_weight(), out.cut);
        prop_assert_eq!(
            [bp.part_weight(0), bp.part_weight(1)],
            out.part_weights
        );
        // Feasible whenever a feasible assignment exists at all; with
        // max vertex weight ≤ 3 and ε = 0.1, the greedy even split is
        // feasible, so the driver must be too — up to one max vertex
        // weight of slack on pathological weight profiles.
        let budget = targets.budgets();
        let slack = (0..h.num_vertices()).map(|v| h.vertex_weight(v)).max().unwrap_or(0);
        prop_assert!(out.part_weights[0] <= budget[0] + slack);
        prop_assert!(out.part_weights[1] <= budget[1] + slack);
    }

    /// Determinism: the same seed gives the same outcome.
    #[test]
    fn multilevel_is_deterministic(h in arb_hypergraph(), seed in 0u64..200) {
        let targets = BisectionTargets::even(h.total_vertex_weight(), 0.05);
        let cfg = PartitionerConfig::patoh_like();
        let a = bipartition_hypergraph(&h, &targets, &cfg, &mut StdRng::seed_from_u64(seed));
        let b = bipartition_hypergraph(&h, &targets, &cfg, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a.sides, b.sides);
        prop_assert_eq!(a.cut, b.cut);
    }
}

//! # mg-partitioner — multilevel hypergraph bipartitioner
//!
//! A from-scratch reimplementation of the algorithm family used by the
//! paper's two engines (Mondriaan's internal partitioner and PaToH):
//! multilevel bipartitioning with
//!
//! * **coarsening** by greedy matching or agglomerative clustering on net
//!   connectivity ([`matching`], [`coarsen`]),
//! * **initial partitioning** from multiple random/greedy candidates
//!   ([`initial`]),
//! * **refinement** by Fiduccia–Mattheyses passes with gain buckets and
//!   best-prefix rollback ([`fm`], [`gainbucket`]),
//! * a **driver** that stacks the levels and projects partitions back up
//!   ([`multilevel`]).
//!
//! Two presets mirror the paper's engines: [`PartitionerConfig::mondriaan_like`]
//! and [`PartitionerConfig::patoh_like`] (see DESIGN.md §5 for the
//! substitution rationale).
//!
//! The balance model is expressed in *target weights* plus an ε slack
//! ([`BisectionTargets`]), which is exactly what recursive bisection with an
//! imbalance budget needs.

pub mod coarsen;
pub mod config;
pub mod fm;
pub mod gainbucket;
pub mod initial;
pub mod matching;
pub mod multilevel;

pub use config::{CoarseningScheme, PartitionerConfig};
pub use fm::{fm_refine, fm_refine_with_scratch, FmLimits, FmScratch};
pub use multilevel::{bipartition_hypergraph, BisectionOutcome, BisectionTargets};

pub use mg_hypergraph::Idx;

//! Hypergraph contraction: collapse each cluster into one coarse vertex.
//!
//! Pins are remapped to cluster ids and deduplicated; nets that shrink to a
//! single pin are dropped (they can never be cut), and nets with identical
//! pin sets are merged with summed weights so the coarse FM sees their true
//! combined cost.

use crate::matching::Clustering;
use crate::Idx;
use mg_hypergraph::{Hypergraph, HypergraphBuilder};

/// The result of one coarsening level.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The contracted hypergraph.
    pub coarse: Hypergraph,
    /// `map[v]` is the coarse vertex holding fine vertex `v`.
    pub map: Vec<Idx>,
}

/// Contracts `h` according to `clustering`.
pub fn contract(h: &Hypergraph, clustering: &Clustering) -> CoarseLevel {
    let k = clustering.num_clusters as usize;
    let mut weights = vec![0u64; k];
    for v in 0..h.num_vertices() {
        weights[clustering.cluster[v as usize] as usize] += h.vertex_weight(v);
    }

    // Remap nets, dedup pins within each net, drop singletons, merge
    // identical nets. Identity is the sorted pin list. Surviving nets live
    // as ranges of one flat pin buffer (CSR style) — no per-net Vec, no
    // hash map; merging is a lexicographic sort of the ranges followed by
    // an adjacent-equal sweep. Weight sums are u64 additions, so the merge
    // order cannot change the totals, and the final lex order is exactly
    // the sorted-key order the deterministic contract promises.
    let mut pin_buf: Vec<Idx> = Vec::with_capacity(h.num_pins());
    let mut ranges: Vec<(u32, u32, u64)> = Vec::with_capacity(h.num_nets() as usize);
    for (_, w, pins) in h.nets() {
        let start = pin_buf.len();
        pin_buf.extend(pins.iter().map(|&v| clustering.cluster[v as usize]));
        pin_buf[start..].sort_unstable();
        let mut len = 0usize;
        for idx in start..pin_buf.len() {
            if len == 0 || pin_buf[start + len - 1] != pin_buf[idx] {
                pin_buf[start + len] = pin_buf[idx];
                len += 1;
            }
        }
        if len < 2 {
            pin_buf.truncate(start);
            continue;
        }
        pin_buf.truncate(start + len);
        ranges.push((start as u32, (start + len) as u32, w));
    }
    ranges.sort_unstable_by(|&(s0, e0, _), &(s1, e1, _)| {
        pin_buf[s0 as usize..e0 as usize].cmp(&pin_buf[s1 as usize..e1 as usize])
    });

    let mut builder = HypergraphBuilder::new(weights);
    let mut i = 0usize;
    while i < ranges.len() {
        let (s, e, mut w) = ranges[i];
        let pins = &pin_buf[s as usize..e as usize];
        let mut j = i + 1;
        while j < ranges.len() {
            let (s2, e2, w2) = ranges[j];
            if &pin_buf[s2 as usize..e2 as usize] != pins {
                break;
            }
            w += w2;
            j += 1;
        }
        builder.add_net(w, pins.iter().copied());
        i = j;
    }
    CoarseLevel {
        coarse: builder.build(),
        map: clustering.cluster.clone(),
    }
}

/// Projects a coarse bipartition assignment back to the fine level.
pub fn project_sides(map: &[Idx], coarse_sides: &[u8]) -> Vec<u8> {
    map.iter().map(|&c| coarse_sides[c as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_hypergraph::VertexBipartition;

    fn sample() -> (Hypergraph, Clustering) {
        // 6 vertices; nets: {0,1}, {1,2}, {2,3}, {3,4}, {4,5}, {0,1} again.
        let mut b = HypergraphBuilder::new(vec![1, 2, 1, 1, 2, 1]);
        b.add_net(1, [0, 1]);
        b.add_net(1, [1, 2]);
        b.add_net(1, [2, 3]);
        b.add_net(1, [3, 4]);
        b.add_net(1, [4, 5]);
        b.add_net(3, [0, 1]);
        let h = b.build();
        // Pair (0,1), (2,3), (4,5).
        let c = Clustering {
            cluster: vec![0, 0, 1, 1, 2, 2],
            num_clusters: 3,
        };
        (h, c)
    }

    #[test]
    fn contracts_weights_and_nets() {
        let (h, c) = sample();
        let level = contract(&h, &c);
        let ch = &level.coarse;
        assert_eq!(ch.num_vertices(), 3);
        assert_eq!(ch.vertex_weight(0), 3);
        assert_eq!(ch.vertex_weight(1), 2);
        assert_eq!(ch.vertex_weight(2), 3);
        assert_eq!(ch.total_vertex_weight(), h.total_vertex_weight());
        // Nets {0,1} collapse to singletons and vanish; {1,2} -> {0,1},
        // {2,3} -> {1}, gone; {3,4} -> {1,2}; {4,5} -> {2} gone.
        assert_eq!(ch.num_nets(), 2);
        ch.validate().unwrap();
    }

    #[test]
    fn identical_coarse_nets_merge_weights() {
        let mut b = HypergraphBuilder::new(vec![1; 4]);
        b.add_net(2, [0, 2]);
        b.add_net(5, [1, 3]);
        let h = b.build();
        // Clusters {0,1} and {2,3}: both nets become {0,1}.
        let c = Clustering {
            cluster: vec![0, 0, 1, 1],
            num_clusters: 2,
        };
        let level = contract(&h, &c);
        assert_eq!(level.coarse.num_nets(), 1);
        assert_eq!(level.coarse.net_weight(0), 7);
    }

    #[test]
    fn cut_of_projected_partition_matches_coarse_cut() {
        let (h, c) = sample();
        let level = contract(&h, &c);
        // Any coarse assignment must have the same cut as its projection,
        // because contraction only removes nets that cannot be cut when the
        // cluster moves as a unit.
        for mask in 0..8u32 {
            let coarse_sides: Vec<u8> = (0..3).map(|v| ((mask >> v) & 1) as u8).collect();
            let fine_sides = project_sides(&level.map, &coarse_sides);
            let coarse_cut = VertexBipartition::new(&level.coarse, coarse_sides).cut_weight();
            let fine_cut = VertexBipartition::new(&h, fine_sides).cut_weight();
            assert_eq!(coarse_cut, fine_cut, "mask {mask}");
        }
    }

    /// Naive nested-Vec/HashMap contraction — the pre-flattening reference
    /// semantics the CSR-style buffer version must reproduce exactly.
    fn contract_reference(h: &Hypergraph, clustering: &Clustering) -> Hypergraph {
        use std::collections::HashMap;
        let k = clustering.num_clusters as usize;
        let mut weights = vec![0u64; k];
        for v in 0..h.num_vertices() {
            weights[clustering.cluster[v as usize] as usize] += h.vertex_weight(v);
        }
        let mut merged: HashMap<Vec<Idx>, u64> = HashMap::new();
        for (_, w, pins) in h.nets() {
            let mut p: Vec<Idx> = pins
                .iter()
                .map(|&v| clustering.cluster[v as usize])
                .collect();
            p.sort_unstable();
            p.dedup();
            if p.len() < 2 {
                continue;
            }
            *merged.entry(p).or_insert(0) += w;
        }
        let mut nets: Vec<(Vec<Idx>, u64)> = merged.into_iter().collect();
        nets.sort_unstable();
        let mut builder = HypergraphBuilder::new(weights);
        for (pins, w) in nets {
            builder.add_net(w, pins);
        }
        builder.build()
    }

    #[test]
    fn flat_contract_matches_nested_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..25 {
            let n = rng.gen_range(4..40u32);
            let mut b =
                HypergraphBuilder::new((0..n).map(|_| rng.gen_range(1..5u64)).collect::<Vec<_>>());
            for _ in 0..rng.gen_range(2..50) {
                let deg = rng.gen_range(1..6usize);
                let pins: Vec<Idx> = (0..deg).map(|_| rng.gen_range(0..n)).collect();
                b.add_net(rng.gen_range(1..8u64), pins);
            }
            let h = b.build();
            let num_clusters = rng.gen_range(1..=n);
            let c = Clustering {
                cluster: (0..n).map(|_| rng.gen_range(0..num_clusters)).collect(),
                num_clusters,
            };
            let fast = contract(&h, &c).coarse;
            let slow = contract_reference(&h, &c);
            assert_eq!(fast.num_vertices(), slow.num_vertices(), "trial {trial}");
            assert_eq!(
                fast.vertex_weights(),
                slow.vertex_weights(),
                "trial {trial}"
            );
            assert_eq!(fast.num_nets(), slow.num_nets(), "trial {trial}");
            for net in 0..fast.num_nets() {
                assert_eq!(fast.net_weight(net), slow.net_weight(net), "trial {trial}");
                assert_eq!(fast.net_pins(net), slow.net_pins(net), "trial {trial}");
            }
        }
    }

    #[test]
    fn projection_respects_map() {
        let map = vec![1, 0, 1];
        let sides = project_sides(&map, &[1, 0]);
        assert_eq!(sides, vec![0, 1, 0]);
    }
}

//! Hypergraph contraction: collapse each cluster into one coarse vertex.
//!
//! Pins are remapped to cluster ids and deduplicated; nets that shrink to a
//! single pin are dropped (they can never be cut), and nets with identical
//! pin sets are merged with summed weights so the coarse FM sees their true
//! combined cost.

use crate::matching::Clustering;
use crate::Idx;
use mg_hypergraph::{Hypergraph, HypergraphBuilder};
use std::collections::HashMap;

/// The result of one coarsening level.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The contracted hypergraph.
    pub coarse: Hypergraph,
    /// `map[v]` is the coarse vertex holding fine vertex `v`.
    pub map: Vec<Idx>,
}

/// Contracts `h` according to `clustering`.
pub fn contract(h: &Hypergraph, clustering: &Clustering) -> CoarseLevel {
    let k = clustering.num_clusters as usize;
    let mut weights = vec![0u64; k];
    for v in 0..h.num_vertices() {
        weights[clustering.cluster[v as usize] as usize] += h.vertex_weight(v);
    }

    // Remap nets, dedup pins within each net, drop singletons, merge
    // identical nets. Identity is the sorted pin list.
    let mut merged: HashMap<Vec<Idx>, u64> = HashMap::with_capacity(h.num_nets() as usize);
    let mut scratch: Vec<Idx> = Vec::new();
    for (_, w, pins) in h.nets() {
        scratch.clear();
        scratch.extend(pins.iter().map(|&v| clustering.cluster[v as usize]));
        scratch.sort_unstable();
        scratch.dedup();
        if scratch.len() < 2 {
            continue;
        }
        *merged.entry(scratch.clone()).or_insert(0) += w;
    }

    // Deterministic net order (sorted by pin list) so coarsening is
    // reproducible regardless of hash iteration order.
    let mut nets: Vec<(Vec<Idx>, u64)> = merged.into_iter().collect();
    nets.sort_unstable();

    let mut builder = HypergraphBuilder::new(weights);
    for (pins, w) in nets {
        builder.add_net(w, pins);
    }
    CoarseLevel {
        coarse: builder.build(),
        map: clustering.cluster.clone(),
    }
}

/// Projects a coarse bipartition assignment back to the fine level.
pub fn project_sides(map: &[Idx], coarse_sides: &[u8]) -> Vec<u8> {
    map.iter().map(|&c| coarse_sides[c as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_hypergraph::VertexBipartition;

    fn sample() -> (Hypergraph, Clustering) {
        // 6 vertices; nets: {0,1}, {1,2}, {2,3}, {3,4}, {4,5}, {0,1} again.
        let mut b = HypergraphBuilder::new(vec![1, 2, 1, 1, 2, 1]);
        b.add_net(1, [0, 1]);
        b.add_net(1, [1, 2]);
        b.add_net(1, [2, 3]);
        b.add_net(1, [3, 4]);
        b.add_net(1, [4, 5]);
        b.add_net(3, [0, 1]);
        let h = b.build();
        // Pair (0,1), (2,3), (4,5).
        let c = Clustering {
            cluster: vec![0, 0, 1, 1, 2, 2],
            num_clusters: 3,
        };
        (h, c)
    }

    #[test]
    fn contracts_weights_and_nets() {
        let (h, c) = sample();
        let level = contract(&h, &c);
        let ch = &level.coarse;
        assert_eq!(ch.num_vertices(), 3);
        assert_eq!(ch.vertex_weight(0), 3);
        assert_eq!(ch.vertex_weight(1), 2);
        assert_eq!(ch.vertex_weight(2), 3);
        assert_eq!(ch.total_vertex_weight(), h.total_vertex_weight());
        // Nets {0,1} collapse to singletons and vanish; {1,2} -> {0,1},
        // {2,3} -> {1}, gone; {3,4} -> {1,2}; {4,5} -> {2} gone.
        assert_eq!(ch.num_nets(), 2);
        ch.validate().unwrap();
    }

    #[test]
    fn identical_coarse_nets_merge_weights() {
        let mut b = HypergraphBuilder::new(vec![1; 4]);
        b.add_net(2, [0, 2]);
        b.add_net(5, [1, 3]);
        let h = b.build();
        // Clusters {0,1} and {2,3}: both nets become {0,1}.
        let c = Clustering {
            cluster: vec![0, 0, 1, 1],
            num_clusters: 2,
        };
        let level = contract(&h, &c);
        assert_eq!(level.coarse.num_nets(), 1);
        assert_eq!(level.coarse.net_weight(0), 7);
    }

    #[test]
    fn cut_of_projected_partition_matches_coarse_cut() {
        let (h, c) = sample();
        let level = contract(&h, &c);
        // Any coarse assignment must have the same cut as its projection,
        // because contraction only removes nets that cannot be cut when the
        // cluster moves as a unit.
        for mask in 0..8u32 {
            let coarse_sides: Vec<u8> = (0..3).map(|v| ((mask >> v) & 1) as u8).collect();
            let fine_sides = project_sides(&level.map, &coarse_sides);
            let coarse_cut = VertexBipartition::new(&level.coarse, coarse_sides).cut_weight();
            let fine_cut = VertexBipartition::new(&h, fine_sides).cut_weight();
            assert_eq!(coarse_cut, fine_cut, "mask {mask}");
        }
    }

    #[test]
    fn projection_respects_map() {
        let map = vec![1, 0, 1];
        let sides = project_sides(&map, &[1, 0]);
        assert_eq!(sides, vec![0, 1, 0]);
    }
}

//! Partitioner configuration and the two engine presets.

/// How the coarsening phase groups vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoarseningScheme {
    /// Greedy pairwise matching by heaviest net connectivity, visiting
    /// vertices in random order — the scheme of Mondriaan's internal
    /// partitioner.
    HeavyConnectivityMatching,
    /// Agglomerative (absorption) clustering: a vertex may join an already
    /// formed cluster, giving a faster size reduction with slightly less
    /// even cluster weights — the flavour of PaToH's HCC scheme.
    Agglomerative,
    /// Uniform random pairing; only useful as an ablation baseline.
    RandomMatching,
}

/// Tuning knobs of the multilevel bipartitioner.
///
/// The two presets correspond to the two hypergraph partitioners the paper
/// evaluates with; the individual fields are public so ablation benches can
/// vary them one at a time.
#[derive(Debug, Clone)]
pub struct PartitionerConfig {
    /// Coarsening stops once the hypergraph has at most this many vertices.
    pub coarsest_vertices: u32,
    /// Coarsening also stops when a level shrinks the vertex count by less
    /// than this fraction (stall detection).
    pub min_reduction: f64,
    /// Hard cap on the number of coarsening levels.
    pub max_levels: u32,
    /// Scheme used to group vertices during coarsening.
    pub coarsening: CoarseningScheme,
    /// Nets larger than this are ignored when scoring connectivity (they
    /// carry almost no signal and dominate the runtime on skewed inputs).
    pub max_scored_net_size: u32,
    /// No cluster may exceed this fraction of the total vertex weight.
    pub max_cluster_weight_fraction: f64,
    /// Number of initial-partition candidates generated at the coarsest
    /// level (each is FM-polished; the best is kept).
    pub initial_candidates: u32,
    /// Maximum FM passes per refinement invocation.
    pub fm_max_passes: u32,
    /// An FM pass aborts after this many consecutive non-improving tentative
    /// moves (0 disables early abort). Bounds worst-case pass time on large
    /// skewed inputs at a negligible quality cost.
    pub fm_stall_limit: u32,
    /// Extra restricted V-cycles after the first full multilevel run
    /// (hMetis-style; both presets default to none).
    pub vcycles: u32,
    /// Boundary-only FM (PaToH-style lazy gain buckets); see
    /// [`crate::fm::FmLimits::boundary_only`].
    pub boundary_fm: bool,
}

impl PartitionerConfig {
    /// Preset standing in for Mondriaan's internal hypergraph partitioner:
    /// pairwise heavy-connectivity matching, a moderately coarse stop, a
    /// handful of initial candidates.
    pub fn mondriaan_like() -> Self {
        PartitionerConfig {
            coarsest_vertices: 200,
            min_reduction: 0.05,
            max_levels: 64,
            coarsening: CoarseningScheme::HeavyConnectivityMatching,
            max_scored_net_size: 256,
            max_cluster_weight_fraction: 0.2,
            initial_candidates: 8,
            fm_max_passes: 8,
            fm_stall_limit: 2000,
            vcycles: 0,
            boundary_fm: false,
        }
    }

    /// Preset standing in for PaToH: agglomerative clustering (faster
    /// coarsening), more initial candidates, slightly deeper refinement —
    /// a second engine of genuinely different character, which is all the
    /// paper's Fig 6/Table II need (see DESIGN.md §5).
    pub fn patoh_like() -> Self {
        PartitionerConfig {
            coarsest_vertices: 120,
            min_reduction: 0.03,
            max_levels: 64,
            coarsening: CoarseningScheme::Agglomerative,
            max_scored_net_size: 512,
            max_cluster_weight_fraction: 0.15,
            initial_candidates: 12,
            fm_max_passes: 10,
            fm_stall_limit: 3000,
            vcycles: 0,
            boundary_fm: true,
        }
    }
}

impl PartitionerConfig {
    /// Resolves a preset by canonical name (`mondriaan` / `patoh`).
    /// The engine-construction seam the backend registry builds on: a
    /// backend that wraps the multilevel partitioner names its preset
    /// here instead of hard-coding a constructor, and the registry in
    /// `mg_core::backend` is the single authority for which names exist.
    pub fn preset(name: &str) -> Option<PartitionerConfig> {
        match name {
            "mondriaan" => Some(PartitionerConfig::mondriaan_like()),
            "patoh" => Some(PartitionerConfig::patoh_like()),
            _ => None,
        }
    }
}

impl Default for PartitionerConfig {
    fn default() -> Self {
        Self::mondriaan_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_scheme() {
        let m = PartitionerConfig::mondriaan_like();
        let p = PartitionerConfig::patoh_like();
        assert_eq!(m.coarsening, CoarseningScheme::HeavyConnectivityMatching);
        assert_eq!(p.coarsening, CoarseningScheme::Agglomerative);
        assert!(p.initial_candidates > m.initial_candidates);
    }

    #[test]
    fn default_is_mondriaan_like() {
        let d = PartitionerConfig::default();
        assert_eq!(d.coarsest_vertices, 200);
    }

    #[test]
    fn presets_resolve_by_canonical_name() {
        for name in ["mondriaan", "patoh"] {
            assert!(PartitionerConfig::preset(name).is_some(), "{name}");
        }
        assert!(PartitionerConfig::preset("hmetis").is_none());
        assert_eq!(
            PartitionerConfig::preset("patoh").unwrap().coarsening,
            CoarseningScheme::Agglomerative
        );
    }
}

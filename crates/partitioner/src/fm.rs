//! Fiduccia–Mattheyses refinement with gain buckets and best-prefix
//! rollback.
//!
//! This is the refinement engine of both the multilevel driver and the
//! paper's Algorithm 2 (which calls it directly on the hypergraph of `B`).
//! One *pass* tentatively moves vertices one at a time — always the highest
//! gain move that keeps the balance admissible — locking each moved vertex,
//! then rolls back to the best prefix. Passes repeat until no improvement
//! (or a configured cap).
//!
//! Balance handling: a move is admissible if the destination stays within
//! its budget *or* the move strictly reduces the total overweight, so a
//! run started from an infeasible partition steers itself back to
//! feasibility (this matters for medium-grain hypergraphs whose vertices
//! are whole row/column groups with large weights).

use crate::gainbucket::GainBuckets;
use crate::Idx;
use mg_hypergraph::{Hypergraph, VertexBipartition};

/// Budgets and effort limits for an FM run.
#[derive(Debug, Clone)]
pub struct FmLimits {
    /// Maximum vertex weight allowed in each part (eqn (1) on this level).
    pub budget: [u64; 2],
    /// Maximum number of passes (each pass is a full tentative sequence).
    pub max_passes: u32,
    /// Abort a pass after this many consecutive moves without a new best
    /// prefix; 0 disables.
    pub stall_limit: u32,
    /// Candidates inspected per side when the head of a bucket is
    /// infeasible.
    pub scan_cap: usize,
    /// Boundary mode (PaToH-style): seed the gain buckets only with
    /// vertices touching a cut net; interior vertices enter lazily when a
    /// neighbouring net becomes cut. Much faster on mostly-clean
    /// partitions, identical quality in practice (interior vertices have
    /// non-positive gain).
    pub boundary_only: bool,
}

impl FmLimits {
    /// Limits with the given budgets and conventional effort settings.
    pub fn new(budget: [u64; 2]) -> Self {
        FmLimits {
            budget,
            max_passes: 8,
            stall_limit: 2000,
            scan_cap: 128,
            boundary_only: false,
        }
    }
}

/// Total overweight of the two parts relative to the budgets.
#[inline]
fn violation(bp: &VertexBipartition, budget: &[u64; 2]) -> u64 {
    bp.part_weight(0).saturating_sub(budget[0]) + bp.part_weight(1).saturating_sub(budget[1])
}

/// Largest possible |gain| of any single vertex: used to size the buckets.
fn gain_range(h: &Hypergraph) -> i64 {
    let mut best = 0u64;
    for v in 0..h.num_vertices() {
        let sum: u64 = h.vertex_nets(v).iter().map(|&n| h.net_weight(n)).sum();
        best = best.max(sum);
    }
    best.min(i64::MAX as u64 >> 2) as i64
}

/// Reusable FM working memory: gain buckets, lock flags, the move log
/// and the lazy-admission queue. One instance serves every pass of every
/// level of a multilevel run — the buckets are `reset` (not reallocated)
/// per pass, which removes the dominant allocation cost of small passes.
#[derive(Debug, Default)]
pub struct FmScratch {
    buckets: Option<[GainBuckets; 2]>,
    locked: Vec<bool>,
    moves: Vec<Idx>,
    pending: Vec<Idx>,
    seed_gain: Vec<i64>,
    seed_boundary: Vec<bool>,
}

impl FmScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        FmScratch::default()
    }
}

/// Runs FM passes on `bp` in place. Returns the total cut decrease
/// (negative only if cut was sacrificed to repair an infeasible balance).
pub fn fm_refine(h: &Hypergraph, bp: &mut VertexBipartition, limits: &FmLimits) -> i64 {
    fm_refine_with_scratch(h, bp, limits, &mut FmScratch::new())
}

/// [`fm_refine`] with caller-owned working memory — the scratch-reuse
/// entry point for loops that refine many partitions (multilevel
/// uncoarsening, initial-partition candidate polish, IR sweeps).
pub fn fm_refine_with_scratch(
    h: &Hypergraph,
    bp: &mut VertexBipartition,
    limits: &FmLimits,
    scratch: &mut FmScratch,
) -> i64 {
    // Invariant across passes: the hypergraph is fixed, so the bucket
    // range and the balance slack are too — hoist them out of the pass.
    let range = gain_range(h);
    let slack = (0..h.num_vertices())
        .map(|v| h.vertex_weight(v))
        .max()
        .unwrap_or(0);
    let mut total_gain = 0i64;
    for _ in 0..limits.max_passes {
        let (pass_gain, improved) = fm_pass(h, bp, limits, range, slack, scratch);
        total_gain += pass_gain;
        if !improved {
            break;
        }
    }
    total_gain
}

/// One FM pass. Returns `(realised gain, whether the pass found a strictly
/// better state)` — "better" meaning lower (violation, −cut) key.
///
/// Tentative moves may exceed a budget by up to one maximum vertex weight
/// (the classic FM balance criterion); the best-prefix selection enforces
/// the true budgets, so the *returned* state never ends up worse than the
/// start.
fn fm_pass(
    h: &Hypergraph,
    bp: &mut VertexBipartition,
    limits: &FmLimits,
    range: i64,
    slack: u64,
    scratch: &mut FmScratch,
) -> (i64, bool) {
    let n = h.num_vertices() as usize;
    if n == 0 {
        return (0, false);
    }
    let buckets = match &mut scratch.buckets {
        Some(buckets) => {
            buckets[0].reset(n, range);
            buckets[1].reset(n, range);
            buckets
        }
        slot => slot.insert([GainBuckets::new(n, range), GainBuckets::new(n, range)]),
    };
    // Seed gains net-major: each net looks up its weight and pin counts
    // once and streams a per-side delta over its pins, instead of every
    // pin re-deriving them vertex-major (three indexed loads per pin).
    // The accumulated sums are the same i64 additions in a different
    // order, and bucket insertion stays the ascending-vertex loop below,
    // so seeding is bit-for-bit identical to the per-vertex scan.
    scratch.seed_gain.clear();
    scratch.seed_gain.resize(n, 0);
    scratch.seed_boundary.clear();
    scratch.seed_boundary.resize(n, false);
    for net in 0..h.num_nets() {
        let size = h.net_size(net);
        if size < 2 {
            continue; // a single-pin net can never be cut or uncut
        }
        let w = h.net_weight(net) as i64;
        let z0 = bp.pins_in(h, net, 0);
        let z1 = size - z0;
        // A side-s pin gains +w when it is the lone s pin (moving it
        // uncuts the net) and −w when the net is pure on s (moving it
        // cuts the net); z0 == 1 and z1 == 0 exclude each other at
        // size ≥ 2, so the sum is the classic FM seed gain.
        let delta0 = if z0 == 1 { w } else { 0 } + if z1 == 0 { -w } else { 0 };
        let delta1 = if z1 == 1 { w } else { 0 } + if z0 == 0 { -w } else { 0 };
        let cut = z0 > 0 && z1 > 0;
        for &u in h.net_pins(net) {
            let ui = u as usize;
            scratch.seed_gain[ui] += if bp.side(u) == 0 { delta0 } else { delta1 };
            scratch.seed_boundary[ui] |= cut;
        }
    }
    for v in 0..h.num_vertices() {
        if limits.boundary_only && !scratch.seed_boundary[v as usize] {
            continue;
        }
        buckets[bp.side(v) as usize].insert(v, scratch.seed_gain[v as usize]);
    }
    scratch.locked.clear();
    scratch.locked.resize(n, false);
    scratch.moves.clear();
    scratch.pending.clear();
    let locked = &mut scratch.locked;
    let moves = &mut scratch.moves;
    let pending = &mut scratch.pending;

    let start_violation = violation(bp, &limits.budget);
    // Minimised key: (violation, -cumulative_gain). The empty prefix is the
    // baseline; only strictly better prefixes are kept.
    let mut best_key = (start_violation, 0i64);
    let mut best_len = 0usize;
    let mut cumulative = 0i64;
    let mut since_best = 0u32;

    loop {
        // Candidate per side: best-gain vertex whose move is admissible.
        // No move happens between the two side scans, so the current
        // violation is one computation, not one per side.
        let cur_violation = violation(bp, &limits.budget);
        let mut chosen: Option<(Idx, u8, i64)> = None;
        for from in 0..2u8 {
            let to = 1 - from;
            let to_weight = bp.part_weight(to);
            let budget = limits.budget;
            let candidate = buckets[from as usize].best_where(
                |v| {
                    let w = h.vertex_weight(v);
                    let new_to = to_weight + w;
                    if new_to <= budget[to as usize] + slack {
                        return true;
                    }
                    // Admit balance-repairing moves from an overweight part.
                    let new_violation = new_to.saturating_sub(budget[to as usize])
                        + bp.part_weight(from)
                            .saturating_sub(w)
                            .saturating_sub(budget[from as usize]);
                    new_violation < cur_violation
                },
                limits.scan_cap,
            );
            if let Some(v) = candidate {
                let g = buckets[from as usize].gain_of(v);
                let better = match chosen {
                    None => true,
                    Some((_, cf, cg)) => {
                        g > cg || (g == cg && bp.part_weight(from) > bp.part_weight(cf))
                    }
                };
                if better {
                    chosen = Some((v, from, g));
                }
            }
        }
        let Some((v, from, _)) = chosen else { break };

        buckets[from as usize].remove(v);
        locked[v as usize] = true;
        update_neighbor_gains_before(h, bp, v, locked, buckets, pending);
        let realised = bp.move_vertex(h, v);
        update_neighbor_gains_after(h, bp, v, from, locked, buckets, pending);
        // Lazily admit vertices that just became boundary (only possible in
        // boundary mode); their gain is computed fresh from the post-move
        // state, so no delta bookkeeping is needed.
        for &u in pending.iter() {
            if !locked[u as usize] && !buckets[bp.side(u) as usize].contains(u) {
                buckets[bp.side(u) as usize].insert(u, bp.gain(h, u));
            }
        }
        pending.clear();

        cumulative += realised;
        moves.push(v);
        let key = (violation(bp, &limits.budget), -cumulative);
        if key < best_key {
            best_key = key;
            best_len = moves.len();
            since_best = 0;
        } else {
            since_best += 1;
            if limits.stall_limit > 0 && since_best >= limits.stall_limit {
                break;
            }
        }
    }

    // Roll back to the best prefix.
    let mut rolled_back = 0i64;
    for &v in moves[best_len..].iter().rev() {
        rolled_back += bp.move_vertex(h, v);
    }
    debug_assert!(bp.validate(h).is_ok());
    let improved = best_len > 0;
    (cumulative + rolled_back, improved)
}

/// Adjusts the stored gain of `u` if it is in a bucket; otherwise (lazy
/// boundary mode) queues it for fresh insertion after the move.
#[inline]
fn adjust_or_queue(
    buckets: &mut [GainBuckets; 2],
    pending: &mut Vec<Idx>,
    side: u8,
    u: Idx,
    delta: i64,
) {
    if buckets[side as usize].contains(u) {
        buckets[side as usize].adjust(u, delta);
    } else {
        pending.push(u);
    }
}

/// FM gain-update rules applied *before* moving `v` (critical-net cases on
/// the destination side).
#[inline]
fn update_neighbor_gains_before(
    h: &Hypergraph,
    bp: &VertexBipartition,
    v: Idx,
    locked: &[bool],
    buckets: &mut [GainBuckets; 2],
    pending: &mut Vec<Idx>,
) {
    let from = bp.side(v);
    let to = 1 - from;
    for &net in h.vertex_nets(v) {
        let size = h.net_size(net);
        if size < 2 {
            continue;
        }
        let w = h.net_weight(net) as i64;
        let to_count = bp.pins_in(h, net, to);
        if to_count == 0 {
            // Net was pure on `from`; it becomes cut: every other free pin
            // gains w (its move would now uncut or keep status).
            for &u in h.net_pins(net) {
                if u != v && !locked[u as usize] {
                    adjust_or_queue(buckets, pending, bp.side(u), u, w);
                }
            }
        } else if to_count == 1 {
            // The lone destination-side pin was the uncutting move; after v
            // arrives it no longer is.
            for &u in h.net_pins(net) {
                if u != v && bp.side(u) == to {
                    if !locked[u as usize] {
                        adjust_or_queue(buckets, pending, to, u, -w);
                    }
                    break;
                }
            }
        }
    }
}

/// FM gain-update rules applied *after* moving `v` (critical-net cases on
/// the source side).
#[inline]
fn update_neighbor_gains_after(
    h: &Hypergraph,
    bp: &VertexBipartition,
    v: Idx,
    from: u8,
    locked: &[bool],
    buckets: &mut [GainBuckets; 2],
    pending: &mut Vec<Idx>,
) {
    for &net in h.vertex_nets(v) {
        let size = h.net_size(net);
        if size < 2 {
            continue;
        }
        let w = h.net_weight(net) as i64;
        let from_count = bp.pins_in(h, net, from);
        if from_count == 0 {
            // Net became pure on the destination: moving any pin would cut
            // it again.
            for &u in h.net_pins(net) {
                if u != v && !locked[u as usize] {
                    adjust_or_queue(buckets, pending, bp.side(u), u, -w);
                }
            }
        } else if from_count == 1 {
            // A single source-side pin remains: its move now uncuts.
            for &u in h.net_pins(net) {
                if u != v && bp.side(u) == from {
                    if !locked[u as usize] {
                        adjust_or_queue(buckets, pending, from, u, w);
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_hypergraph::HypergraphBuilder;

    /// Two cliques joined by one bridge net: FM must find the obvious
    /// bisection regardless of the (bad) initial state.
    fn two_cliques() -> Hypergraph {
        let mut b = HypergraphBuilder::new(vec![1; 8]);
        // Clique nets within {0..3} and {4..7} (pairwise 2-pin nets).
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_net(1, [i, j]);
                b.add_net(1, [i + 4, j + 4]);
            }
        }
        b.add_net(1, [3, 4]); // bridge
        b.build()
    }

    #[test]
    fn finds_the_natural_bisection() {
        let h = two_cliques();
        // Interleaved start: heavily cut.
        let sides: Vec<u8> = (0..8).map(|v| (v % 2) as u8).collect();
        let mut bp = VertexBipartition::new(&h, sides);
        let initial_cut = bp.cut_weight();
        let limits = FmLimits::new([4, 4]);
        let gain = fm_refine(&h, &mut bp, &limits);
        assert_eq!(bp.cut_weight(), 1, "only the bridge should be cut");
        assert_eq!(gain as u64, initial_cut - 1);
        assert_eq!(bp.part_weight(0), 4);
        assert_eq!(bp.part_weight(1), 4);
    }

    #[test]
    fn never_violates_budget_from_feasible_start() {
        let h = two_cliques();
        let sides: Vec<u8> = (0..8).map(|v| (v % 2) as u8).collect();
        let mut bp = VertexBipartition::new(&h, sides);
        let limits = FmLimits::new([5, 5]);
        fm_refine(&h, &mut bp, &limits);
        assert!(bp.part_weight(0) <= 5);
        assert!(bp.part_weight(1) <= 5);
    }

    #[test]
    fn repairs_infeasible_start() {
        let h = two_cliques();
        // Everything on side 0: infeasible for budget [5, 5].
        let mut bp = VertexBipartition::new(&h, vec![0; 8]);
        let limits = FmLimits::new([5, 5]);
        fm_refine(&h, &mut bp, &limits);
        assert!(bp.part_weight(0) <= 5, "left {}", bp.part_weight(0));
        assert!(bp.part_weight(1) <= 5, "right {}", bp.part_weight(1));
    }

    #[test]
    fn cut_never_increases_from_feasible_start() {
        // Random-ish hypergraph; FM must be monotone from feasible starts.
        let mut b = HypergraphBuilder::new(vec![1; 12]);
        for i in 0..12u32 {
            b.add_net(1 + (i as u64 % 3), [i, (i * 5 + 1) % 12, (i * 7 + 3) % 12]);
        }
        let h = b.build();
        for seed in 0..10u32 {
            let sides: Vec<u8> = (0..12).map(|v| ((v * 7 + seed) % 3 == 0) as u8).collect();
            let mut bp = VertexBipartition::new(&h, sides);
            let before = bp.cut_weight();
            let limits = FmLimits::new([8, 8]);
            fm_refine(&h, &mut bp, &limits);
            assert!(bp.cut_weight() <= before, "seed {seed}");
            bp.validate(&h).unwrap();
        }
    }

    #[test]
    fn weighted_vertices_respect_budget() {
        let mut b = HypergraphBuilder::new(vec![5, 1, 1, 1]);
        b.add_net(10, [0, 1]);
        b.add_net(1, [1, 2]);
        b.add_net(1, [2, 3]);
        let h = b.build();
        // Start: 0|123 — cut = 10. Moving 1 to side 0 would uncut the heavy
        // net but budget forbids weight 6 on side 0 with budget 5.
        let mut bp = VertexBipartition::new(&h, vec![0, 1, 1, 1]);
        let limits = FmLimits::new([5, 5]);
        fm_refine(&h, &mut bp, &limits);
        assert!(bp.part_weight(0) <= 5);
        assert!(bp.part_weight(1) <= 5);
        // Vertices 0 (weight 5) and 1 can never share a side under budget
        // 5, so the heavy net stays cut and the start is already optimal;
        // FM must not make it worse or break balance chasing the heavy net.
        assert_eq!(bp.cut_weight(), 10);
    }

    #[test]
    fn empty_hypergraph_is_a_noop() {
        let h = HypergraphBuilder::new(vec![]).build();
        let mut bp = VertexBipartition::new(&h, vec![]);
        let limits = FmLimits::new([0, 0]);
        assert_eq!(fm_refine(&h, &mut bp, &limits), 0);
    }

    #[test]
    fn single_pass_limit_is_respected_and_monotone() {
        let h = two_cliques();
        let sides: Vec<u8> = (0..8).map(|v| (v % 2) as u8).collect();
        let mut bp = VertexBipartition::new(&h, sides);
        let before = bp.cut_weight();
        let mut limits = FmLimits::new([4, 4]);
        limits.max_passes = 1;
        fm_refine(&h, &mut bp, &limits);
        assert!(bp.cut_weight() <= before);
    }
}
